#include "parser/ast.h"

#include <sstream>

namespace xqa {

namespace {

const char* AxisName(Axis axis) {
  switch (axis) {
    case Axis::kChild: return "child";
    case Axis::kDescendant: return "descendant";
    case Axis::kDescendantOrSelf: return "descendant-or-self";
    case Axis::kAttribute: return "attribute";
    case Axis::kSelf: return "self";
    case Axis::kParent: return "parent";
    case Axis::kAncestor: return "ancestor";
    case Axis::kAncestorOrSelf: return "ancestor-or-self";
    case Axis::kFollowingSibling: return "following-sibling";
    case Axis::kPrecedingSibling: return "preceding-sibling";
  }
  return "?";
}

const char* ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSubtract: return "-";
    case ArithOp::kMultiply: return "*";
    case ArithOp::kDivide: return "div";
    case ArithOp::kIntegerDivide: return "idiv";
    case ArithOp::kModulo: return "mod";
  }
  return "?";
}

const char* CompareOpName(int op) {
  switch (op) {
    case 0: return "eq";
    case 1: return "ne";
    case 2: return "lt";
    case 3: return "le";
    case 4: return "gt";
    case 5: return "ge";
  }
  return "?";
}

void Dump(const Expr* expr, std::ostringstream* out);

void DumpSeqType(const SeqType& type, std::ostringstream* out) {
  switch (type.item_kind) {
    case SeqType::ItemKind::kItem: *out << "item()"; break;
    case SeqType::ItemKind::kNode: *out << "node()"; break;
    case SeqType::ItemKind::kElement:
      *out << "element(" << type.name << ")";
      break;
    case SeqType::ItemKind::kAttribute:
      *out << "attribute(" << type.name << ")";
      break;
    case SeqType::ItemKind::kText: *out << "text()"; break;
    case SeqType::ItemKind::kDocument: *out << "document-node()"; break;
    case SeqType::ItemKind::kAtomic:
      *out << AtomicTypeName(type.atomic_type);
      break;
  }
  switch (type.occurrence) {
    case SeqType::Occurrence::kOne: break;
    case SeqType::Occurrence::kOptional: *out << '?'; break;
    case SeqType::Occurrence::kStar: *out << '*'; break;
    case SeqType::Occurrence::kPlus: *out << '+'; break;
  }
}

void DumpNodeTest(const NodeTest& test, std::ostringstream* out) {
  switch (test.kind) {
    case NodeTest::Kind::kName:
      *out << (test.name.empty() ? "*" : test.name);
      break;
    case NodeTest::Kind::kAnyKind: *out << "node()"; break;
    case NodeTest::Kind::kText: *out << "text()"; break;
    case NodeTest::Kind::kComment: *out << "comment()"; break;
    case NodeTest::Kind::kElement: *out << "element(" << test.name << ")"; break;
    case NodeTest::Kind::kAttribute: *out << "attribute(" << test.name << ")"; break;
    case NodeTest::Kind::kDocument: *out << "document-node()"; break;
    case NodeTest::Kind::kPi: *out << "processing-instruction()"; break;
  }
}

void DumpOrderBy(const OrderByData& order, std::ostringstream* out) {
  *out << "(order-by";
  if (order.stable) *out << " stable";
  for (const OrderSpec& spec : order.specs) {
    *out << " (";
    Dump(spec.key.get(), out);
    *out << (spec.descending ? " desc" : " asc");
    if (spec.empty_greatest) *out << " empty-greatest";
    *out << ")";
  }
  *out << ")";
}

void Dump(const Expr* expr, std::ostringstream* out) {
  if (expr == nullptr) {
    *out << "<null>";
    return;
  }
  switch (expr->kind()) {
    case ExprKind::kLiteral: {
      const auto* e = static_cast<const LiteralExpr*>(expr);
      if (e->value.IsStringLike()) {
        *out << '"' << e->value.ToLexical() << '"';
      } else {
        *out << e->value.ToLexical();
      }
      break;
    }
    case ExprKind::kVarRef: {
      const auto* e = static_cast<const VarRefExpr*>(expr);
      *out << '$' << e->name;
      break;
    }
    case ExprKind::kContextItem:
      *out << '.';
      break;
    case ExprKind::kSequence: {
      const auto* e = static_cast<const SequenceExpr*>(expr);
      *out << "(seq";
      for (const ExprPtr& item : e->items) {
        *out << ' ';
        Dump(item.get(), out);
      }
      *out << ')';
      break;
    }
    case ExprKind::kRange: {
      const auto* e = static_cast<const RangeExpr*>(expr);
      *out << "(to ";
      Dump(e->lo.get(), out);
      *out << ' ';
      Dump(e->hi.get(), out);
      *out << ')';
      break;
    }
    case ExprKind::kArithmetic: {
      const auto* e = static_cast<const ArithmeticExpr*>(expr);
      *out << '(' << ArithOpName(e->op) << ' ';
      Dump(e->lhs.get(), out);
      *out << ' ';
      Dump(e->rhs.get(), out);
      *out << ')';
      break;
    }
    case ExprKind::kUnary: {
      const auto* e = static_cast<const UnaryExpr*>(expr);
      *out << '(' << (e->negate ? "neg" : "pos") << ' ';
      Dump(e->operand.get(), out);
      *out << ')';
      break;
    }
    case ExprKind::kComparison: {
      const auto* e = static_cast<const ComparisonExpr*>(expr);
      *out << '(';
      if (e->comparison_kind == ComparisonKind::kGeneral) *out << "general-";
      if (e->comparison_kind == ComparisonKind::kNodeIs) *out << "is";
      else *out << CompareOpName(e->op);
      *out << ' ';
      Dump(e->lhs.get(), out);
      *out << ' ';
      Dump(e->rhs.get(), out);
      *out << ')';
      break;
    }
    case ExprKind::kLogical: {
      const auto* e = static_cast<const LogicalExpr*>(expr);
      *out << '(' << (e->op == LogicalOp::kAnd ? "and" : "or") << ' ';
      Dump(e->lhs.get(), out);
      *out << ' ';
      Dump(e->rhs.get(), out);
      *out << ')';
      break;
    }
    case ExprKind::kIf: {
      const auto* e = static_cast<const IfExpr*>(expr);
      *out << "(if ";
      Dump(e->condition.get(), out);
      *out << ' ';
      Dump(e->then_branch.get(), out);
      *out << ' ';
      Dump(e->else_branch.get(), out);
      *out << ')';
      break;
    }
    case ExprKind::kQuantified: {
      const auto* e = static_cast<const QuantifiedExpr*>(expr);
      *out << '(' << (e->every ? "every" : "some");
      for (const auto& binding : e->bindings) {
        *out << " ($" << binding.var << " in ";
        Dump(binding.expr.get(), out);
        *out << ')';
      }
      *out << " satisfies ";
      Dump(e->satisfies.get(), out);
      *out << ')';
      break;
    }
    case ExprKind::kPath: {
      const auto* e = static_cast<const PathExpr*>(expr);
      *out << "(path";
      if (e->absolute) {
        *out << " /";
      } else if (e->start != nullptr) {
        *out << ' ';
        Dump(e->start.get(), out);
      }
      for (const PathSegment& segment : e->segments) {
        if (segment.is_expr()) {
          *out << " (step ";
          Dump(segment.expr.get(), out);
          *out << ')';
          continue;
        }
        *out << ' ' << AxisName(segment.step.axis) << "::";
        DumpNodeTest(segment.step.test, out);
        for (const ExprPtr& predicate : segment.step.predicates) {
          *out << '[';
          Dump(predicate.get(), out);
          *out << ']';
        }
      }
      *out << ')';
      break;
    }
    case ExprKind::kFilter: {
      const auto* e = static_cast<const FilterExpr*>(expr);
      *out << "(filter ";
      Dump(e->primary.get(), out);
      for (const ExprPtr& predicate : e->predicates) {
        *out << '[';
        Dump(predicate.get(), out);
        *out << ']';
      }
      *out << ')';
      break;
    }
    case ExprKind::kFunctionCall: {
      const auto* e = static_cast<const FunctionCallExpr*>(expr);
      *out << '(' << e->name;
      for (const ExprPtr& arg : e->args) {
        *out << ' ';
        Dump(arg.get(), out);
      }
      *out << ')';
      break;
    }
    case ExprKind::kFlwor: {
      const auto* e = static_cast<const FlworExpr*>(expr);
      *out << "(flwor";
      for (const FlworClause& clause : e->clauses) {
        switch (clause.kind) {
          case ClauseKind::kFor:
            *out << " (for $" << clause.for_var;
            if (!clause.pos_var.empty()) *out << " at $" << clause.pos_var;
            *out << " in ";
            Dump(clause.for_expr.get(), out);
            *out << ')';
            break;
          case ClauseKind::kLet:
            *out << " (let $" << clause.let_var << " := ";
            Dump(clause.let_expr.get(), out);
            *out << ')';
            break;
          case ClauseKind::kWhere:
            *out << " (where ";
            Dump(clause.where_expr.get(), out);
            *out << ')';
            break;
          case ClauseKind::kCount:
            *out << " (count $" << clause.count_var << ')';
            break;
          case ClauseKind::kGroupBy:
            if (clause.xquery3_group_style) {
              *out << " (group-by-3.0";
              for (const auto& key : clause.group_keys) {
                *out << " ($" << key.var << " := ";
                Dump(key.expr.get(), out);
                *out << ')';
              }
              *out << ')';
              break;
            }
            *out << " (group-by";
            for (const auto& key : clause.group_keys) {
              *out << " (";
              Dump(key.expr.get(), out);
              *out << " into $" << key.var;
              if (!key.using_function.empty()) {
                *out << " using " << key.using_function;
              }
              *out << ')';
            }
            for (const auto& nest : clause.nest_specs) {
              *out << " (nest ";
              Dump(nest.expr.get(), out);
              if (nest.order_by.has_value()) {
                *out << ' ';
                DumpOrderBy(*nest.order_by, out);
              }
              *out << " into $" << nest.var << ')';
            }
            *out << ')';
            break;
          case ClauseKind::kOrderBy:
            *out << ' ';
            DumpOrderBy(clause.order_by, out);
            break;
        }
      }
      *out << " (return";
      if (!e->at_var.empty()) *out << " at $" << e->at_var;
      *out << ' ';
      Dump(e->return_expr.get(), out);
      *out << "))";
      break;
    }
    case ExprKind::kDirectConstructor: {
      const auto* e = static_cast<const DirectConstructorExpr*>(expr);
      *out << "(elem " << e->name;
      for (const auto& attr : e->attributes) {
        *out << " (@" << attr.name;
        for (const auto& part : attr.parts) {
          if (part.expr != nullptr) {
            *out << " {";
            Dump(part.expr.get(), out);
            *out << '}';
          } else {
            *out << " \"" << part.text << '"';
          }
        }
        *out << ')';
      }
      for (const auto& child : e->children) {
        if (child.expr != nullptr) {
          *out << " {";
          Dump(child.expr.get(), out);
          *out << '}';
        } else if (child.is_comment) {
          *out << " (comment \"" << child.text << "\")";
        } else {
          *out << " \"" << child.text << '"';
        }
      }
      *out << ')';
      break;
    }
    case ExprKind::kTypeOp: {
      const auto* e = static_cast<const TypeOpExpr*>(expr);
      const char* op_name = "?";
      switch (e->op) {
        case TypeOpKind::kInstanceOf: op_name = "instance-of"; break;
        case TypeOpKind::kTreatAs: op_name = "treat-as"; break;
        case TypeOpKind::kCastableAs: op_name = "castable-as"; break;
        case TypeOpKind::kCastAs: op_name = "cast-as"; break;
      }
      *out << '(' << op_name << ' ';
      Dump(e->operand.get(), out);
      *out << ' ';
      DumpSeqType(e->type, out);
      *out << ')';
      break;
    }
    case ExprKind::kComputedConstructor: {
      const auto* e = static_cast<const ComputedConstructorExpr*>(expr);
      const char* kind_name = "?";
      switch (e->constructor_kind) {
        case ComputedConstructorExpr::Kind::kElement: kind_name = "comp-elem"; break;
        case ComputedConstructorExpr::Kind::kAttribute: kind_name = "comp-attr"; break;
        case ComputedConstructorExpr::Kind::kText: kind_name = "comp-text"; break;
        case ComputedConstructorExpr::Kind::kComment: kind_name = "comp-comment"; break;
        case ComputedConstructorExpr::Kind::kDocument: kind_name = "comp-doc"; break;
      }
      *out << '(' << kind_name;
      if (!e->name.empty()) {
        *out << ' ' << e->name;
      } else if (e->name_expr != nullptr) {
        *out << " {";
        Dump(e->name_expr.get(), out);
        *out << '}';
      }
      if (e->content != nullptr) {
        *out << " {";
        Dump(e->content.get(), out);
        *out << '}';
      }
      *out << ')';
      break;
    }
    case ExprKind::kTypeswitch: {
      const auto* e = static_cast<const TypeswitchExpr*>(expr);
      *out << "(typeswitch ";
      Dump(e->operand.get(), out);
      for (const TypeswitchExpr::CaseClause& clause : e->cases) {
        *out << " (case ";
        if (!clause.var.empty()) *out << '$' << clause.var << " as ";
        DumpSeqType(clause.type, out);
        *out << ' ';
        Dump(clause.result.get(), out);
        *out << ')';
      }
      *out << " (default ";
      if (!e->default_var.empty()) *out << '$' << e->default_var << ' ';
      Dump(e->default_result.get(), out);
      *out << "))";
      break;
    }
    default:
      *out << "(?)";
  }
}

}  // namespace

std::string DumpExpr(const Expr* expr) {
  std::ostringstream out;
  Dump(expr, &out);
  return out.str();
}

}  // namespace xqa

#ifndef XQA_PARSER_AST_H_
#define XQA_PARSER_AST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/error.h"
#include "xdm/atomic_value.h"

namespace xqa {

class Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// Expression node kinds. The evaluator dispatches on this tag.
enum class ExprKind : uint8_t {
  kLiteral,
  kVarRef,
  kContextItem,
  kSequence,       ///< comma expression (including empty parentheses)
  kRange,          ///< e1 to e2
  kArithmetic,     ///< + - * div idiv mod
  kUnary,          ///< unary + / -
  kComparison,     ///< general (= != < <= > >=), value (eq..ge), node (is)
  kLogical,        ///< and / or
  kIf,
  kQuantified,     ///< some / every
  kPath,
  kFilter,         ///< primary[predicate]...
  kFunctionCall,
  kFlwor,
  kDirectConstructor,
  kComputedConstructor,
  kTypeOp,      ///< instance of / treat as / castable as / cast as
  kTypeswitch,
};

/// The four sequence-type operators.
enum class TypeOpKind : uint8_t { kInstanceOf, kTreatAs, kCastableAs, kCastAs };

enum class ArithOp : uint8_t { kAdd, kSubtract, kMultiply, kDivide, kIntegerDivide, kModulo };

enum class ComparisonKind : uint8_t { kGeneral, kValue, kNodeIs };

enum class LogicalOp : uint8_t { kAnd, kOr };

/// XPath axes implemented by the engine.
enum class Axis : uint8_t {
  kChild,
  kDescendant,
  kDescendantOrSelf,
  kAttribute,
  kSelf,
  kParent,
  kAncestor,
  kAncestorOrSelf,
  kFollowingSibling,
  kPrecedingSibling,
};

/// Node test inside a path step.
struct NodeTest {
  enum class Kind : uint8_t {
    kName,      ///< element/attribute name, possibly "*"
    kAnyKind,   ///< node()
    kText,      ///< text()
    kComment,   ///< comment()
    kElement,   ///< element() or element(name)
    kAttribute, ///< attribute() or attribute(name)
    kDocument,  ///< document-node()
    kPi,        ///< processing-instruction()
  };
  Kind kind = Kind::kName;
  std::string name;  ///< empty or "*" = any name

  NodeTest() = default;
  NodeTest(const NodeTest& other) : kind(other.kind), name(other.name) {}
  NodeTest(NodeTest&& other) noexcept
      : kind(other.kind), name(std::move(other.name)) {}
  NodeTest& operator=(const NodeTest& other) {
    kind = other.kind;
    name = other.name;
    name_id_cache.store(0, std::memory_order_relaxed);
    return *this;
  }
  NodeTest& operator=(NodeTest&& other) noexcept {
    kind = other.kind;
    name = std::move(other.name);
    name_id_cache.store(0, std::memory_order_relaxed);
    return *this;
  }

  /// Per-(step, document) name-resolution cache maintained by the path
  /// evaluator: (document id << 32) | NameId, so a step touching one
  /// document resolves its name to an interned id once and every node test
  /// after that is an integer compare. 0 means empty (document ids start at
  /// 1); documents with ids above 2^32-1 bypass the cache. A single word so
  /// concurrent evaluator lanes race benignly (each would store the same
  /// value for the same document).
  mutable std::atomic<uint64_t> name_id_cache{0};
};

/// Minimal sequence-type annotation ("xs:integer?", "item()*", "element()+").
/// Used for documentation and arity/emptiness checks on function boundaries.
struct SeqType {
  enum class ItemKind : uint8_t {
    kItem,
    kNode,
    kElement,
    kAttribute,
    kText,
    kDocument,
    kAtomic,  ///< a named xs: type
  };
  enum class Occurrence : uint8_t { kOne, kOptional, kStar, kPlus };
  ItemKind item_kind = ItemKind::kItem;
  AtomicType atomic_type = AtomicType::kString;  ///< when item_kind == kAtomic
  std::string name;                              ///< element(name) etc.
  Occurrence occurrence = Occurrence::kOne;
};

/// Base class for all expression AST nodes.
class Expr {
 public:
  explicit Expr(ExprKind kind, SourceLocation location = {})
      : kind_(kind), location_(location) {}
  virtual ~Expr() = default;

  Expr(const Expr&) = delete;
  Expr& operator=(const Expr&) = delete;

  ExprKind kind() const { return kind_; }
  SourceLocation location() const { return location_; }

 private:
  ExprKind kind_;
  SourceLocation location_;
};

class LiteralExpr : public Expr {
 public:
  LiteralExpr(AtomicValue value, SourceLocation loc)
      : Expr(ExprKind::kLiteral, loc), value(std::move(value)) {}
  AtomicValue value;
};

class VarRefExpr : public Expr {
 public:
  VarRefExpr(std::string name, SourceLocation loc)
      : Expr(ExprKind::kVarRef, loc), name(std::move(name)) {}
  std::string name;
  /// Filled by the binder: frame-local slot index, or an index into the
  /// module's global-variable array when is_global.
  int slot = -1;
  bool is_global = false;
};

class ContextItemExpr : public Expr {
 public:
  explicit ContextItemExpr(SourceLocation loc)
      : Expr(ExprKind::kContextItem, loc) {}
};

class SequenceExpr : public Expr {
 public:
  SequenceExpr(std::vector<ExprPtr> items, SourceLocation loc)
      : Expr(ExprKind::kSequence, loc), items(std::move(items)) {}
  std::vector<ExprPtr> items;
};

class RangeExpr : public Expr {
 public:
  RangeExpr(ExprPtr lo, ExprPtr hi, SourceLocation loc)
      : Expr(ExprKind::kRange, loc), lo(std::move(lo)), hi(std::move(hi)) {}
  ExprPtr lo, hi;
};

class ArithmeticExpr : public Expr {
 public:
  ArithmeticExpr(ArithOp op, ExprPtr lhs, ExprPtr rhs, SourceLocation loc)
      : Expr(ExprKind::kArithmetic, loc),
        op(op),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  ArithOp op;
  ExprPtr lhs, rhs;
};

class UnaryExpr : public Expr {
 public:
  UnaryExpr(bool negate, ExprPtr operand, SourceLocation loc)
      : Expr(ExprKind::kUnary, loc), negate(negate), operand(std::move(operand)) {}
  bool negate;
  ExprPtr operand;
};

class ComparisonExpr : public Expr {
 public:
  ComparisonExpr(ComparisonKind kind, int op, ExprPtr lhs, ExprPtr rhs,
                 SourceLocation loc)
      : Expr(ExprKind::kComparison, loc),
        comparison_kind(kind),
        op(op),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  ComparisonKind comparison_kind;
  int op;  ///< a CompareOp for general/value; ignored for node `is`
  ExprPtr lhs, rhs;
};

class LogicalExpr : public Expr {
 public:
  LogicalExpr(LogicalOp op, ExprPtr lhs, ExprPtr rhs, SourceLocation loc)
      : Expr(ExprKind::kLogical, loc), op(op), lhs(std::move(lhs)), rhs(std::move(rhs)) {}
  LogicalOp op;
  ExprPtr lhs, rhs;
};

class IfExpr : public Expr {
 public:
  IfExpr(ExprPtr condition, ExprPtr then_branch, ExprPtr else_branch,
         SourceLocation loc)
      : Expr(ExprKind::kIf, loc),
        condition(std::move(condition)),
        then_branch(std::move(then_branch)),
        else_branch(std::move(else_branch)) {}
  ExprPtr condition, then_branch, else_branch;
};

class QuantifiedExpr : public Expr {
 public:
  struct Binding {
    std::string var;
    int slot = -1;
    ExprPtr expr;
  };
  QuantifiedExpr(bool every, std::vector<Binding> bindings, ExprPtr satisfies,
                 SourceLocation loc)
      : Expr(ExprKind::kQuantified, loc),
        every(every),
        bindings(std::move(bindings)),
        satisfies(std::move(satisfies)) {}
  bool every;  ///< false = some
  std::vector<Binding> bindings;
  ExprPtr satisfies;
};

/// A literal comparison pushed into a path step by the optimizer
/// (src/optimizer/pushdown.h): keep a context node n iff the general
/// comparison `data(n/child) <op> literal` holds — exactly the effective
/// boolean value the hoisted where clause would have computed. Honored by
/// EvalPath (and inside the element-name index scan for descendant steps);
/// a step carrying one is disqualified from the batched simple-path kernel
/// so both engines funnel through the same honoring point.
struct PushedValueFilter {
  NodeTest child;     ///< the child element name (Kind::kName)
  int op = 0;         ///< a CompareOp, same encoding as ComparisonExpr::op
  AtomicValue literal;
};

/// One step of a path: axis :: node-test predicate*.
struct PathStep {
  Axis axis = Axis::kChild;
  NodeTest test;
  std::vector<ExprPtr> predicates;
  /// Optimizer annotation; null unless predicate pushdown planted one.
  std::unique_ptr<PushedValueFilter> pushed_filter;
};

/// A path segment: either an axis step or a general expression evaluated
/// once per context item (XPath 2.0 StepExpr ::= FilterExpr | AxisStep),
/// e.g. the "(quantity * price)" in "$sales/(quantity * price)".
struct PathSegment {
  PathStep step;  ///< used when expr == nullptr
  ExprPtr expr;   ///< a filter-expression segment

  bool is_expr() const { return expr != nullptr; }
};

class PathExpr : public Expr {
 public:
  PathExpr(ExprPtr start, bool absolute, std::vector<PathSegment> segments,
           SourceLocation loc)
      : Expr(ExprKind::kPath, loc),
        start(std::move(start)),
        absolute(absolute),
        segments(std::move(segments)) {}
  /// Initial value expression ("$b" in $b/price); null for absolute paths,
  /// which start at the root of the context item's tree.
  ExprPtr start;
  bool absolute;
  std::vector<PathSegment> segments;
};

class FilterExpr : public Expr {
 public:
  FilterExpr(ExprPtr primary, std::vector<ExprPtr> predicates, SourceLocation loc)
      : Expr(ExprKind::kFilter, loc),
        primary(std::move(primary)),
        predicates(std::move(predicates)) {}
  ExprPtr primary;
  std::vector<ExprPtr> predicates;
};

class FunctionCallExpr : public Expr {
 public:
  FunctionCallExpr(std::string name, std::vector<ExprPtr> args, SourceLocation loc)
      : Expr(ExprKind::kFunctionCall, loc), name(std::move(name)), args(std::move(args)) {}
  std::string name;  ///< lexical QName, e.g. "avg" or "local:set-equal"
  std::vector<ExprPtr> args;
  /// Filled by the binder:
  int builtin_id = -1;    ///< index into the builtin registry, or -1
  int user_fn_index = -1; ///< index into Module::functions, or -1
};

// --- FLWOR ------------------------------------------------------------------

enum class ClauseKind : uint8_t {
  kFor,
  kLet,
  kWhere,
  kGroupBy,
  kOrderBy,
  kCount,  ///< XQuery 3.0 "count $var": numbers the tuple stream
};

struct OrderSpec {
  ExprPtr key;
  bool descending = false;
  bool empty_greatest = false;  ///< default: empty least
};

struct OrderByData {
  bool stable = false;
  std::vector<OrderSpec> specs;
};

/// A FLWOR clause. A tagged union kept as one struct for a simple pipeline.
struct FlworClause {
  ClauseKind kind;
  SourceLocation location;

  // kFor
  std::string for_var;
  int for_slot = -1;
  std::string pos_var;  ///< "at $pos"; empty if absent
  int pos_slot = -1;
  ExprPtr for_expr;
  /// Optimizer annotation (optimizer/shred_plan.h): this for binds
  /// `collection(shred_collection)//shred_record` — a shape the batched
  /// engine may satisfy from a shredded column table when the snapshot has
  /// one (docs/SHREDDING.md). Purely advisory; execution re-verifies and
  /// falls back to the DOM path byte-identically.
  bool shred_candidate = false;
  std::string shred_collection;  ///< "" = the default collection
  std::string shred_record;

  // kLet
  std::string let_var;
  int let_slot = -1;
  ExprPtr let_expr;

  // kWhere
  ExprPtr where_expr;

  // kGroupBy
  struct GroupKey {
    ExprPtr expr;
    std::string var;
    int slot = -1;
    std::string using_function;  ///< empty = fn:deep-equal
    int using_builtin_id = -1;
    int using_user_fn_index = -1;
  };
  /// True for the XQuery 3.0 dialect "group by $k := expr": keys are
  /// atomized singletons compared with `eq`, and every pre-group variable is
  /// implicitly rebound to the sequence of its values over the group — the
  /// alternative design the paper discusses (and rejects) in Section 3.2.
  bool xquery3_group_style = false;
  struct NestSpec {
    ExprPtr expr;
    std::optional<OrderByData> order_by;  ///< evaluated in pre-group scope
    std::string var;
    int slot = -1;
  };
  std::vector<GroupKey> group_keys;
  std::vector<NestSpec> nest_specs;

  // kCount
  std::string count_var;
  int count_slot = -1;

  // kOrderBy
  OrderByData order_by;
  /// True when this order by follows a group by in the same FLWOR
  /// (Section 3.4.2: `stable` is then ignored). Set by the binder.
  bool order_after_group = false;
};

class FlworExpr : public Expr {
 public:
  FlworExpr(std::vector<FlworClause> clauses, std::string at_var,
            ExprPtr return_expr, SourceLocation loc)
      : Expr(ExprKind::kFlwor, loc),
        clauses(std::move(clauses)),
        at_var(std::move(at_var)),
        return_expr(std::move(return_expr)) {}
  std::vector<FlworClause> clauses;
  std::string at_var;  ///< "return at $rank"; empty if absent
  int at_slot = -1;
  ExprPtr return_expr;
  /// Number of order-by clauses the optimizer removed because the derived
  /// input ordering already implied the key sequence (orderby_elim.h). The
  /// FLWOR engines surface it as QueryStats::order_by_elided per execution.
  int elided_order_by = 0;
};

// --- Constructors -----------------------------------------------------------

/// One piece of constructor content: literal text or an enclosed expression.
struct ConstructorContent {
  std::string text;  ///< used when expr == nullptr
  ExprPtr expr;      ///< nested constructor or enclosed expression
  bool is_comment = false;  ///< text holds the content of a literal comment
};

class DirectConstructorExpr : public Expr {
 public:
  struct Attribute {
    std::string name;
    /// Attribute value parts: literal text and enclosed expressions.
    std::vector<ConstructorContent> parts;
  };
  DirectConstructorExpr(std::string name, std::vector<Attribute> attributes,
                        std::vector<ConstructorContent> children,
                        SourceLocation loc)
      : Expr(ExprKind::kDirectConstructor, loc),
        name(std::move(name)),
        attributes(std::move(attributes)),
        children(std::move(children)) {}
  std::string name;
  std::vector<Attribute> attributes;
  std::vector<ConstructorContent> children;
};

/// instance of / treat as / castable as / cast as. For the cast family the
/// type is a SingleType: an atomic type with optional '?'.
class TypeOpExpr : public Expr {
 public:
  TypeOpExpr(TypeOpKind op, ExprPtr operand, SeqType type, SourceLocation loc)
      : Expr(ExprKind::kTypeOp, loc),
        op(op),
        operand(std::move(operand)),
        type(type) {}
  TypeOpKind op;
  ExprPtr operand;
  SeqType type;
};

/// typeswitch ($op) case ($v as)? SeqType return Expr ... default ($v)? return.
class TypeswitchExpr : public Expr {
 public:
  struct CaseClause {
    std::string var;  ///< empty when no case variable is bound
    int slot = -1;
    SeqType type;
    ExprPtr result;
  };
  TypeswitchExpr(ExprPtr operand, std::vector<CaseClause> cases,
                 std::string default_var, ExprPtr default_result,
                 SourceLocation loc)
      : Expr(ExprKind::kTypeswitch, loc),
        operand(std::move(operand)),
        cases(std::move(cases)),
        default_var(std::move(default_var)),
        default_result(std::move(default_result)) {}
  ExprPtr operand;
  std::vector<CaseClause> cases;
  std::string default_var;  ///< empty when unbound
  int default_slot = -1;
  ExprPtr default_result;
};

/// Computed constructors: element {name} {content}, attribute, text {},
/// comment {}, document {}.
class ComputedConstructorExpr : public Expr {
 public:
  enum class Kind : uint8_t { kElement, kAttribute, kText, kComment, kDocument };
  ComputedConstructorExpr(Kind constructor_kind, std::string name,
                          ExprPtr name_expr, ExprPtr content,
                          SourceLocation loc)
      : Expr(ExprKind::kComputedConstructor, loc),
        constructor_kind(constructor_kind),
        name(std::move(name)),
        name_expr(std::move(name_expr)),
        content(std::move(content)) {}
  Kind constructor_kind;
  std::string name;    ///< literal QName; empty when name_expr is used
  ExprPtr name_expr;   ///< computed name (element/attribute only)
  ExprPtr content;     ///< may be null (empty content)
};

// --- Module -----------------------------------------------------------------

struct FunctionDecl {
  std::string name;  ///< lexical QName, e.g. "local:set-equal"
  struct Param {
    std::string name;
    SeqType type;
    int slot = -1;
  };
  std::vector<Param> params;
  SeqType return_type;
  ExprPtr body;
  /// Filled by the binder: total frame slots for this function's body.
  int frame_size = 0;
  SourceLocation location;
};

struct VariableDecl {
  std::string name;
  ExprPtr expr;
  int slot = -1;
  SourceLocation location;
};

/// A parsed query: prolog declarations plus the query body.
struct Module {
  /// XQuery ordering mode (Section 3.4.1 of the paper relies on it).
  bool ordered = true;
  std::vector<FunctionDecl> functions;
  std::vector<VariableDecl> variables;
  ExprPtr body;
  /// Filled by the binder: frame slots for the main body (includes globals).
  int frame_size = 0;
};

using ModulePtr = std::unique_ptr<Module>;

/// Renders an expression tree as a compact s-expression — used by parser
/// tests and debugging.
std::string DumpExpr(const Expr* expr);

}  // namespace xqa

#endif  // XQA_PARSER_AST_H_

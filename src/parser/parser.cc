#include "parser/parser.h"

#include <utility>

#include "base/fault_injection.h"
#include "base/sanitizer.h"
#include "base/string_util.h"
#include "parser/lexer.h"
#include "xdm/compare.h"

namespace xqa {

namespace {

/// Recursive-descent parser over the mode-switching Lexer.
class Parser {
 public:
  explicit Parser(std::string_view query) : lexer_(query) {}

  ModulePtr Parse() {
    auto module = std::make_unique<Module>();
    ParseProlog(module.get());
    module->body = ParseExprSequence();
    if (lexer_.Peek().kind != TokenKind::kEof) {
      Fail("unexpected " + std::string(TokenKindName(lexer_.Peek().kind)) +
           " after the query body");
    }
    return module;
  }

 private:
  // --- Token helpers --------------------------------------------------------

  [[noreturn]] void Fail(const std::string& message) {
    ThrowError(ErrorCode::kXPST0003, message, lexer_.Peek().location);
  }

  /// Recursion-depth governor (docs/ROBUSTNESS.md). The limit caps AST depth
  /// well below what the evaluator tolerates, and far below where the parser
  /// itself would overflow the C++ stack on sanitizer builds.
  struct DepthGuard {
    explicit DepthGuard(Parser* parser) : parser(parser) {
      if (++parser->depth_ > kMaxParseDepth) {
        --parser->depth_;
        ThrowError(ErrorCode::kXQSV0005,
                   "expression nesting exceeds the parser depth limit (" +
                       std::to_string(kMaxParseDepth) + ")",
                   parser->Here());
      }
    }
    ~DepthGuard() { --parser->depth_; }
    Parser* parser;
  };
#if defined(XQA_UNDER_ASAN)
  static constexpr int kMaxParseDepth = 128;
#else
  static constexpr int kMaxParseDepth = 512;
#endif
  int depth_ = 0;

  bool PeekIs(TokenKind kind) { return lexer_.Peek().kind == kind; }

  bool PeekIsName(std::string_view text) {
    const Token& t = lexer_.Peek();
    return t.kind == TokenKind::kName && t.text == text;
  }

  bool Peek2IsName(std::string_view text) {
    const Token& t = lexer_.Peek2();
    return t.kind == TokenKind::kName && t.text == text;
  }

  bool ConsumeIf(TokenKind kind) {
    if (!PeekIs(kind)) return false;
    lexer_.Next();
    return true;
  }

  bool ConsumeIfName(std::string_view text) {
    if (!PeekIsName(text)) return false;
    lexer_.Next();
    return true;
  }

  Token Expect(TokenKind kind, const char* what) {
    if (!PeekIs(kind)) {
      Fail(std::string("expected ") + what + ", found " +
           std::string(TokenKindName(lexer_.Peek().kind)));
    }
    return lexer_.Next();
  }

  void ExpectName(std::string_view text) {
    if (!PeekIsName(text)) {
      Fail("expected '" + std::string(text) + "'");
    }
    lexer_.Next();
  }

  SourceLocation Here() { return lexer_.Peek().location; }

  // --- Prolog ---------------------------------------------------------------

  void ParseProlog(Module* module) {
    while (PeekIsName("declare")) {
      lexer_.Next();
      if (ConsumeIfName("function")) {
        ParseFunctionDecl(module);
      } else if (ConsumeIfName("variable")) {
        ParseVariableDecl(module);
      } else if (ConsumeIfName("ordering")) {
        if (ConsumeIfName("ordered")) {
          module->ordered = true;
        } else if (ConsumeIfName("unordered")) {
          module->ordered = false;
        } else {
          Fail("expected 'ordered' or 'unordered'");
        }
      } else if (ConsumeIfName("boundary-space")) {
        // Accepted and currently fixed at 'strip'.
        if (!ConsumeIfName("strip") && !ConsumeIfName("preserve")) {
          Fail("expected 'strip' or 'preserve'");
        }
      } else {
        Fail("unsupported declaration");
      }
      Expect(TokenKind::kSemicolon, "';' after declaration");
    }
  }

  void ParseFunctionDecl(Module* module) {
    FunctionDecl decl;
    decl.location = Here();
    decl.name = Expect(TokenKind::kName, "function name").text;
    Expect(TokenKind::kLParen, "'('");
    if (!PeekIs(TokenKind::kRParen)) {
      do {
        FunctionDecl::Param param;
        param.name = Expect(TokenKind::kVariable, "parameter variable").text;
        // Untyped parameters accept anything: item()*.
        param.type.occurrence = SeqType::Occurrence::kStar;
        if (ConsumeIfName("as")) param.type = ParseSeqType();
        decl.params.push_back(std::move(param));
      } while (ConsumeIf(TokenKind::kComma));
    }
    Expect(TokenKind::kRParen, "')'");
    decl.return_type.occurrence = SeqType::Occurrence::kStar;
    if (ConsumeIfName("as")) decl.return_type = ParseSeqType();
    Expect(TokenKind::kLBrace, "'{' before function body");
    decl.body = ParseExprSequence();
    Expect(TokenKind::kRBrace, "'}' after function body");
    module->functions.push_back(std::move(decl));
  }

  void ParseVariableDecl(Module* module) {
    VariableDecl decl;
    decl.location = Here();
    decl.name = Expect(TokenKind::kVariable, "variable name").text;
    if (ConsumeIfName("as")) ParseSeqType();
    Expect(TokenKind::kAssign, "':='");
    decl.expr = ParseExprSingle();
    module->variables.push_back(std::move(decl));
  }

  SeqType ParseSeqType() {
    SeqType type;
    Token name = Expect(TokenKind::kName, "a type name");
    auto parse_parens = [&](bool allow_name) {
      Expect(TokenKind::kLParen, "'('");
      if (allow_name && PeekIs(TokenKind::kName)) {
        type.name = lexer_.Next().text;
      } else if (allow_name && ConsumeIf(TokenKind::kStar)) {
        type.name = "*";
      }
      Expect(TokenKind::kRParen, "')'");
    };
    if (name.text == "item") {
      type.item_kind = SeqType::ItemKind::kItem;
      parse_parens(false);
    } else if (name.text == "node") {
      type.item_kind = SeqType::ItemKind::kNode;
      parse_parens(false);
    } else if (name.text == "element") {
      type.item_kind = SeqType::ItemKind::kElement;
      parse_parens(true);
    } else if (name.text == "attribute") {
      type.item_kind = SeqType::ItemKind::kAttribute;
      parse_parens(true);
    } else if (name.text == "text") {
      type.item_kind = SeqType::ItemKind::kText;
      parse_parens(false);
    } else if (name.text == "document-node") {
      type.item_kind = SeqType::ItemKind::kDocument;
      parse_parens(false);
    } else if (name.text == "empty-sequence") {
      parse_parens(false);
      type.item_kind = SeqType::ItemKind::kItem;
      type.occurrence = SeqType::Occurrence::kStar;
      return type;
    } else {
      type.item_kind = SeqType::ItemKind::kAtomic;
      type.atomic_type = AtomicTypeFromName(name.text);
    }
    if (ConsumeIf(TokenKind::kQuestion)) {
      type.occurrence = SeqType::Occurrence::kOptional;
    } else if (ConsumeIf(TokenKind::kStar)) {
      type.occurrence = SeqType::Occurrence::kStar;
    } else if (ConsumeIf(TokenKind::kPlus)) {
      type.occurrence = SeqType::Occurrence::kPlus;
    }
    return type;
  }

  AtomicType AtomicTypeFromName(const std::string& name) {
    std::string local = name;
    if (local.rfind("xs:", 0) == 0) local = local.substr(3);
    if (local == "string") return AtomicType::kString;
    if (local == "boolean") return AtomicType::kBoolean;
    if (local == "integer" || local == "int" || local == "long") {
      return AtomicType::kInteger;
    }
    if (local == "decimal") return AtomicType::kDecimal;
    if (local == "double" || local == "float") return AtomicType::kDouble;
    if (local == "dateTime") return AtomicType::kDateTime;
    if (local == "date") return AtomicType::kDate;
    if (local == "time") return AtomicType::kTime;
    if (local == "QName") return AtomicType::kQName;
    if (local == "untypedAtomic") return AtomicType::kUntypedAtomic;
    if (local == "anyAtomicType") return AtomicType::kUntypedAtomic;
    if (local == "dayTimeDuration" || local == "duration") {
      return AtomicType::kDuration;
    }
    Fail("unknown type name '" + name + "'");
  }

  // --- Expressions ----------------------------------------------------------

  ExprPtr ParseExprSequence() {
    SourceLocation loc = Here();
    std::vector<ExprPtr> items;
    items.push_back(ParseExprSingle());
    while (ConsumeIf(TokenKind::kComma)) {
      items.push_back(ParseExprSingle());
    }
    if (items.size() == 1) return std::move(items[0]);
    return std::make_unique<SequenceExpr>(std::move(items), loc);
  }

  /// Every level of expression nesting passes through here (parenthesized
  /// expressions, FLWOR bodies, function arguments, predicates) or through
  /// ParseConstructorAfterLt (nested direct constructors), so guarding these
  /// two bounds the depth of any AST this parser can build — a hostile
  /// "((((...))))"  or "<a><a><a>..." raises a clean XQSV0005 instead of
  /// overflowing the recursive-descent stack. The evaluator and binder walk
  /// the same tree, so the parser bound protects them as well.
  ExprPtr ParseExprSingle() {
    DepthGuard guard(this);
    return ParseOr();
  }

  /// An operand of and/or: a "special" expression (FLWOR, quantified, if) or
  /// a comparison chain. Allowing specials here is slightly more permissive
  /// than the W3C grammar — it accepts the idiomatic
  /// "... satisfies P and every ..." form used by the paper's set-equal
  /// example without parentheses.
  ExprPtr ParseComparisonOrSpecial() {
    if ((PeekIsName("for") || PeekIsName("let")) &&
        lexer_.Peek2().kind == TokenKind::kVariable) {
      return ParseFlwor();
    }
    if ((PeekIsName("some") || PeekIsName("every")) &&
        lexer_.Peek2().kind == TokenKind::kVariable) {
      return ParseQuantified();
    }
    if (PeekIsName("if") && lexer_.Peek2().kind == TokenKind::kLParen) {
      return ParseIf();
    }
    if (PeekIsName("typeswitch") &&
        lexer_.Peek2().kind == TokenKind::kLParen) {
      return ParseTypeswitch();
    }
    return ParseComparison();
  }

  ExprPtr ParseTypeswitch() {
    SourceLocation loc = Here();
    ExpectName("typeswitch");
    Expect(TokenKind::kLParen, "'('");
    ExprPtr operand = ParseExprSequence();
    Expect(TokenKind::kRParen, "')'");
    std::vector<TypeswitchExpr::CaseClause> cases;
    while (PeekIsName("case")) {
      lexer_.Next();
      TypeswitchExpr::CaseClause clause;
      if (PeekIs(TokenKind::kVariable)) {
        clause.var = lexer_.Next().text;
        ExpectName("as");
      }
      clause.type = ParseSeqType();
      ExpectName("return");
      clause.result = ParseExprSingle();
      cases.push_back(std::move(clause));
    }
    if (cases.empty()) Fail("typeswitch requires at least one case clause");
    ExpectName("default");
    std::string default_var;
    if (PeekIs(TokenKind::kVariable)) {
      default_var = lexer_.Next().text;
    }
    ExpectName("return");
    ExprPtr default_result = ParseExprSingle();
    return std::make_unique<TypeswitchExpr>(
        std::move(operand), std::move(cases), std::move(default_var),
        std::move(default_result), loc);
  }

  // FLWOR with the paper's extensions.
  ExprPtr ParseFlwor() {
    SourceLocation loc = Here();
    std::vector<FlworClause> clauses;

    // (ForClause | LetClause)+
    while (true) {
      if (PeekIsName("for") && lexer_.Peek2().kind == TokenKind::kVariable) {
        lexer_.Next();
        do {
          FlworClause clause;
          clause.kind = ClauseKind::kFor;
          clause.location = Here();
          clause.for_var = Expect(TokenKind::kVariable, "variable").text;
          if (ConsumeIfName("at")) {
            clause.pos_var = Expect(TokenKind::kVariable, "positional variable").text;
          }
          ExpectName("in");
          clause.for_expr = ParseExprSingle();
          clauses.push_back(std::move(clause));
        } while (ConsumeIf(TokenKind::kComma));
      } else if (PeekIsName("let") &&
                 lexer_.Peek2().kind == TokenKind::kVariable) {
        lexer_.Next();
        do {
          FlworClause clause;
          clause.kind = ClauseKind::kLet;
          clause.location = Here();
          clause.let_var = Expect(TokenKind::kVariable, "variable").text;
          Expect(TokenKind::kAssign, "':='");
          clause.let_expr = ParseExprSingle();
          clauses.push_back(std::move(clause));
        } while (ConsumeIf(TokenKind::kComma));
      } else if (PeekIsName("count") &&
                 lexer_.Peek2().kind == TokenKind::kVariable) {
        // XQuery 3.0 count clause: numbers the current tuple stream.
        lexer_.Next();
        FlworClause clause;
        clause.kind = ClauseKind::kCount;
        clause.location = Here();
        clause.count_var = Expect(TokenKind::kVariable, "count variable").text;
        clauses.push_back(std::move(clause));
      } else {
        break;
      }
    }

    // WhereClause?
    if (PeekIsName("where")) {
      lexer_.Next();
      FlworClause clause;
      clause.kind = ClauseKind::kWhere;
      clause.location = Here();
      clause.where_expr = ParseExprSingle();
      clauses.push_back(std::move(clause));
    }

    // (GroupByClause LetClause* WhereClause?)?
    if (PeekIsName("group") && Peek2IsName("by")) {
      lexer_.Next();
      lexer_.Next();
      clauses.push_back(ParseGroupBy());
      while (PeekIsName("let") && lexer_.Peek2().kind == TokenKind::kVariable) {
        lexer_.Next();
        do {
          FlworClause clause;
          clause.kind = ClauseKind::kLet;
          clause.location = Here();
          clause.let_var = Expect(TokenKind::kVariable, "variable").text;
          Expect(TokenKind::kAssign, "':='");
          clause.let_expr = ParseExprSingle();
          clauses.push_back(std::move(clause));
        } while (ConsumeIf(TokenKind::kComma));
      }
      if (PeekIsName("where")) {
        lexer_.Next();
        FlworClause clause;
        clause.kind = ClauseKind::kWhere;
        clause.location = Here();
        clause.where_expr = ParseExprSingle();
        clauses.push_back(std::move(clause));
      }
    }

    // count clause after the grouping section (numbers groups).
    if (PeekIsName("count") && lexer_.Peek2().kind == TokenKind::kVariable) {
      lexer_.Next();
      FlworClause clause;
      clause.kind = ClauseKind::kCount;
      clause.location = Here();
      clause.count_var = Expect(TokenKind::kVariable, "count variable").text;
      clauses.push_back(std::move(clause));
    }

    // OrderByClause?
    if (PeekIsName("order") || (PeekIsName("stable") && Peek2IsName("order"))) {
      FlworClause clause;
      clause.kind = ClauseKind::kOrderBy;
      clause.location = Here();
      clause.order_by = ParseOrderBy();
      clauses.push_back(std::move(clause));
    }

    // ReturnClause with optional output numbering: return (at $var)? Expr.
    ExpectName("return");
    std::string at_var;
    if (PeekIsName("at") && lexer_.Peek2().kind == TokenKind::kVariable) {
      lexer_.Next();
      at_var = Expect(TokenKind::kVariable, "positional variable").text;
    }
    ExprPtr return_expr = ParseExprSingle();
    return std::make_unique<FlworExpr>(std::move(clauses), std::move(at_var),
                                       std::move(return_expr), loc);
  }

  FlworClause ParseGroupBy() {
    FlworClause clause;
    clause.kind = ClauseKind::kGroupBy;
    clause.location = Here();
    // XQuery 3.0 dialect: "group by $k := Expr" or bare "group by $k"
    // (group by the variable's current value). Distinguished from the paper
    // dialect — whose key exprs may also start with '$' ("group by
    // $b/publisher into $p") — by what follows the variable: ':=', ',' or a
    // clause-ending keyword means 3.0; anything else is a key expression.
    bool xquery3 = false;
    if (PeekIs(TokenKind::kVariable)) {
      const Token& after = lexer_.Peek2();
      if (after.kind == TokenKind::kAssign ||
          after.kind == TokenKind::kComma) {
        xquery3 = true;
      } else if (after.kind == TokenKind::kName &&
                 (after.text == "return" || after.text == "order" ||
                  after.text == "stable" || after.text == "where" ||
                  after.text == "let" || after.text == "count")) {
        xquery3 = true;
      }
    }
    if (xquery3) {
      clause.xquery3_group_style = true;
      do {
        FlworClause::GroupKey key;
        key.var = Expect(TokenKind::kVariable, "grouping variable").text;
        if (ConsumeIf(TokenKind::kAssign)) {
          key.expr = ParseExprSingle();
        } else {
          // Bare "$v": groups by the current binding of $v.
          key.expr = std::make_unique<VarRefExpr>(key.var, clause.location);
        }
        clause.group_keys.push_back(std::move(key));
      } while (ConsumeIf(TokenKind::kComma));
      if (PeekIsName("nest")) {
        Fail("'nest' is the paper-dialect extension; XQuery 3.0 style "
             "group by rebinds variables implicitly");
      }
      return clause;
    }
    do {
      FlworClause::GroupKey key;
      key.expr = ParseExprSingle();
      ExpectName("into");
      key.var = Expect(TokenKind::kVariable, "grouping variable").text;
      if (ConsumeIfName("using")) {
        key.using_function = Expect(TokenKind::kName, "comparison function").text;
      }
      clause.group_keys.push_back(std::move(key));
    } while (ConsumeIf(TokenKind::kComma));
    if (ConsumeIfName("nest")) {
      do {
        FlworClause::NestSpec nest;
        nest.expr = ParseExprSingle();
        if (PeekIsName("order") ||
            (PeekIsName("stable") && Peek2IsName("order"))) {
          nest.order_by = ParseOrderBy();
        }
        ExpectName("into");
        nest.var = Expect(TokenKind::kVariable, "nesting variable").text;
        clause.nest_specs.push_back(std::move(nest));
      } while (ConsumeIf(TokenKind::kComma));
    }
    return clause;
  }

  OrderByData ParseOrderBy() {
    OrderByData data;
    if (ConsumeIfName("stable")) data.stable = true;
    ExpectName("order");
    ExpectName("by");
    do {
      OrderSpec spec;
      spec.key = ParseExprSingle();
      if (ConsumeIfName("descending")) {
        spec.descending = true;
      } else {
        ConsumeIfName("ascending");
      }
      if (ConsumeIfName("empty")) {
        if (ConsumeIfName("greatest")) {
          spec.empty_greatest = true;
        } else {
          ExpectName("least");
        }
      }
      data.specs.push_back(std::move(spec));
    } while (ConsumeIf(TokenKind::kComma));
    return data;
  }

  ExprPtr ParseQuantified() {
    SourceLocation loc = Here();
    bool every = lexer_.Next().text == "every";
    std::vector<QuantifiedExpr::Binding> bindings;
    do {
      QuantifiedExpr::Binding binding;
      binding.var = Expect(TokenKind::kVariable, "variable").text;
      ExpectName("in");
      binding.expr = ParseExprSingle();
      bindings.push_back(std::move(binding));
    } while (ConsumeIf(TokenKind::kComma));
    ExpectName("satisfies");
    ExprPtr satisfies = ParseExprSingle();
    return std::make_unique<QuantifiedExpr>(every, std::move(bindings),
                                            std::move(satisfies), loc);
  }

  ExprPtr ParseIf() {
    SourceLocation loc = Here();
    ExpectName("if");
    Expect(TokenKind::kLParen, "'('");
    ExprPtr condition = ParseExprSequence();
    Expect(TokenKind::kRParen, "')'");
    ExpectName("then");
    ExprPtr then_branch = ParseExprSingle();
    ExpectName("else");
    ExprPtr else_branch = ParseExprSingle();
    return std::make_unique<IfExpr>(std::move(condition), std::move(then_branch),
                                    std::move(else_branch), loc);
  }

  ExprPtr ParseOr() {
    ExprPtr lhs = ParseAnd();
    while (PeekIsName("or")) {
      SourceLocation loc = Here();
      lexer_.Next();
      ExprPtr rhs = ParseAnd();
      lhs = std::make_unique<LogicalExpr>(LogicalOp::kOr, std::move(lhs),
                                          std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseAnd() {
    ExprPtr lhs = ParseComparisonOrSpecial();
    while (PeekIsName("and")) {
      SourceLocation loc = Here();
      lexer_.Next();
      ExprPtr rhs = ParseComparisonOrSpecial();
      lhs = std::make_unique<LogicalExpr>(LogicalOp::kAnd, std::move(lhs),
                                          std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseComparison() {
    ExprPtr lhs = ParseRange();
    SourceLocation loc = Here();
    ComparisonKind kind;
    CompareOp op = CompareOp::kEq;
    const Token& t = lexer_.Peek();
    if (t.kind == TokenKind::kEq) { kind = ComparisonKind::kGeneral; op = CompareOp::kEq; }
    else if (t.kind == TokenKind::kNeq) { kind = ComparisonKind::kGeneral; op = CompareOp::kNe; }
    else if (t.kind == TokenKind::kLt) { kind = ComparisonKind::kGeneral; op = CompareOp::kLt; }
    else if (t.kind == TokenKind::kLe) { kind = ComparisonKind::kGeneral; op = CompareOp::kLe; }
    else if (t.kind == TokenKind::kGt) { kind = ComparisonKind::kGeneral; op = CompareOp::kGt; }
    else if (t.kind == TokenKind::kGe) { kind = ComparisonKind::kGeneral; op = CompareOp::kGe; }
    else if (t.kind == TokenKind::kName && t.text == "eq") { kind = ComparisonKind::kValue; op = CompareOp::kEq; }
    else if (t.kind == TokenKind::kName && t.text == "ne") { kind = ComparisonKind::kValue; op = CompareOp::kNe; }
    else if (t.kind == TokenKind::kName && t.text == "lt") { kind = ComparisonKind::kValue; op = CompareOp::kLt; }
    else if (t.kind == TokenKind::kName && t.text == "le") { kind = ComparisonKind::kValue; op = CompareOp::kLe; }
    else if (t.kind == TokenKind::kName && t.text == "gt") { kind = ComparisonKind::kValue; op = CompareOp::kGt; }
    else if (t.kind == TokenKind::kName && t.text == "ge") { kind = ComparisonKind::kValue; op = CompareOp::kGe; }
    else if (t.kind == TokenKind::kName && t.text == "is") { kind = ComparisonKind::kNodeIs; }
    else { return lhs; }
    lexer_.Next();
    ExprPtr rhs = ParseRange();
    return std::make_unique<ComparisonExpr>(kind, static_cast<int>(op),
                                            std::move(lhs), std::move(rhs), loc);
  }

  ExprPtr ParseRange() {
    ExprPtr lhs = ParseAdditive();
    if (PeekIsName("to")) {
      SourceLocation loc = Here();
      lexer_.Next();
      ExprPtr rhs = ParseAdditive();
      return std::make_unique<RangeExpr>(std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseAdditive() {
    ExprPtr lhs = ParseMultiplicative();
    while (PeekIs(TokenKind::kPlus) || PeekIs(TokenKind::kMinus)) {
      SourceLocation loc = Here();
      ArithOp op = lexer_.Next().kind == TokenKind::kPlus ? ArithOp::kAdd
                                                          : ArithOp::kSubtract;
      ExprPtr rhs = ParseMultiplicative();
      lhs = std::make_unique<ArithmeticExpr>(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseMultiplicative() {
    ExprPtr lhs = ParseUnion();
    while (true) {
      ArithOp op;
      if (PeekIs(TokenKind::kStar)) op = ArithOp::kMultiply;
      else if (PeekIsName("div")) op = ArithOp::kDivide;
      else if (PeekIsName("idiv")) op = ArithOp::kIntegerDivide;
      else if (PeekIsName("mod")) op = ArithOp::kModulo;
      else break;
      SourceLocation loc = Here();
      lexer_.Next();
      ExprPtr rhs = ParseUnion();
      lhs = std::make_unique<ArithmeticExpr>(op, std::move(lhs), std::move(rhs), loc);
    }
    return lhs;
  }

  ExprPtr ParseUnion() {
    ExprPtr lhs = ParseTypeOps();
    while (PeekIs(TokenKind::kVBar) || PeekIsName("union")) {
      SourceLocation loc = Here();
      lexer_.Next();
      ExprPtr rhs = ParseTypeOps();
      // Union is modeled as fn-level: the binder resolves "xqa:union".
      std::vector<ExprPtr> args;
      args.push_back(std::move(lhs));
      args.push_back(std::move(rhs));
      lhs = std::make_unique<FunctionCallExpr>("xqa:union", std::move(args), loc);
    }
    return lhs;
  }

  /// The cast/castable/treat/instance-of chain in W3C precedence order
  /// (cast binds tightest).
  ExprPtr ParseTypeOps() {
    ExprPtr expr = ParseUnary();
    if (PeekIsName("cast") && Peek2IsName("as")) {
      SourceLocation loc = Here();
      lexer_.Next();
      lexer_.Next();
      expr = std::make_unique<TypeOpExpr>(TypeOpKind::kCastAs, std::move(expr),
                                          ParseSingleType(), loc);
    }
    if (PeekIsName("castable") && Peek2IsName("as")) {
      SourceLocation loc = Here();
      lexer_.Next();
      lexer_.Next();
      expr = std::make_unique<TypeOpExpr>(TypeOpKind::kCastableAs,
                                          std::move(expr), ParseSingleType(),
                                          loc);
    }
    if (PeekIsName("treat") && Peek2IsName("as")) {
      SourceLocation loc = Here();
      lexer_.Next();
      lexer_.Next();
      expr = std::make_unique<TypeOpExpr>(TypeOpKind::kTreatAs, std::move(expr),
                                          ParseSeqType(), loc);
    }
    if (PeekIsName("instance") && Peek2IsName("of")) {
      SourceLocation loc = Here();
      lexer_.Next();
      lexer_.Next();
      expr = std::make_unique<TypeOpExpr>(TypeOpKind::kInstanceOf,
                                          std::move(expr), ParseSeqType(), loc);
    }
    return expr;
  }

  /// SingleType for cast/castable: an atomic type, optionally '?'.
  SeqType ParseSingleType() {
    SeqType type;
    Token name = Expect(TokenKind::kName, "an atomic type name");
    type.item_kind = SeqType::ItemKind::kAtomic;
    type.atomic_type = AtomicTypeFromName(name.text);
    if (ConsumeIf(TokenKind::kQuestion)) {
      type.occurrence = SeqType::Occurrence::kOptional;
    }
    return type;
  }

  ExprPtr ParseUnary() {
    bool negate = false;
    bool any_sign = false;
    SourceLocation loc = Here();
    while (PeekIs(TokenKind::kMinus) || PeekIs(TokenKind::kPlus)) {
      if (lexer_.Next().kind == TokenKind::kMinus) negate = !negate;
      any_sign = true;
    }
    ExprPtr operand = ParsePath();
    if (!any_sign) return operand;
    return std::make_unique<UnaryExpr>(negate, std::move(operand), loc);
  }

  // --- Paths ----------------------------------------------------------------

  static PathSegment DescendantSegment() {
    PathSegment segment;
    segment.step.axis = Axis::kDescendantOrSelf;
    segment.step.test.kind = NodeTest::Kind::kAnyKind;
    return segment;
  }

  ExprPtr ParsePath() {
    SourceLocation loc = Here();
    if (PeekIs(TokenKind::kSlash)) {
      lexer_.Next();
      std::vector<PathSegment> segments;
      if (IsStepStart() || IsFilterSegmentStart()) {
        ParseRelativeSegments(&segments);
      }
      return std::make_unique<PathExpr>(nullptr, /*absolute=*/true,
                                        std::move(segments), loc);
    }
    if (PeekIs(TokenKind::kSlashSlash)) {
      lexer_.Next();
      std::vector<PathSegment> segments;
      segments.push_back(DescendantSegment());
      ParseRelativeSegments(&segments);
      return std::make_unique<PathExpr>(nullptr, /*absolute=*/true,
                                        std::move(segments), loc);
    }
    // Relative path: first step may be a primary (filter) expression.
    ExprPtr first = ParseStepOrPrimary();
    if (!PeekIs(TokenKind::kSlash) && !PeekIs(TokenKind::kSlashSlash)) {
      return first;
    }
    std::vector<PathSegment> segments;
    while (PeekIs(TokenKind::kSlash) || PeekIs(TokenKind::kSlashSlash)) {
      if (lexer_.Next().kind == TokenKind::kSlashSlash) {
        segments.push_back(DescendantSegment());
      }
      segments.push_back(ParseSegment());
    }
    return std::make_unique<PathExpr>(std::move(first), /*absolute=*/false,
                                      std::move(segments), loc);
  }

  void ParseRelativeSegments(std::vector<PathSegment>* segments) {
    segments->push_back(ParseSegment());
    while (PeekIs(TokenKind::kSlash) || PeekIs(TokenKind::kSlashSlash)) {
      if (lexer_.Next().kind == TokenKind::kSlashSlash) {
        segments->push_back(DescendantSegment());
      }
      segments->push_back(ParseSegment());
    }
  }

  /// True when the upcoming token begins a filter-expression segment
  /// (variable, literal, parenthesized expression, or function call) rather
  /// than an axis step.
  bool IsFilterSegmentStart() {
    const Token& t = lexer_.Peek();
    switch (t.kind) {
      case TokenKind::kVariable:
      case TokenKind::kLParen:
      case TokenKind::kIntegerLiteral:
      case TokenKind::kDecimalLiteral:
      case TokenKind::kDoubleLiteral:
      case TokenKind::kStringLiteral:
        return true;
      case TokenKind::kName:
        return lexer_.Peek2().kind == TokenKind::kLParen &&
               !IsNodeTestName(t.text);
      default:
        return false;
    }
  }

  /// One path segment: an axis step or a filter-expression step.
  PathSegment ParseSegment() {
    PathSegment segment;
    if (IsFilterSegmentStart()) {
      segment.expr = ParseFilter();
      return segment;
    }
    segment.step = ParseAxisStep();
    return segment;
  }

  /// True when the upcoming token can begin an axis step.
  bool IsStepStart() {
    const Token& t = lexer_.Peek();
    return t.kind == TokenKind::kName || t.kind == TokenKind::kStar ||
           t.kind == TokenKind::kAt || t.kind == TokenKind::kDotDot ||
           t.kind == TokenKind::kDot;
  }

  /// Parses the first step of a relative path: either a primary expression
  /// (variable, literal, call, parenthesized, constructor, context item) with
  /// predicates, or an axis step wrapped in a single-step PathExpr.
  ExprPtr ParseStepOrPrimary() {
    const Token& t = lexer_.Peek();
    SourceLocation loc = t.location;
    switch (t.kind) {
      case TokenKind::kVariable:
      case TokenKind::kIntegerLiteral:
      case TokenKind::kDecimalLiteral:
      case TokenKind::kDoubleLiteral:
      case TokenKind::kStringLiteral:
      case TokenKind::kLParen:
      case TokenKind::kLt:
        return ParseFilter();
      case TokenKind::kDot: {
        lexer_.Next();
        ExprPtr ctx = std::make_unique<ContextItemExpr>(loc);
        std::vector<ExprPtr> predicates = ParsePredicates();
        if (predicates.empty()) return ctx;
        return std::make_unique<FilterExpr>(std::move(ctx),
                                            std::move(predicates), loc);
      }
      case TokenKind::kName: {
        // Function call if followed by '(' and not a node-test keyword.
        if (lexer_.Peek2().kind == TokenKind::kLParen && !IsNodeTestName(t.text)) {
          return ParseFilter();
        }
        if (IsComputedConstructorStart()) return ParseFilter();
        break;
      }
      default:
        break;
    }
    if (!IsStepStart()) {
      Fail("expected an expression, found " +
           std::string(TokenKindName(t.kind)));
    }
    std::vector<PathSegment> segments;
    segments.push_back(ParseSegment());
    return std::make_unique<PathExpr>(nullptr, /*absolute=*/false,
                                      std::move(segments), loc);
  }

  static bool IsNodeTestName(const std::string& name) {
    return name == "node" || name == "text" || name == "comment" ||
           name == "element" || name == "attribute" ||
           name == "document-node" || name == "processing-instruction";
  }

  PathStep ParseAxisStep() {
    PathStep step;
    const Token& t = lexer_.Peek();
    if (t.kind == TokenKind::kDotDot) {
      lexer_.Next();
      step.axis = Axis::kParent;
      step.test.kind = NodeTest::Kind::kAnyKind;
      step.predicates = ParsePredicates();
      return step;
    }
    if (t.kind == TokenKind::kDot) {
      lexer_.Next();
      step.axis = Axis::kSelf;
      step.test.kind = NodeTest::Kind::kAnyKind;
      step.predicates = ParsePredicates();
      return step;
    }
    if (ConsumeIf(TokenKind::kAt)) {
      step.axis = Axis::kAttribute;
      step.test = ParseNodeTest(/*attribute_axis=*/true);
      step.predicates = ParsePredicates();
      return step;
    }
    // Explicit axis?
    if (t.kind == TokenKind::kName &&
        lexer_.Peek2().kind == TokenKind::kColonColon) {
      std::string axis_name = t.text;
      if (axis_name == "child") step.axis = Axis::kChild;
      else if (axis_name == "descendant") step.axis = Axis::kDescendant;
      else if (axis_name == "descendant-or-self") step.axis = Axis::kDescendantOrSelf;
      else if (axis_name == "attribute") step.axis = Axis::kAttribute;
      else if (axis_name == "self") step.axis = Axis::kSelf;
      else if (axis_name == "parent") step.axis = Axis::kParent;
      else if (axis_name == "ancestor") step.axis = Axis::kAncestor;
      else if (axis_name == "ancestor-or-self") step.axis = Axis::kAncestorOrSelf;
      else if (axis_name == "following-sibling") step.axis = Axis::kFollowingSibling;
      else if (axis_name == "preceding-sibling") step.axis = Axis::kPrecedingSibling;
      else Fail("unknown axis '" + axis_name + "'");
      lexer_.Next();
      lexer_.Next();
      step.test = ParseNodeTest(step.axis == Axis::kAttribute);
      step.predicates = ParsePredicates();
      return step;
    }
    step.axis = Axis::kChild;
    step.test = ParseNodeTest(false);
    step.predicates = ParsePredicates();
    return step;
  }

  NodeTest ParseNodeTest(bool attribute_axis) {
    NodeTest test;
    if (ConsumeIf(TokenKind::kStar)) {
      test.kind = NodeTest::Kind::kName;
      test.name = "*";
      return test;
    }
    Token name = Expect(TokenKind::kName, "a node test");
    if (lexer_.Peek().kind == TokenKind::kLParen && IsNodeTestName(name.text)) {
      lexer_.Next();
      if (name.text == "node") test.kind = NodeTest::Kind::kAnyKind;
      else if (name.text == "text") test.kind = NodeTest::Kind::kText;
      else if (name.text == "comment") test.kind = NodeTest::Kind::kComment;
      else if (name.text == "element") test.kind = NodeTest::Kind::kElement;
      else if (name.text == "attribute") test.kind = NodeTest::Kind::kAttribute;
      else if (name.text == "document-node") test.kind = NodeTest::Kind::kDocument;
      else test.kind = NodeTest::Kind::kPi;
      if (PeekIs(TokenKind::kName)) test.name = lexer_.Next().text;
      else if (ConsumeIf(TokenKind::kStar)) test.name = "*";
      Expect(TokenKind::kRParen, "')'");
      return test;
    }
    test.kind = NodeTest::Kind::kName;
    test.name = name.text;
    (void)attribute_axis;
    return test;
  }

  std::vector<ExprPtr> ParsePredicates() {
    std::vector<ExprPtr> predicates;
    while (ConsumeIf(TokenKind::kLBracket)) {
      predicates.push_back(ParseExprSequence());
      Expect(TokenKind::kRBracket, "']'");
    }
    return predicates;
  }

  /// Primary expression plus trailing predicates.
  ExprPtr ParseFilter() {
    SourceLocation loc = Here();
    ExprPtr primary = ParsePrimary();
    std::vector<ExprPtr> predicates = ParsePredicates();
    if (predicates.empty()) return primary;
    return std::make_unique<FilterExpr>(std::move(primary),
                                        std::move(predicates), loc);
  }

  ExprPtr ParsePrimary() {
    const Token& t = lexer_.Peek();
    SourceLocation loc = t.location;
    switch (t.kind) {
      case TokenKind::kIntegerLiteral: {
        Token tok = lexer_.Next();
        int64_t value;
        if (!ParseInteger(tok.text, &value)) Fail("integer literal out of range");
        return std::make_unique<LiteralExpr>(AtomicValue::Integer(value), loc);
      }
      case TokenKind::kDecimalLiteral: {
        Token tok = lexer_.Next();
        Decimal value;
        if (!Decimal::Parse(tok.text, &value)) Fail("bad decimal literal");
        return std::make_unique<LiteralExpr>(AtomicValue::MakeDecimal(value), loc);
      }
      case TokenKind::kDoubleLiteral: {
        Token tok = lexer_.Next();
        double value;
        if (!ParseDouble(tok.text, &value)) Fail("bad double literal");
        return std::make_unique<LiteralExpr>(AtomicValue::Double(value), loc);
      }
      case TokenKind::kStringLiteral: {
        Token tok = lexer_.Next();
        return std::make_unique<LiteralExpr>(AtomicValue::String(tok.text), loc);
      }
      case TokenKind::kVariable: {
        Token tok = lexer_.Next();
        return std::make_unique<VarRefExpr>(tok.text, loc);
      }
      case TokenKind::kLParen: {
        lexer_.Next();
        if (ConsumeIf(TokenKind::kRParen)) {
          return std::make_unique<SequenceExpr>(std::vector<ExprPtr>{}, loc);
        }
        ExprPtr inner = ParseExprSequence();
        Expect(TokenKind::kRParen, "')'");
        return inner;
      }
      case TokenKind::kLt:
        return ParseDirectConstructor();
      case TokenKind::kName: {
        if (IsComputedConstructorStart()) {
          return ParseComputedConstructor();
        }
        if (lexer_.Peek2().kind == TokenKind::kLParen) {
          Token name = lexer_.Next();
          lexer_.Next();  // '('
          std::vector<ExprPtr> args;
          if (!PeekIs(TokenKind::kRParen)) {
            do {
              args.push_back(ParseExprSingle());
            } while (ConsumeIf(TokenKind::kComma));
          }
          Expect(TokenKind::kRParen, "')'");
          return std::make_unique<FunctionCallExpr>(name.text, std::move(args), loc);
        }
        Fail("unexpected name '" + t.text + "' in expression");
      }
      default:
        Fail("unexpected " + std::string(TokenKindName(t.kind)));
    }
  }

  /// True when the upcoming tokens begin a computed constructor:
  ///   element {..} / element name {..} / attribute {..} / attribute name {..}
  ///   text {..} / comment {..} / document {..}
  bool IsComputedConstructorStart() {
    const Token& t = lexer_.Peek();
    if (t.kind != TokenKind::kName) return false;
    if (t.text == "text" || t.text == "comment" || t.text == "document") {
      return lexer_.Peek2().kind == TokenKind::kLBrace;
    }
    if (t.text == "element" || t.text == "attribute") {
      if (lexer_.Peek2().kind == TokenKind::kLBrace) return true;
      return lexer_.Peek2().kind == TokenKind::kName &&
             lexer_.Peek3().kind == TokenKind::kLBrace;
    }
    return false;
  }

  ExprPtr ParseComputedConstructor() {
    SourceLocation loc = Here();
    Token keyword = lexer_.Next();
    ComputedConstructorExpr::Kind kind;
    if (keyword.text == "element") kind = ComputedConstructorExpr::Kind::kElement;
    else if (keyword.text == "attribute") kind = ComputedConstructorExpr::Kind::kAttribute;
    else if (keyword.text == "text") kind = ComputedConstructorExpr::Kind::kText;
    else if (keyword.text == "comment") kind = ComputedConstructorExpr::Kind::kComment;
    else kind = ComputedConstructorExpr::Kind::kDocument;

    std::string name;
    ExprPtr name_expr;
    if (kind == ComputedConstructorExpr::Kind::kElement ||
        kind == ComputedConstructorExpr::Kind::kAttribute) {
      if (PeekIs(TokenKind::kName)) {
        name = lexer_.Next().text;
      } else {
        Expect(TokenKind::kLBrace, "'{' or a name");
        name_expr = ParseExprSequence();
        Expect(TokenKind::kRBrace, "'}'");
      }
    }
    Expect(TokenKind::kLBrace, "'{'");
    ExprPtr content;
    if (!PeekIs(TokenKind::kRBrace)) {
      content = ParseExprSequence();
    }
    Expect(TokenKind::kRBrace, "'}'");
    return std::make_unique<ComputedConstructorExpr>(
        kind, std::move(name), std::move(name_expr), std::move(content), loc);
  }

  // --- Direct constructors (raw lexical mode) -------------------------------

  ExprPtr ParseDirectConstructor() {
    SourceLocation loc = Here();
    Expect(TokenKind::kLt, "'<'");
    // No whitespace is allowed between '<' and the tag name.
    if (!IsNameStartChar(lexer_.RawPeek())) {
      Fail("expected an element name after '<'");
    }
    return ParseConstructorAfterLt(loc);
  }

  /// Parses a direct element constructor whose '<' has been consumed and
  /// whose name starts at the raw cursor.
  ExprPtr ParseConstructorAfterLt(SourceLocation loc) {
    DepthGuard guard(this);
    std::string name = lexer_.RawName();
    std::vector<DirectConstructorExpr::Attribute> attributes;
    bool self_closing = false;
    // Attribute list.
    while (true) {
      lexer_.RawSkipWhitespace();
      char c = lexer_.RawPeek();
      if (c == '/') {
        lexer_.RawNext();
        if (lexer_.RawNext() != '>') Fail("expected '/>'");
        self_closing = true;
        break;
      }
      if (c == '>') {
        lexer_.RawNext();
        break;
      }
      if (!IsNameStartChar(c)) Fail("expected an attribute name");
      DirectConstructorExpr::Attribute attr;
      attr.name = lexer_.RawName();
      for (const auto& existing : attributes) {
        if (existing.name == attr.name) {
          ThrowError(ErrorCode::kXQDY0025,
                     "duplicate attribute '" + attr.name + "'", loc);
        }
      }
      lexer_.RawSkipWhitespace();
      if (lexer_.RawNext() != '=') Fail("expected '=' after attribute name");
      lexer_.RawSkipWhitespace();
      char quote = lexer_.RawNext();
      if (quote != '"' && quote != '\'') Fail("expected a quoted attribute value");
      attr.parts = ParseQuotedParts(quote);
      attributes.push_back(std::move(attr));
    }

    std::vector<ConstructorContent> children;
    if (!self_closing) {
      children = ParseElementContent(name);
    }
    return std::make_unique<DirectConstructorExpr>(
        std::move(name), std::move(attributes), std::move(children), loc);
  }

  /// Attribute value: text and {expr} parts until the closing quote.
  std::vector<ConstructorContent> ParseQuotedParts(char quote) {
    std::vector<ConstructorContent> parts;
    std::string text;
    auto flush = [&]() {
      if (text.empty()) return;
      ConstructorContent part;
      part.text = std::move(text);
      text.clear();
      parts.push_back(std::move(part));
    };
    while (true) {
      char c = lexer_.RawPeek();
      if (c == '\0') Fail("unterminated attribute value");
      if (c == quote) {
        lexer_.RawNext();
        if (lexer_.RawPeek() == quote) {  // doubled quote escape
          lexer_.RawNext();
          text.push_back(quote);
          continue;
        }
        flush();
        return parts;
      }
      if (c == '{') {
        if (lexer_.RawPeek(1) == '{') {
          lexer_.RawNext();
          lexer_.RawNext();
          text.push_back('{');
          continue;
        }
        lexer_.RawNext();  // '{' — switch to token mode for the expression
        flush();
        ConstructorContent part;
        part.expr = ParseExprSequence();
        Expect(TokenKind::kRBrace, "'}'");
        parts.push_back(std::move(part));
        continue;
      }
      if (c == '}') {
        lexer_.RawNext();
        if (lexer_.RawPeek() == '}') {
          lexer_.RawNext();
          text.push_back('}');
          continue;
        }
        Fail("'}' must be escaped as '}}' in attribute values");
      }
      if (c == '&') {
        AppendRawReference(&text);
        continue;
      }
      if (c == '<') Fail("'<' in attribute value");
      text.push_back(lexer_.RawNext());
    }
  }

  /// Element content until the matching end tag. Whitespace-only literal text
  /// is boundary whitespace and is stripped (boundary-space strip).
  std::vector<ConstructorContent> ParseElementContent(const std::string& name) {
    std::vector<ConstructorContent> children;
    std::string text;
    bool text_significant = false;  // contains CDATA or character references
    auto flush = [&]() {
      if (!text.empty() && (text_significant || !IsAllWhitespace(text))) {
        ConstructorContent part;
        part.text = std::move(text);
        children.push_back(std::move(part));
      }
      text.clear();
      text_significant = false;
    };
    while (true) {
      char c = lexer_.RawPeek();
      if (c == '\0') Fail("unterminated element constructor <" + name + ">");
      if (c == '<') {
        if (lexer_.RawPeek(1) == '/') {
          flush();
          lexer_.RawNext();
          lexer_.RawNext();
          std::string end_name = lexer_.RawName();
          if (end_name != name) {
            Fail("mismatched end tag </" + end_name + ">, expected </" + name + ">");
          }
          lexer_.RawSkipWhitespace();
          if (lexer_.RawNext() != '>') Fail("expected '>'");
          return children;
        }
        if (lexer_.RawPeek(1) == '!' && lexer_.RawPeek(2) == '-' &&
            lexer_.RawPeek(3) == '-') {
          flush();
          for (int i = 0; i < 4; ++i) lexer_.RawNext();
          ConstructorContent comment;
          comment.is_comment = true;
          while (!(lexer_.RawPeek() == '-' && lexer_.RawPeek(1) == '-' &&
                   lexer_.RawPeek(2) == '>')) {
            if (lexer_.RawPeek() == '\0') Fail("unterminated comment");
            comment.text.push_back(lexer_.RawNext());
          }
          for (int i = 0; i < 3; ++i) lexer_.RawNext();
          children.push_back(std::move(comment));
          continue;
        }
        if (lexer_.RawPeek(1) == '!' && lexer_.RawPeek(2) == '[') {
          // <![CDATA[ ... ]]>
          const char* prefix = "<![CDATA[";
          for (int i = 0; prefix[i] != '\0'; ++i) {
            if (lexer_.RawNext() != prefix[i]) Fail("malformed CDATA section");
          }
          while (!(lexer_.RawPeek() == ']' && lexer_.RawPeek(1) == ']' &&
                   lexer_.RawPeek(2) == '>')) {
            if (lexer_.RawPeek() == '\0') Fail("unterminated CDATA section");
            text.push_back(lexer_.RawNext());
          }
          for (int i = 0; i < 3; ++i) lexer_.RawNext();
          text_significant = true;
          continue;
        }
        // Nested element constructor.
        flush();
        SourceLocation loc = lexer_.CurrentLocation();
        lexer_.RawNext();  // '<'
        if (!IsNameStartChar(lexer_.RawPeek())) {
          Fail("expected an element name after '<'");
        }
        ConstructorContent part;
        part.expr = ParseConstructorAfterLt(loc);
        children.push_back(std::move(part));
        continue;
      }
      if (c == '{') {
        if (lexer_.RawPeek(1) == '{') {
          lexer_.RawNext();
          lexer_.RawNext();
          text.push_back('{');
          text_significant = true;
          continue;
        }
        flush();
        lexer_.RawNext();  // '{' — token mode for the enclosed expression
        ConstructorContent part;
        part.expr = ParseExprSequence();
        Expect(TokenKind::kRBrace, "'}'");
        children.push_back(std::move(part));
        continue;
      }
      if (c == '}') {
        lexer_.RawNext();
        if (lexer_.RawPeek() == '}') {
          lexer_.RawNext();
          text.push_back('}');
          text_significant = true;
          continue;
        }
        Fail("'}' must be escaped as '}}' in element content");
      }
      if (c == '&') {
        AppendRawReference(&text);
        text_significant = true;
        continue;
      }
      text.push_back(lexer_.RawNext());
    }
  }

  /// Decodes an entity or character reference in raw constructor content.
  void AppendRawReference(std::string* out) {
    lexer_.RawNext();  // '&'
    std::string entity;
    while (lexer_.RawPeek() != ';') {
      if (lexer_.RawPeek() == '\0' || entity.size() > 10) {
        Fail("bad entity reference");
      }
      entity.push_back(lexer_.RawNext());
    }
    lexer_.RawNext();  // ';'
    if (entity == "lt") out->push_back('<');
    else if (entity == "gt") out->push_back('>');
    else if (entity == "amp") out->push_back('&');
    else if (entity == "quot") out->push_back('"');
    else if (entity == "apos") out->push_back('\'');
    else if (!entity.empty() && entity[0] == '#') {
      int base = 10;
      size_t i = 1;
      if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
        base = 16;
        i = 2;
      }
      uint32_t code = 0;
      for (; i < entity.size(); ++i) {
        char d = entity[i];
        int digit;
        if (d >= '0' && d <= '9') digit = d - '0';
        else if (base == 16 && d >= 'a' && d <= 'f') digit = d - 'a' + 10;
        else if (base == 16 && d >= 'A' && d <= 'F') digit = d - 'A' + 10;
        else { Fail("bad character reference"); }
        code = code * base + static_cast<uint32_t>(digit);
      }
      if (code == 0 || code > 0x10FFFF) Fail("bad character reference");
      if (code < 0x80) {
        out->push_back(static_cast<char>(code));
      } else if (code < 0x800) {
        out->push_back(static_cast<char>(0xC0 | (code >> 6)));
        out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
      } else {
        out->push_back(static_cast<char>(0xE0 | (code >> 12)));
        out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
        out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
      }
    } else {
      Fail("unknown entity &" + entity + ";");
    }
  }

  Lexer lexer_;
};

}  // namespace

ModulePtr ParseQuery(std::string_view query) {
  XQA_FAULT_POINT("compile.parse", ErrorCode::kXPST0003);
  Parser parser(query);
  return parser.Parse();
}

}  // namespace xqa

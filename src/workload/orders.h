#ifndef XQA_WORKLOAD_ORDERS_H_
#define XQA_WORKLOAD_ORDERS_H_

#include <string>

#include "xml/node.h"

namespace xqa::workload {

/// Purchase-order generator matching Section 6 of the paper: order elements
/// with customer information and an average of four lineitem elements; each
/// lineitem has many child elements; each order's textual form is ~3 KB.
/// The grouping children (shipinstruct, shipmode, tax, quantity) have
/// configurable distinct-value counts — the experiment's group-count axis.
struct OrderConfig {
  int num_orders = 2000;
  /// Lineitems per order are uniform in [min, max]; the paper's average of
  /// four corresponds to the default [1, 7].
  int min_lineitems = 1;
  int max_lineitems = 7;

  // Distinct-value counts of the grouping children. The defaults mirror
  // TPC-H-like cardinalities; benchmarks override them to sweep group counts.
  int shipinstruct_cardinality = 4;
  int shipmode_cardinality = 7;
  int tax_cardinality = 9;
  int quantity_cardinality = 50;

  uint64_t seed = 42;
};

/// The generated collection as XML text: <orders> wrapping `num_orders`
/// order elements.
std::string GenerateOrdersXml(const OrderConfig& config);

/// Convenience: generate and parse.
DocumentPtr GenerateOrdersDocument(const OrderConfig& config);

/// Total number of lineitem elements that GenerateOrdersXml(config) emits
/// (deterministic given the seed).
int CountLineitems(const OrderConfig& config);

}  // namespace xqa::workload

#endif  // XQA_WORKLOAD_ORDERS_H_

#include "workload/sales.h"

#include <sstream>

#include "workload/random.h"
#include "xml/xml_parser.h"

namespace xqa::workload {

namespace {

struct RegionStates {
  const char* region;
  std::vector<std::string> states;
};

const std::vector<RegionStates>& Regions() {
  static const auto& regions = *new std::vector<RegionStates>{
      {"West", {"CA", "OR", "WA", "NV"}},
      {"East", {"NY", "MA", "NJ", "CT"}},
      {"South", {"TX", "FL", "GA"}},
      {"Midwest", {"IL", "OH", "MI"}},
  };
  return regions;
}

const std::vector<std::string>& Products() {
  static const auto& products = *new std::vector<std::string>{
      "Green Tea", "Black Tea", "Oolong", "White Tea", "Chai", "Matcha",
      "Earl Grey", "Rooibos", "Jasmine", "Mint Tea", "Pu-erh", "Darjeeling"};
  return products;
}

}  // namespace

std::string GenerateSalesXml(const SalesConfig& config) {
  Random random(config.seed);
  std::ostringstream out;
  out << "<sales>\n";
  for (int i = 0; i < config.num_sales; ++i) {
    const RegionStates& region = random.Pick(Regions());
    int year = static_cast<int>(random.NextInt(config.min_year, config.max_year));
    int month = static_cast<int>(random.NextInt(1, 12));
    int day = static_cast<int>(random.NextInt(1, 28));
    int hour = static_cast<int>(random.NextInt(0, 23));
    int minute = static_cast<int>(random.NextInt(0, 59));
    int second = static_cast<int>(random.NextInt(0, 59));
    int product = static_cast<int>(
        random.NextInt(0, std::min<int64_t>(config.product_pool,
                                            Products().size()) - 1));
    int64_t price_cents = random.NextInt(199, 2999);
    char timestamp[32];
    std::snprintf(timestamp, sizeof(timestamp),
                  "%04d-%02d-%02dT%02d:%02d:%02d", year, month, day, hour,
                  minute, second);
    out << "  <sale>\n";
    out << "    <timestamp>" << timestamp << "</timestamp>\n";
    out << "    <product>" << Products()[product] << "</product>\n";
    out << "    <state>" << random.Pick(region.states) << "</state>\n";
    out << "    <region>" << region.region << "</region>\n";
    out << "    <quantity>" << random.NextInt(1, 50) << "</quantity>\n";
    out << "    <price>" << price_cents / 100 << "."
        << (price_cents % 100 < 10 ? "0" : "") << price_cents % 100
        << "</price>\n";
    out << "  </sale>\n";
  }
  out << "</sales>\n";
  return out.str();
}

DocumentPtr GenerateSalesDocument(const SalesConfig& config) {
  return ParseXml(GenerateSalesXml(config));
}

}  // namespace xqa::workload

#include "workload/orders.h"

#include <sstream>

#include "workload/random.h"
#include "xml/xml_parser.h"

namespace xqa::workload {

namespace {

const std::vector<std::string>& CustomerNames() {
  static const auto& names = *new std::vector<std::string>{
      "Acme Retail", "Globex Corporation", "Initech Systems",
      "Umbrella Supplies", "Stark Industrial", "Wayne Logistics",
      "Tyrell Wholesale", "Cyberdyne Parts", "Wonka Distribution",
      "Oscorp Trading"};
  return names;
}

const std::vector<std::string>& Cities() {
  static const auto& cities = *new std::vector<std::string>{
      "San Jose", "Baltimore", "Chicago", "Austin", "Seattle",
      "Boston", "Denver", "Atlanta", "Portland", "Raleigh"};
  return cities;
}

const std::vector<std::string>& Comments() {
  static const auto& comments = *new std::vector<std::string>{
      "expedite per customer request and confirm receipt by fax",
      "fragile goods, handle with care during transfer",
      "standard handling, no special instructions apply",
      "priority account, notify sales representative on delay",
      "bulk packaging acceptable for this shipment",
      "customer requires delivery confirmation signature"};
  return comments;
}

void EmitLineitem(std::ostringstream* out, Random* random, int line_number,
                  const OrderConfig& config) {
  auto& o = *out;
  int quantity = static_cast<int>(
      random->NextInt(1, config.quantity_cardinality));
  int64_t price_cents = random->NextInt(100, 99999);
  int discount_percent = static_cast<int>(random->NextInt(0, 10));
  int tax_index = static_cast<int>(random->NextInt(0, config.tax_cardinality - 1));
  o << "    <lineitem>\n";
  o << "      <linenumber>" << line_number << "</linenumber>\n";
  o << "      <partkey>P-" << random->NextInt(1, 20000) << "</partkey>\n";
  o << "      <suppkey>S-" << random->NextInt(1, 1000) << "</suppkey>\n";
  o << "      <quantity>" << quantity << "</quantity>\n";
  o << "      <extendedprice>" << price_cents / 100 << "."
    << (price_cents % 100 < 10 ? "0" : "") << price_cents % 100
    << "</extendedprice>\n";
  o << "      <discount>0.0" << discount_percent << "</discount>\n";
  // Tax values are drawn from a small set of distinct rates.
  o << "      <tax>0." << 10 + tax_index << "</tax>\n";
  o << "      <returnflag>" << (random->NextBool(0.5) ? "N" : "R")
    << "</returnflag>\n";
  o << "      <linestatus>" << (random->NextBool(0.5) ? "O" : "F")
    << "</linestatus>\n";
  o << "      <shipdate>199" << random->NextInt(2, 8) << "-0"
    << random->NextInt(1, 9) << "-1" << random->NextInt(0, 9)
    << "</shipdate>\n";
  o << "      <commitdate>199" << random->NextInt(2, 8) << "-0"
    << random->NextInt(1, 9) << "-2" << random->NextInt(0, 8)
    << "</commitdate>\n";
  o << "      <receiptdate>199" << random->NextInt(2, 8) << "-0"
    << random->NextInt(1, 9) << "-0" << random->NextInt(1, 9)
    << "</receiptdate>\n";
  o << "      <shipinstruct>"
    << TokenValue("INSTRUCT", random, config.shipinstruct_cardinality)
    << "</shipinstruct>\n";
  o << "      <shipmode>"
    << TokenValue("MODE", random, config.shipmode_cardinality)
    << "</shipmode>\n";
  o << "      <comment>" << random->Pick(Comments()) << "</comment>\n";
  o << "    </lineitem>\n";
}

}  // namespace

std::string GenerateOrdersXml(const OrderConfig& config) {
  Random random(config.seed);
  std::ostringstream out;
  out << "<orders>\n";
  for (int i = 0; i < config.num_orders; ++i) {
    out << "  <order>\n";
    out << "    <orderkey>O-" << i + 1 << "</orderkey>\n";
    out << "    <orderstatus>" << (random.NextBool(0.3) ? "F" : "O")
        << "</orderstatus>\n";
    out << "    <orderdate>199" << random.NextInt(2, 8) << "-0"
        << random.NextInt(1, 9) << "-0" << random.NextInt(1, 9)
        << "</orderdate>\n";
    out << "    <orderpriority>" << random.NextInt(1, 5)
        << "-PRIORITY</orderpriority>\n";
    out << "    <customer>\n";
    out << "      <name>" << random.Pick(CustomerNames()) << "</name>\n";
    out << "      <custkey>C-" << random.NextInt(1, 5000) << "</custkey>\n";
    out << "      <address>\n";
    out << "        <street>" << random.NextInt(1, 9999) << " Market St</street>\n";
    out << "        <city>" << random.Pick(Cities()) << "</city>\n";
    out << "        <zip>9" << random.NextInt(1000, 9999) << "0</zip>\n";
    out << "      </address>\n";
    out << "      <phone>408-555-0" << random.NextInt(100, 999) << "</phone>\n";
    out << "    </customer>\n";
    out << "    <clerk>Clerk#" << random.NextInt(1, 1000) << "</clerk>\n";
    int lineitems = static_cast<int>(
        random.NextInt(config.min_lineitems, config.max_lineitems));
    for (int line = 1; line <= lineitems; ++line) {
      EmitLineitem(&out, &random, line, config);
    }
    out << "    <totalprice>" << random.NextInt(100, 500000) << ".00"
        << "</totalprice>\n";
    out << "    <comment>" << random.Pick(Comments()) << "</comment>\n";
    out << "  </order>\n";
  }
  out << "</orders>\n";
  return out.str();
}

DocumentPtr GenerateOrdersDocument(const OrderConfig& config) {
  return ParseXml(GenerateOrdersXml(config));
}

int CountLineitems(const OrderConfig& config) {
  // Replays only the draws that determine lineitem counts by regenerating;
  // cheap relative to benchmark setup and exactly consistent.
  DocumentPtr doc = GenerateOrdersDocument(config);
  int count = 0;
  const Node* orders = doc->root()->children()[0];  // the <orders> wrapper
  for (const Node* order : orders->children()) {
    if (order->kind() != NodeKind::kElement) continue;
    for (const Node* child : order->children()) {
      if (child->kind() == NodeKind::kElement && child->name() == "lineitem") {
        ++count;
      }
    }
  }
  return count;
}

}  // namespace xqa::workload

#ifndef XQA_WORKLOAD_BOOKS_H_
#define XQA_WORKLOAD_BOOKS_H_

#include <string>

#include "xml/node.h"

namespace xqa::workload {

/// Bibliography generator matching the paper's running example (Section 2):
/// books with a title, zero or more authors, zero or one publisher, a year,
/// a price, and an optional discount. With `with_categories`, each book also
/// carries a ragged category hierarchy (Section 5's rollup input).
struct BooksConfig {
  int num_books = 100;
  int publisher_pool = 8;
  int author_pool = 20;
  int min_year = 1990;
  int max_year = 2004;
  int max_authors = 3;          ///< 0..max_authors authors per book
  double no_publisher_prob = 0.1;
  double discount_prob = 0.5;
  bool with_categories = false;
  uint64_t seed = 7;
};

/// <bib> wrapping `num_books` book elements.
std::string GenerateBooksXml(const BooksConfig& config);

DocumentPtr GenerateBooksDocument(const BooksConfig& config);

/// The paper's own example documents, usable in tests and examples.
std::string PaperBibliographyXml();
std::string PaperSalesXml();
std::string PaperCategorizedBooksXml();

}  // namespace xqa::workload

#endif  // XQA_WORKLOAD_BOOKS_H_

#ifndef XQA_WORKLOAD_SALES_H_
#define XQA_WORKLOAD_SALES_H_

#include <string>

#include "xml/node.h"

namespace xqa::workload {

/// Retail sales generator for the OLAP queries (Q3, Q8, Q10): sale elements
/// with timestamp, product, state, region, quantity, and price. States are
/// grouped under four fixed regions so region/state rollups are meaningful.
struct SalesConfig {
  int num_sales = 1000;
  int min_year = 2002;
  int max_year = 2004;
  int product_pool = 12;
  uint64_t seed = 11;
};

/// <sales> wrapping `num_sales` sale elements.
std::string GenerateSalesXml(const SalesConfig& config);

DocumentPtr GenerateSalesDocument(const SalesConfig& config);

}  // namespace xqa::workload

#endif  // XQA_WORKLOAD_SALES_H_

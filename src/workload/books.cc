#include "workload/books.h"

#include <sstream>

#include "workload/random.h"
#include "xml/xml_parser.h"

namespace xqa::workload {

namespace {

const std::vector<std::string>& TitleWords() {
  static const auto& words = *new std::vector<std::string>{
      "Transaction", "Processing", "Database", "Systems", "Distributed",
      "Query", "Optimization", "Principles", "Foundations", "Advanced",
      "Modern", "Practical", "Readings", "Concurrency", "Streams"};
  return words;
}

const std::vector<std::string>& AuthorNames() {
  static const auto& names = *new std::vector<std::string>{
      "Jim Gray", "Andreas Reuter", "Don Chamberlin", "Jim Melton",
      "Michael Stonebraker", "Jennifer Widom", "Hector Garcia-Molina",
      "Jeffrey Ullman", "Raghu Ramakrishnan", "Johannes Gehrke",
      "Serge Abiteboul", "Rick Hull", "Victor Vianu", "David DeWitt",
      "Goetz Graefe", "Pat Selinger", "Bruce Lindsay", "C. Mohan",
      "Phil Bernstein", "Nathan Goodman"};
  return names;
}

const std::vector<std::string>& CategoryForests() {
  // Ragged hierarchies in the style of Section 5.
  static const auto& forests = *new std::vector<std::string>{
      "<software><db><concurrency/></db><distributed/></software>",
      "<software><db/></software><anthology/>",
      "<software><db><query-processing/><storage/></db></software>",
      "<software><languages><xml/></languages></software>",
      "<hardware><architecture/></hardware>",
      "<software><db/><os/></software>",
      "<anthology/>",
      "<software><db><concurrency/><recovery/></db></software>"};
  return forests;
}

}  // namespace

std::string GenerateBooksXml(const BooksConfig& config) {
  Random random(config.seed);
  std::ostringstream out;
  out << "<bib>\n";
  for (int i = 0; i < config.num_books; ++i) {
    out << "  <book>\n";
    out << "    <title>" << random.Pick(TitleWords()) << " "
        << random.Pick(TitleWords()) << " " << i << "</title>\n";
    int authors = static_cast<int>(random.NextInt(0, config.max_authors));
    for (int a = 0; a < authors; ++a) {
      out << "    <author>" << random.Pick(AuthorNames()) << "</author>\n";
    }
    if (!random.NextBool(config.no_publisher_prob)) {
      out << "    <publisher>Publisher-"
          << random.NextInt(0, config.publisher_pool - 1) << "</publisher>\n";
    }
    out << "    <year>" << random.NextInt(config.min_year, config.max_year)
        << "</year>\n";
    int64_t price = random.NextInt(10, 150);
    out << "    <price>" << price << ".00</price>\n";
    if (random.NextBool(config.discount_prob)) {
      out << "    <discount>" << random.NextInt(1, price / 2) << ".00"
          << "</discount>\n";
    }
    if (config.with_categories) {
      out << "    <categories>" << random.Pick(CategoryForests())
          << "</categories>\n";
    }
    out << "  </book>\n";
  }
  out << "</bib>\n";
  return out.str();
}

DocumentPtr GenerateBooksDocument(const BooksConfig& config) {
  return ParseXml(GenerateBooksXml(config));
}

std::string PaperBibliographyXml() {
  // The Section 2 example instance plus companions that exercise multiple
  // authors, missing publishers, and missing discounts.
  return R"(<bib>
  <book>
    <title>Transaction Processing</title>
    <author>Jim Gray</author>
    <author>Andreas Reuter</author>
    <publisher>Morgan Kaufmann</publisher>
    <year>1993</year>
    <price>65.00</price>
    <discount>6.00</discount>
  </book>
  <book>
    <title>Readings in Database Systems</title>
    <author>Michael Stonebraker</author>
    <publisher>Morgan Kaufmann</publisher>
    <year>1993</year>
    <price>43.00</price>
  </book>
  <book>
    <title>Understanding the New SQL</title>
    <author>Jim Melton</author>
    <publisher>Morgan Kaufmann</publisher>
    <year>1993</year>
    <price>54.95</price>
    <discount>4.95</discount>
  </book>
  <book>
    <title>Principles of Transaction Processing</title>
    <author>Andreas Reuter</author>
    <author>Jim Gray</author>
    <publisher>Morgan Kaufmann</publisher>
    <year>1995</year>
    <price>34.00</price>
  </book>
  <book>
    <title>Understanding SQL and Java Together</title>
    <author>Jim Melton</author>
    <publisher>Morgan Kaufmann</publisher>
    <year>1995</year>
    <price>49.95</price>
  </book>
  <book>
    <title>Database Systems The Complete Book</title>
    <author>Hector Garcia-Molina</author>
    <author>Jeffrey Ullman</author>
    <author>Jennifer Widom</author>
    <publisher>Addison-Wesley</publisher>
    <year>1993</year>
    <price>48.00</price>
  </book>
  <book>
    <title>Self Published Notes</title>
    <author>Jim Gray</author>
    <year>1995</year>
    <price>120.00</price>
  </book>
</bib>)";
}

std::string PaperSalesXml() {
  // Sale elements shaped like the Section 2 example.
  return R"(<sales>
  <sale>
    <timestamp>2004-01-31T11:32:07</timestamp>
    <product>Green Tea</product>
    <state>CA</state>
    <region>West</region>
    <quantity>10</quantity>
    <price>9.99</price>
  </sale>
  <sale>
    <timestamp>2004-02-14T09:12:55</timestamp>
    <product>Black Tea</product>
    <state>OR</state>
    <region>West</region>
    <quantity>5</quantity>
    <price>7.50</price>
  </sale>
  <sale>
    <timestamp>2004-03-02T15:45:30</timestamp>
    <product>Green Tea</product>
    <state>CA</state>
    <region>West</region>
    <quantity>20</quantity>
    <price>9.99</price>
  </sale>
  <sale>
    <timestamp>2004-04-01T11:32:07</timestamp>
    <product>Oolong</product>
    <state>NY</state>
    <region>East</region>
    <quantity>8</quantity>
    <price>12.00</price>
  </sale>
  <sale>
    <timestamp>2004-05-20T18:03:44</timestamp>
    <product>Green Tea</product>
    <state>MA</state>
    <region>East</region>
    <quantity>3</quantity>
    <price>9.99</price>
  </sale>
  <sale>
    <timestamp>2003-11-11T10:00:00</timestamp>
    <product>Black Tea</product>
    <state>CA</state>
    <region>West</region>
    <quantity>7</quantity>
    <price>7.50</price>
  </sale>
</sales>)";
}

std::string PaperCategorizedBooksXml() {
  // The Section 5 ragged-hierarchy example instance.
  return R"(<bib>
  <book>
    <title>Transaction Processing</title>
    <publisher>Morgan Kaufmann</publisher>
    <year>1993</year>
    <price>59.00</price>
    <categories>
      <software><db><concurrency/></db><distributed/></software>
    </categories>
  </book>
  <book>
    <title>Readings in Database Systems</title>
    <publisher>Morgan Kaufmann</publisher>
    <year>1998</year>
    <price>65.00</price>
    <categories>
      <software><db/></software>
      <anthology/>
    </categories>
  </book>
</bib>)";
}

}  // namespace xqa::workload

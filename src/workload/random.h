#ifndef XQA_WORKLOAD_RANDOM_H_
#define XQA_WORKLOAD_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace xqa::workload {

/// Deterministic 64-bit PRNG (splitmix64). Workload generation must be
/// reproducible across runs and platforms, so std::mt19937 distributions
/// (which vary across standard libraries) are avoided.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed) {}

  uint64_t NextUint64();

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p.
  bool NextBool(double p);

  /// Uniformly chosen element.
  template <typename T>
  const T& Pick(const std::vector<T>& pool) {
    return pool[static_cast<size_t>(NextInt(0, static_cast<int64_t>(pool.size()) - 1))];
  }

 private:
  uint64_t state_;
};

/// "Value-<k>" style token with k < cardinality; used for controlled
/// distinct-value counts in grouping experiments.
std::string TokenValue(const std::string& prefix, Random* random,
                       int cardinality);

}  // namespace xqa::workload

#endif  // XQA_WORKLOAD_RANDOM_H_

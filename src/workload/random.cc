#include "workload/random.h"

namespace xqa::workload {

uint64_t Random::NextUint64() {
  // splitmix64 (Steele, Lea, Flood).
  uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

int64_t Random::NextInt(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo + 1);
  return lo + static_cast<int64_t>(NextUint64() % span);
}

double Random::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Random::NextBool(double p) { return NextDouble() < p; }

std::string TokenValue(const std::string& prefix, Random* random,
                       int cardinality) {
  return prefix + "-" + std::to_string(random->NextInt(0, cardinality - 1));
}

}  // namespace xqa::workload

// xs:dayTimeDuration: lexical forms, date/time arithmetic, components.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "xdm/datetime.h"

namespace xqa {
namespace {

int64_t ParseDur(const std::string& text) {
  int64_t millis = 0;
  EXPECT_TRUE(DateTime::ParseDayTimeDuration(text, &millis)) << text;
  return millis;
}

TEST(DurationLexical, Parse) {
  EXPECT_EQ(ParseDur("P1D"), 24LL * 60 * 60 * 1000);
  EXPECT_EQ(ParseDur("PT1H"), 60LL * 60 * 1000);
  EXPECT_EQ(ParseDur("PT1M"), 60LL * 1000);
  EXPECT_EQ(ParseDur("PT1S"), 1000);
  EXPECT_EQ(ParseDur("PT0.5S"), 500);
  EXPECT_EQ(ParseDur("P1DT2H3M4.5S"),
            ((24 + 2) * 60LL * 60 + 3 * 60 + 4) * 1000 + 500);
  EXPECT_EQ(ParseDur("-PT30M"), -30LL * 60 * 1000);
  EXPECT_EQ(ParseDur("PT90M"), 90LL * 60 * 1000);  // unnormalized input OK
}

TEST(DurationLexical, Rejects) {
  int64_t millis;
  EXPECT_FALSE(DateTime::ParseDayTimeDuration("P", &millis));
  EXPECT_FALSE(DateTime::ParseDayTimeDuration("PT", &millis));
  EXPECT_FALSE(DateTime::ParseDayTimeDuration("1D", &millis));
  EXPECT_FALSE(DateTime::ParseDayTimeDuration("P1H", &millis));   // H needs T
  EXPECT_FALSE(DateTime::ParseDayTimeDuration("P1Y", &millis));   // no years
  EXPECT_FALSE(DateTime::ParseDayTimeDuration("PT1.5H", &millis)); // frac hours
  EXPECT_FALSE(DateTime::ParseDayTimeDuration("PT1S2M", &millis)); // order
  EXPECT_FALSE(DateTime::ParseDayTimeDuration("", &millis));
}

TEST(DurationLexical, CanonicalForm) {
  EXPECT_EQ(DateTime::FormatDayTimeDuration(0), "PT0S");
  EXPECT_EQ(DateTime::FormatDayTimeDuration(1000), "PT1S");
  EXPECT_EQ(DateTime::FormatDayTimeDuration(90LL * 60 * 1000), "PT1H30M");
  EXPECT_EQ(DateTime::FormatDayTimeDuration(25LL * 60 * 60 * 1000), "P1DT1H");
  EXPECT_EQ(DateTime::FormatDayTimeDuration(-500), "-PT0.5S");
  // Round-trips.
  for (const char* text : {"P1D", "PT1H30M", "P2DT3H4M5.25S", "-PT10S"}) {
    EXPECT_EQ(DateTime::FormatDayTimeDuration(ParseDur(text)), text);
  }
}

TEST(EpochRoundTrip, FromEpochInvertsToEpoch) {
  for (const char* text :
       {"0001-01-01T00:00:00", "1999-12-31T23:59:59", "2000-02-29T12:00:00",
        "2004-07-04T01:02:03.456", "9999-12-31T23:59:59"}) {
    DateTime dt;
    ASSERT_TRUE(DateTime::ParseDateTime(text, &dt));
    EXPECT_EQ(DateTime::FromEpochMillis(dt.ToEpochMillis()).ToString(), text);
  }
}

class DurationQueryTest : public ::testing::Test {
 protected:
  std::string Run(const std::string& query) {
    DocumentPtr doc = Engine::ParseDocument("<r/>");
    return engine_.Compile(query).ExecuteToString(doc);
  }

  ErrorCode RunError(const std::string& query) {
    DocumentPtr doc = Engine::ParseDocument("<r/>");
    try {
      engine_.Compile(query).Execute(doc);
    } catch (const XQueryError& error) {
      return error.code();
    }
    return ErrorCode::kOk;
  }

  Engine engine_;
};

TEST_F(DurationQueryTest, ConstructorAndString) {
  EXPECT_EQ(Run("xs:dayTimeDuration(\"PT90M\")"), "PT1H30M");
  EXPECT_EQ(Run("string(xs:dayTimeDuration(\"P1D\"))"), "P1D");
  EXPECT_EQ(RunError("xs:dayTimeDuration(\"nope\")"), ErrorCode::kFORG0001);
}

TEST_F(DurationQueryTest, DateTimeSubtraction) {
  EXPECT_EQ(Run("xs:dateTime(\"2004-02-01T12:00:00\") - "
                "xs:dateTime(\"2004-01-31T10:30:00\")"),
            "P1DT1H30M");
  EXPECT_EQ(Run("xs:date(\"2004-03-01\") - xs:date(\"2004-02-28\")"),
            "P2D");  // 2004 is a leap year
  EXPECT_EQ(Run("xs:date(\"2003-03-01\") - xs:date(\"2003-02-28\")"), "P1D");
  EXPECT_EQ(Run("xs:time(\"14:00:00\") - xs:time(\"12:30:00\")"), "PT1H30M");
}

TEST_F(DurationQueryTest, DateTimePlusMinusDuration) {
  EXPECT_EQ(Run("xs:dateTime(\"2004-01-31T23:00:00\") + "
                "xs:dayTimeDuration(\"PT2H\")"),
            "2004-02-01T01:00:00");
  EXPECT_EQ(Run("xs:date(\"2004-02-28\") + xs:dayTimeDuration(\"P2D\")"),
            "2004-03-01");
  EXPECT_EQ(Run("xs:dateTime(\"2004-01-01T00:00:00\") - "
                "xs:dayTimeDuration(\"PT1S\")"),
            "2003-12-31T23:59:59");
  // Commuted: duration + dateTime.
  EXPECT_EQ(Run("xs:dayTimeDuration(\"P1D\") + xs:date(\"2004-12-31\")"),
            "2005-01-01");
}

TEST_F(DurationQueryTest, DurationArithmetic) {
  EXPECT_EQ(Run("xs:dayTimeDuration(\"PT1H\") + xs:dayTimeDuration(\"PT30M\")"),
            "PT1H30M");
  EXPECT_EQ(Run("xs:dayTimeDuration(\"P1D\") - xs:dayTimeDuration(\"PT1H\")"),
            "PT23H");
  EXPECT_EQ(Run("xs:dayTimeDuration(\"PT1H\") * 2.5"), "PT2H30M");
  EXPECT_EQ(Run("xs:dayTimeDuration(\"P1D\") div 4"), "PT6H");
  EXPECT_EQ(Run("xs:dayTimeDuration(\"PT3H\") div xs:dayTimeDuration(\"PT30M\")"),
            "6");
  EXPECT_EQ(RunError("xs:dayTimeDuration(\"P1D\") div 0"),
            ErrorCode::kFOAR0001);
}

TEST_F(DurationQueryTest, Comparisons) {
  EXPECT_EQ(Run("xs:dayTimeDuration(\"PT1H\") lt xs:dayTimeDuration(\"P1D\")"),
            "true");
  EXPECT_EQ(Run("xs:dayTimeDuration(\"PT60M\") eq xs:dayTimeDuration(\"PT1H\")"),
            "true");
  EXPECT_EQ(Run("max((xs:dayTimeDuration(\"PT1H\"), "
                "xs:dayTimeDuration(\"PT90M\")))"),
            "PT1H30M");
  EXPECT_EQ(RunError("xs:dayTimeDuration(\"PT1H\") eq 3600"),
            ErrorCode::kXPTY0004);
}

TEST_F(DurationQueryTest, Components) {
  EXPECT_EQ(Run("days-from-duration(xs:dayTimeDuration(\"P3DT10H\"))"), "3");
  EXPECT_EQ(Run("hours-from-duration(xs:dayTimeDuration(\"P3DT10H\"))"), "10");
  EXPECT_EQ(Run("minutes-from-duration(xs:dayTimeDuration(\"PT2H35M\"))"), "35");
  EXPECT_EQ(Run("seconds-from-duration(xs:dayTimeDuration(\"PT1M30.5S\"))"),
            "30.5");
  EXPECT_EQ(Run("count(days-from-duration(()))"), "0");
}

TEST_F(DurationQueryTest, InstanceOfAndCast) {
  EXPECT_EQ(Run("xs:dayTimeDuration(\"P1D\") instance of xs:dayTimeDuration"),
            "true");
  EXPECT_EQ(Run("\"PT5S\" cast as xs:dayTimeDuration"), "PT5S");
  EXPECT_EQ(Run("\"PT5X\" castable as xs:dayTimeDuration"), "false");
}

TEST_F(DurationQueryTest, TimeWindowAnalytics) {
  // A duration-based window: sales within one hour of each sale — the
  // time-span analogue of the paper's Q8 row-count window.
  DocumentPtr doc = Engine::ParseDocument(R"(
    <sales>
      <sale><ts>2004-01-01T10:00:00</ts><amt>10</amt></sale>
      <sale><ts>2004-01-01T10:30:00</ts><amt>20</amt></sale>
      <sale><ts>2004-01-01T11:15:00</ts><amt>40</amt></sale>
      <sale><ts>2004-01-01T15:00:00</ts><amt>80</amt></sale>
    </sales>)");
  std::string out = engine_.Compile(R"(
    for $s in //sale
    let $t := xs:dateTime($s/ts)
    order by $t
    return sum(for $p in //sale
               let $pt := xs:dateTime($p/ts)
               where $pt le $t and
                     $t - $pt le xs:dayTimeDuration("PT1H")
               return number($p/amt))
  )").ExecuteToString(doc);
  // Windows: [10], [10+20], [20+40 (10:15<=..? 11:15-10:00=75m > 1h -> out)],
  // [80].
  EXPECT_EQ(out, "10 30 60 80");
}

TEST_F(DurationQueryTest, GroupingByDurationBuckets) {
  DocumentPtr doc = Engine::ParseDocument(R"(
    <log>
      <job><start>2004-01-01T10:00:00</start><end>2004-01-01T10:05:00</end></job>
      <job><start>2004-01-01T11:00:00</start><end>2004-01-01T11:04:00</end></job>
      <job><start>2004-01-01T12:00:00</start><end>2004-01-01T13:30:00</end></job>
    </log>)");
  std::string out = engine_.Compile(R"(
    for $j in //job
    let $d := xs:dateTime($j/end) - xs:dateTime($j/start)
    group by $d le xs:dayTimeDuration("PT10M") into $fast
    nest $d into $durations
    order by $fast
    return <g fast="{$fast}">{count($durations)}</g>
  )").ExecuteToString(doc);
  EXPECT_EQ(out, "<g fast=\"false\">1</g><g fast=\"true\">2</g>");
}

TEST_F(DurationQueryTest, SumOverflowRaisesFODT0002) {
  // ~1e11 days is representable in int64 milliseconds; twice that is not.
  // The overflow must surface as FODT0002, not wrap silently.
  EXPECT_EQ(RunError("sum((xs:dayTimeDuration(\"P100000000000D\"), "
                     "xs:dayTimeDuration(\"P100000000000D\")))"),
            ErrorCode::kFODT0002);
  EXPECT_EQ(RunError("sum((xs:dayTimeDuration(\"-P100000000000D\"), "
                     "xs:dayTimeDuration(\"-P100000000000D\")))"),
            ErrorCode::kFODT0002);
  // avg shares the accumulator and the error.
  EXPECT_EQ(RunError("avg((xs:dayTimeDuration(\"P100000000000D\"), "
                     "xs:dayTimeDuration(\"P100000000000D\")))"),
            ErrorCode::kFODT0002);
  // Non-overflowing sums still work.
  EXPECT_EQ(Run("sum((xs:dayTimeDuration(\"P1D\"), "
                "xs:dayTimeDuration(\"PT12H\")))"),
            "P1DT12H");
}

}  // namespace
}  // namespace xqa

// Resource-governance behaviors that hold in every build, no fault
// injection required (docs/ROBUSTNESS.md): cancellation checkpoints inside
// the long loops cooperative polling previously missed (sort comparators,
// deep-equal, the serializer), the evaluator recursion-depth guard, and the
// service-level degradation surface — per-query budgets, the memory
// pressure gate, and retryable classification.

#include <chrono>
#include <functional>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "base/cancellation.h"
#include "base/error.h"
#include "base/memory_tracker.h"
#include "service/query_service.h"
#include "workload/orders.h"
#include "xdm/deep_equal.h"
#include "xml/serializer.h"

namespace xqa {
namespace {

ErrorCode CodeOf(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const XQueryError& error) {
    return error.code();
  }
  return ErrorCode::kOk;
}

// Regression test for the sort-comparator checkpoint: a timed-out order-by
// over 10^6 keys must abort near the deadline instead of finishing the
// sort. Before the comparator polled, the deadline was only noticed after
// std::stable_sort returned.
TEST(SortCancellationTest, TimedOutMillionKeySortAbortsPromptly) {
  Engine engine;
  PreparedQuery prepared = engine.Compile(
      "for $i in 1 to 1000000 "
      "order by $i mod 7, $i descending "
      "return $i");
  CancellationToken token;
  token.SetTimeout(0.15);
  ExecutionOptions exec;
  exec.cancellation = &token;

  auto start = std::chrono::steady_clock::now();
  ErrorCode code = CodeOf([&] { prepared.Execute(exec); });
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EXPECT_EQ(code, ErrorCode::kXQSV0001);
  // "Promptly": orders of magnitude under the full run, with slack for
  // sanitizer builds.
  EXPECT_LT(elapsed, 5.0);
}

TEST(DeepEqualCancellationTest, CancelledTokenAbortsComparison) {
  // Two separately generated (deterministic, so identical) documents: the
  // comparison must walk every node — the identity short-circuit never
  // fires — and hit the poll.
  workload::OrderConfig config;
  config.num_orders = 100;
  DocumentPtr a = workload::GenerateOrdersDocument(config);
  DocumentPtr b = workload::GenerateOrdersDocument(config);
  CancellationToken token;
  token.Cancel();
  ErrorCode code =
      CodeOf([&] { DeepEqualNodes(a->root(), b->root(), &token); });
  EXPECT_EQ(code, ErrorCode::kXQSV0002);
  // Null token (the default) stays poll-free and completes.
  EXPECT_TRUE(DeepEqualNodes(a->root(), b->root()));
}

TEST(SerializerCancellationTest, CancelledTokenAbortsSerialization) {
  workload::OrderConfig config;
  config.num_orders = 100;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  CancellationToken token;
  token.Cancel();
  SerializeOptions options;
  options.cancellation = &token;
  ErrorCode code = CodeOf([&] { SerializeNode(doc->root(), options); });
  EXPECT_EQ(code, ErrorCode::kXQSV0002);
}

TEST(SerializerMemoryTest, TinyBudgetTripsXQSV0004) {
  workload::OrderConfig config;
  config.num_orders = 100;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  MemoryTracker tracker("serialize", 256);
  SerializeOptions options;
  options.memory = &tracker;
  ErrorCode code = CodeOf([&] { SerializeNode(doc->root(), options); });
  EXPECT_EQ(code, ErrorCode::kXQSV0004);
  EXPECT_EQ(tracker.budget_failures(), 1u);
}

TEST(EvalDepthTest, RunawayRecursionTripsXQSV0005) {
  // Parses shallow (the recursion is dynamic), so only the evaluator's
  // depth guard can stop it — before the C++ stack does.
  Engine engine;
  PreparedQuery prepared = engine.Compile(
      "declare function local:down($n as xs:integer) as xs:integer "
      "{ if ($n le 0) then 0 else local:down($n - 1) }; "
      "local:down(1000000)");
  ErrorCode code = CodeOf([&] { prepared.Execute(); });
  EXPECT_EQ(code, ErrorCode::kXQSV0005);

  // Recursion within the limit still runs.
  PreparedQuery shallow = engine.Compile(
      "declare function local:down($n as xs:integer) as xs:integer "
      "{ if ($n le 0) then 0 else local:down($n - 1) }; "
      "local:down(100)");
  Sequence result = shallow.Execute();
  ASSERT_EQ(result.size(), 1u);
}

// --- Batched-execution governance (docs/VECTORIZATION.md) -------------------
// The batched engine's morsel loops must hit the same cooperative
// checkpoints as the scalar pipeline: per-row cancellation polls and
// per-batch memory recharges, in both ablation settings.

TEST(BatchedGovernanceTest, CancelledTokenStopsBatchLoopsInBothEngines) {
  Engine engine;
  PreparedQuery prepared = engine.Compile(
      "for $i in 1 to 1000000 where $i mod 3 = 0 return $i");
  for (bool batched : {false, true}) {
    CancellationToken token;
    token.Cancel();
    ExecutionOptions exec;
    exec.cancellation = &token;
    exec.use_batched_execution = batched;
    ErrorCode code = CodeOf([&] { prepared.Execute(exec); });
    EXPECT_EQ(code, ErrorCode::kXQSV0002) << "batched=" << batched;
  }
}

TEST(BatchedGovernanceTest, TimedOutBatchedSortAbortsPromptly) {
  Engine engine;
  PreparedQuery prepared = engine.Compile(
      "for $i in 1 to 1000000 "
      "order by $i mod 7, $i descending "
      "return $i");
  CancellationToken token;
  token.SetTimeout(0.15);
  ExecutionOptions exec;
  exec.cancellation = &token;
  exec.use_batched_execution = true;

  auto start = std::chrono::steady_clock::now();
  ErrorCode code = CodeOf([&] { prepared.Execute(exec); });
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  EXPECT_EQ(code, ErrorCode::kXQSV0001);
  EXPECT_LT(elapsed, 5.0);
}

TEST(BatchedGovernanceTest, TinyBudgetTripsXQSV0004InsideBatchLoops) {
  // A group-by over many tuples must hit the per-morsel recharge well before
  // completion, fail typed, and unwind its whole reservation — in both
  // ablation settings, so the budget surface does not depend on the engine.
  Engine engine;
  PreparedQuery prepared = engine.Compile(
      "for $i in 1 to 200000 "
      "group by $k := $i mod 1000 "
      "return count($i)");
  for (bool batched : {false, true}) {
    MemoryTracker tracker("batch-budget", 64 << 10);
    ExecutionOptions exec;
    exec.memory = &tracker;
    exec.use_batched_execution = batched;
    ErrorCode code = CodeOf([&] { prepared.Execute(exec); });
    EXPECT_EQ(code, ErrorCode::kXQSV0004) << "batched=" << batched;
    EXPECT_GE(tracker.budget_failures(), 1u) << "batched=" << batched;
    EXPECT_EQ(tracker.used(), 0) << "batched=" << batched;
  }
}

TEST(BatchedGovernanceTest, ParallelBatchLoopsHonorCancellation) {
  Engine engine;
  PreparedQuery prepared = engine.Compile(
      "for $i in 1 to 1000000 "
      "group by $k := $i mod 1000 "
      "return count($i)");
  CancellationToken token;
  token.Cancel();
  ExecutionOptions exec;
  exec.cancellation = &token;
  exec.num_threads = 4;
  exec.use_batched_execution = true;
  ErrorCode code = CodeOf([&] { prepared.Execute(exec); });
  EXPECT_EQ(code, ErrorCode::kXQSV0002);
}

// --- Service-level degradation ---------------------------------------------

namespace svc = xqa::service;

std::unique_ptr<svc::QueryService> MakeService(svc::ServiceOptions options) {
  auto service = std::make_unique<svc::QueryService>(std::move(options));
  workload::OrderConfig config;
  config.num_orders = 2000;
  service->documents().Put("orders",
                           workload::GenerateOrdersDocument(config));
  return service;
}

svc::Request SortRequest() {
  svc::Request request;
  request.query =
      "for $o in /orders/order order by $o/orderkey descending "
      "return $o/orderkey";
  request.document = "orders";
  return request;
}

TEST(ServiceBudgetTest, PerQueryBudgetFailsWithXQSV0004NotRetryable) {
  svc::ServiceOptions options;
  options.per_query_memory_bytes = 32 << 10;  // far under the sort's need
  options.total_memory_bytes = 1ll << 30;
  std::unique_ptr<svc::QueryService> service = MakeService(options);

  svc::Response response = service->Execute(SortRequest());
  EXPECT_EQ(response.status.code(), ErrorCode::kXQSV0004);
  EXPECT_FALSE(response.retryable);
  EXPECT_TRUE(response.result.empty());
  EXPECT_EQ(service->metrics().budget_exceeded.load(), 1u);
  EXPECT_EQ(service->metrics().failed.load(), 1u);
  // The request's tracker unwound its whole reservation back to the root.
  EXPECT_EQ(service->root_memory().used(), 0);

  // A cheap query still fits the same budget — the service is degraded for
  // oversized requests only, not down.
  svc::Request cheap;
  cheap.query = "count(/orders/order)";
  cheap.document = "orders";
  svc::Response ok = service->Execute(cheap);
  EXPECT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.result, "2000");
  EXPECT_EQ(service->root_memory().used(), 0);
}

TEST(ServiceBudgetTest, MemoryPressureGateShedsRetryable) {
  svc::ServiceOptions options;
  // Degenerate budget: the 90% threshold truncates to 0 bytes, so every
  // Submit sees the gate closed — a deterministic stand-in for "root budget
  // nearly exhausted by in-flight requests".
  options.total_memory_bytes = 1;
  std::unique_ptr<svc::QueryService> service = MakeService(options);

  svc::Response response = service->Execute(SortRequest());
  EXPECT_EQ(response.status.code(), ErrorCode::kXQSV0003);
  EXPECT_TRUE(response.retryable);
  EXPECT_NE(response.status.message().find("memory pressure"),
            std::string::npos);
  EXPECT_EQ(service->metrics().shed_memory_pressure.load(), 1u);
  EXPECT_EQ(service->metrics().rejected.load(), 1u);
  EXPECT_EQ(service->metrics().admitted.load(), 0u);
}

TEST(ServiceBudgetTest, DisablingTheGateAdmitsUnderPressure) {
  svc::ServiceOptions options;
  options.total_memory_bytes = 1ll << 30;
  options.memory_pressure_shed_fraction = 0.0;  // gate off
  std::unique_ptr<svc::QueryService> service = MakeService(options);
  svc::Response response = service->Execute(SortRequest());
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(service->metrics().shed_memory_pressure.load(), 0u);
}

TEST(ServiceBudgetTest, DeadlineTimeoutIsRetryable) {
  svc::ServiceOptions options;
  std::unique_ptr<svc::QueryService> service = MakeService(options);
  svc::Request request;
  request.query =
      "for $i in 1 to 1000000 order by $i mod 7 return $i";
  request.deadline_seconds = 0.05;
  svc::Response response = service->Execute(request);
  EXPECT_EQ(response.status.code(), ErrorCode::kXQSV0001);
  EXPECT_TRUE(response.retryable);
  EXPECT_EQ(service->metrics().timed_out.load(), 1u);
  EXPECT_EQ(service->root_memory().used(), 0);
}

TEST(ServiceBudgetTest, MetricsJsonExposesGovernanceCounters) {
  svc::ServiceOptions options;
  options.per_query_memory_bytes = 32 << 10;
  options.total_memory_bytes = 1ll << 30;
  std::unique_ptr<svc::QueryService> service = MakeService(options);
  service->Execute(SortRequest());  // trips the per-query budget

  std::string json = service->MetricsJson();
  EXPECT_NE(json.find("\"budget_exceeded\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shed_memory_pressure\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"memory\""), std::string::npos);
  EXPECT_NE(json.find("\"used_bytes\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"limit_bytes\": " +
                      std::to_string(options.total_memory_bytes)),
            std::string::npos);
  EXPECT_NE(json.find("\"budget_failures\""), std::string::npos);
  EXPECT_NE(json.find("\"compile_failures\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"faults\""), std::string::npos);
}

}  // namespace
}  // namespace xqa

// FLWOR pipeline tests: for/let/where/order-by semantics, positional
// variables, output numbering. Group by has its own file.

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

class EvalFlworTest : public ::testing::Test {
 protected:
  std::string Run(const std::string& query,
                  const std::string& xml = "<root/>") {
    DocumentPtr doc = Engine::ParseDocument(xml);
    return engine_.Compile(query).ExecuteToString(doc);
  }

  ErrorCode RunError(const std::string& query) {
    DocumentPtr doc = Engine::ParseDocument("<root/>");
    try {
      engine_.Compile(query).Execute(doc);
    } catch (const XQueryError& error) {
      return error.code();
    }
    return ErrorCode::kOk;
  }

  Engine engine_;
};

TEST_F(EvalFlworTest, ForIteratesInOrder) {
  EXPECT_EQ(Run("for $x in (3, 1, 2) return $x + 10"), "13 11 12");
}

TEST_F(EvalFlworTest, NestedForsFormCrossProduct) {
  EXPECT_EQ(Run("for $x in (1, 2), $y in (10, 20) return $x * $y"),
            "10 20 20 40");
}

TEST_F(EvalFlworTest, ForOverEmptyYieldsNothing) {
  EXPECT_EQ(Run("count(for $x in () return 99)"), "0");
}

TEST_F(EvalFlworTest, LetBindsWholeSequence) {
  EXPECT_EQ(Run("let $s := (1, 2, 3) return count($s)"), "3");
  EXPECT_EQ(Run("for $x in (1, 2) let $y := ($x, $x) return count($y)"),
            "2 2");
}

TEST_F(EvalFlworTest, WhereFilters) {
  EXPECT_EQ(Run("for $x in 1 to 10 where $x mod 3 = 0 return $x"), "3 6 9");
  EXPECT_EQ(Run("for $x in (1, 2) where () return $x"), "");
}

TEST_F(EvalFlworTest, PositionalVariable) {
  EXPECT_EQ(Run("for $x at $i in (\"a\", \"b\", \"c\") return $i"), "1 2 3");
  EXPECT_EQ(Run("string-join(for $x at $i in (\"a\", \"b\") "
                "return concat(string($i), $x), \",\")"),
            "1a,2b");
  // Positional numbering restarts per binding sequence, not per tuple.
  EXPECT_EQ(Run("for $x in (1, 2) for $y at $i in (\"p\", \"q\") return $i"),
            "1 2 1 2");
}

TEST_F(EvalFlworTest, OrderByAscendingDescending) {
  EXPECT_EQ(Run("for $x in (3, 1, 2) order by $x return $x"), "1 2 3");
  EXPECT_EQ(Run("for $x in (3, 1, 2) order by $x descending return $x"),
            "3 2 1");
  EXPECT_EQ(Run("for $x in (3, 1, 2) order by $x ascending return $x"),
            "1 2 3");
}

TEST_F(EvalFlworTest, OrderByMultipleKeys) {
  EXPECT_EQ(Run("for $x in (12, 21, 11, 22) "
                "order by $x mod 10, $x idiv 10 return $x"),
            "11 21 12 22");
  EXPECT_EQ(Run("for $x in (12, 21, 11, 22) "
                "order by $x mod 10, $x idiv 10 descending return $x"),
            "21 11 22 12");
}

TEST_F(EvalFlworTest, OrderByStringsAndNumbers) {
  EXPECT_EQ(Run("for $s in (\"pear\", \"apple\", \"fig\") order by $s return $s"),
            "apple fig pear");
  EXPECT_EQ(RunError("for $x in (1, \"a\") order by $x return $x"),
            ErrorCode::kXPTY0004);
}

TEST_F(EvalFlworTest, OrderByEmptyLeastGreatest) {
  const char* doc = "<r><e><k>2</k></e><e/><e><k>1</k></e></r>";
  EXPECT_EQ(Run("for $e in //e order by $e/k return count($e/k)", doc),
            "0 1 1");  // empty least by default
  EXPECT_EQ(Run("for $e in //e order by $e/k empty greatest "
                "return count($e/k)", doc),
            "1 1 0");
}

TEST_F(EvalFlworTest, OrderByIsStable) {
  const char* doc =
      "<r><e><k>1</k><v>a</v></e><e><k>1</k><v>b</v></e>"
      "<e><k>0</k><v>c</v></e></r>";
  EXPECT_EQ(Run("string-join(for $e in //e stable order by $e/k "
                "return string($e/v), \"\")", doc),
            "cab");
  // Our sort is always stable, with or without the keyword.
  EXPECT_EQ(Run("string-join(for $e in //e order by $e/k "
                "return string($e/v), \"\")", doc),
            "cab");
}

TEST_F(EvalFlworTest, OrderByNaNSortsBeforeNumbers) {
  EXPECT_EQ(Run("for $x in (1e0, 0e0 div 0e0, -1e0) order by $x return $x"),
            "NaN -1 1");
}

TEST_F(EvalFlworTest, OrderKeyCardinalityError) {
  EXPECT_EQ(RunError("for $x in (1, 2) order by (1, 2) return $x"),
            ErrorCode::kXPTY0004);
}

TEST_F(EvalFlworTest, ReturnAtNumbersOutputOrder) {
  EXPECT_EQ(Run("for $x in (30, 10, 20) order by $x return at $r ($r * 100 + $x)"),
            "110 220 330");
  // Without order by, output order is binding order.
  EXPECT_EQ(Run("for $x in (30, 10, 20) return at $r $r"), "1 2 3");
}

TEST_F(EvalFlworTest, ReturnAtOnLetOnlyFlwor) {
  EXPECT_EQ(Run("let $x := 5 return at $r ($r, $x)"), "1 5");
}

TEST_F(EvalFlworTest, ReturnAtAfterOrderByWithDuplicateKeys) {
  // Ordinals number the post-sort stream; tuples with equal keys keep
  // distinct consecutive ordinals (stable sort preserves binding order
  // among the two 10s).
  EXPECT_EQ(Run("for $x in (10, 30, 10, 20) order by $x "
                "return at $r concat($r, \":\", $x)"),
            "1:10 2:10 3:20 4:30");
}

TEST_F(EvalFlworTest, ReturnAtAfterGroupByNumbersGroups) {
  // After group by, one ordinal per group tuple, not per input item.
  EXPECT_EQ(Run("for $x in (10, 20, 10, 30) group by $x into $k "
                "order by $k return at $r concat($r, \":\", $k)"),
            "1:10 2:20 3:30");
}

TEST_F(EvalFlworTest, WhereSeesAllPriorBindings) {
  EXPECT_EQ(Run("for $x in (1, 2, 3) let $sq := $x * $x "
                "where $sq > 2 and $x < 3 return $sq"),
            "4");
}

TEST_F(EvalFlworTest, NestedFlworsIndependentNumbering) {
  EXPECT_EQ(Run("for $x in (1, 2) return at $i "
                "(for $y in (1, 2) return at $j ($i * 10 + $j))"),
            "11 12 21 22");
}

TEST_F(EvalFlworTest, LetAfterForRebindsPerTuple) {
  EXPECT_EQ(Run("for $x in (1, 2, 3) let $y := $x * 2 return $y"), "2 4 6");
}

TEST_F(EvalFlworTest, OrderByAfterWhere) {
  EXPECT_EQ(Run("for $x in (5, 3, 8, 1) where $x > 2 "
                "order by $x descending return $x"),
            "8 5 3");
}

TEST_F(EvalFlworTest, MixedForLetChains) {
  EXPECT_EQ(Run("for $a in (1, 2) let $b := $a * 10 for $c in (1, 2) "
                "let $d := $b + $c return $d"),
            "11 12 21 22");
}

TEST_F(EvalFlworTest, OrderByIncomparableKeysAlwaysRaiseTypeError) {
  // Key comparability is validated before the sort runs, so XPTY0004 is
  // raised even when a quicksort/insertion-sort pass would never have
  // compared the offending pair directly (previously undefined behavior:
  // throwing from inside std::stable_sort's comparator).
  EXPECT_EQ(RunError("for $x in (2, 3, 1, 4, 6, 5, 8, 7, \"z\", 9) "
                     "order by $x return $x"),
            ErrorCode::kXPTY0004);
  EXPECT_EQ(RunError("for $x in (1, 2) order by (if ($x = 2) then "
                     "xs:date(\"2004-01-01\") else 1) return $x"),
            ErrorCode::kXPTY0004);
  EXPECT_EQ(RunError("for $x in (true(), 1) order by $x return $x"),
            ErrorCode::kXPTY0004);
}

TEST_F(EvalFlworTest, OrderByEmptyKeysNeverConflict) {
  // Empty keys carry no type: they may coexist with any key class.
  const char* doc = "<r><e><k>b</k></e><e/><e><k>a</k></e></r>";
  EXPECT_EQ(Run("for $e in //e order by $e/k return count($e/k)", doc),
            "0 1 1");
}

TEST_F(EvalFlworTest, OrderByUntypedKeysCompareAsStrings) {
  // XQuery ordering rule: untypedAtomic order keys are cast to xs:string,
  // so node-derived digits sort lexicographically, not numerically...
  const char* doc = "<r><e>10</e><e>9</e><e>100</e></r>";
  EXPECT_EQ(Run("for $e in //e order by $e return string($e)", doc),
            "10 100 9");
  // ...and mixing untyped keys with numeric keys is a type error rather
  // than a silent numeric cast.
  EXPECT_EQ(RunError("for $x in (1, 2) order by "
                     "(if ($x = 2) then data(<e>7</e>) else 5) return $x"),
            ErrorCode::kXPTY0004);
}

TEST_F(EvalFlworTest, OrderByAllNaNKeysGroupTogether) {
  // All NaN outcomes route through one comparator path: NaN ties with NaN
  // (stable order preserved) and sorts below every number.
  EXPECT_EQ(Run("for $x in (2e0, 0e0 div 0e0, 1e0, (-1e0) div 0e0 + 1e0 div 0e0) "
                "order by $x return (if ($x ne $x) then \"nan\" else string($x))"),
            "nan nan 1 2");
  EXPECT_EQ(Run("for $x in (0e0 div 0e0, 3e0, 0e0 div 0e0) "
                "order by $x descending return "
                "(if ($x ne $x) then \"nan\" else string($x))"),
            "3 nan nan");
}

}  // namespace
}  // namespace xqa

// Explain rendering tests.

#include "api/explain.h"

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

std::string Explain(const std::string& query) {
  Engine engine;
  return engine.Compile(query).Explain();
}

TEST(Explain, SimpleQuery) {
  std::string plan = Explain("count(//book)");
  EXPECT_NE(plan.find("module (ordering ordered"), std::string::npos);
  EXPECT_NE(plan.find("body"), std::string::npos);
  EXPECT_NE(plan.find("count"), std::string::npos);
}

TEST(Explain, FlworClauses) {
  std::string plan = Explain(
      "for $b in //book where $b/price > 10 "
      "order by $b/price descending return $b/title");
  EXPECT_NE(plan.find("flwor"), std::string::npos);
  EXPECT_NE(plan.find("for $b in"), std::string::npos);
  EXPECT_NE(plan.find("where"), std::string::npos);
  EXPECT_NE(plan.find("order by"), std::string::npos);
  EXPECT_NE(plan.find("descending"), std::string::npos);
  EXPECT_NE(plan.find("return"), std::string::npos);
}

TEST(Explain, GroupByShowsStrategy) {
  std::string hash_plan = Explain(
      "for $b in //book group by $b/publisher into $p "
      "nest $b into $bs return count($bs)");
  EXPECT_NE(hash_plan.find("hash aggregation"), std::string::npos);
  EXPECT_NE(hash_plan.find("key $p"), std::string::npos);
  EXPECT_NE(hash_plan.find("[deep-equal]"), std::string::npos);
  EXPECT_NE(hash_plan.find("nest $bs"), std::string::npos);

  std::string linear_plan = Explain(
      "for $b in //book group by $b/author into $a using xqa:set-equal "
      "return $a");
  EXPECT_NE(linear_plan.find("linear group table"), std::string::npos);
  EXPECT_NE(linear_plan.find("using xqa:set-equal"), std::string::npos);
}

TEST(Explain, NestOrderByMarked) {
  std::string plan = Explain(
      "for $s in //sale group by $s/region into $r "
      "nest $s order by $s/timestamp into $rs return $rs");
  EXPECT_NE(plan.find("[ordered]"), std::string::npos);
}

TEST(Explain, StableAfterGroupAnnotated) {
  std::string plan = Explain(
      "for $b in //book group by $b/year into $y "
      "stable order by $y return $y");
  EXPECT_NE(plan.find("stable ignored after group by"), std::string::npos);
}

TEST(Explain, FunctionsAndGlobals) {
  std::string plan = Explain(
      "declare variable $g := 1; "
      "declare function local:f($x) { $x + $g }; "
      "local:f(2)");
  EXPECT_NE(plan.find("1 globals, 1 functions"), std::string::npos);
  EXPECT_NE(plan.find("global $g"), std::string::npos);
  EXPECT_NE(plan.find("function local:f#1"), std::string::npos);
}

TEST(Explain, PathsRenderAxes) {
  std::string plan = Explain("//order/lineitem[quantity > 5]");
  EXPECT_NE(plan.find("desc-or-self::node()"), std::string::npos);
  EXPECT_NE(plan.find("child::lineitem[1 pred]"), std::string::npos);
}

}  // namespace
}  // namespace xqa

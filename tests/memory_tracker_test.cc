// Memory governance (docs/ROBUSTNESS.md): MemoryTracker hierarchy, chunked
// parent reservation, XQSV0004 semantics, ScopedMemoryCharge RAII, the
// engine-level budget behavior (queries fail cleanly past a budget and are
// byte-identical with accounting on but unhit), and the XQSV0005 depth
// guards in the parser and evaluator.

#include "base/memory_tracker.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "base/error.h"
#include "workload/books.h"
#include "workload/orders.h"
#include "workload/sales.h"

namespace xqa {
namespace {

TEST(MemoryTrackerTest, ChargeReleaseBalance) {
  MemoryTracker tracker("t", 1000);
  tracker.Charge(400);
  EXPECT_EQ(tracker.used(), 400);
  tracker.Charge(600);
  EXPECT_EQ(tracker.used(), 1000);
  EXPECT_EQ(tracker.peak(), 1000);
  tracker.Release(1000);
  EXPECT_EQ(tracker.used(), 0);
  EXPECT_EQ(tracker.peak(), 1000);  // peak is monotonic
  EXPECT_EQ(tracker.budget_failures(), 0);
}

TEST(MemoryTrackerTest, OverBudgetThrowsAndRollsBack) {
  MemoryTracker tracker("q", 1000);
  tracker.Charge(900);
  try {
    tracker.Charge(200);
    FAIL() << "expected XQSV0004";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0004);
    EXPECT_NE(std::string(error.what()).find("memory budget exceeded"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("'q'"), std::string::npos);
  }
  // The failed charge is fully rolled back: the tracker is still usable up
  // to its remaining headroom.
  EXPECT_EQ(tracker.used(), 900);
  EXPECT_EQ(tracker.budget_failures(), 1);
  tracker.Charge(100);
  EXPECT_EQ(tracker.used(), 1000);
}

TEST(MemoryTrackerTest, ZeroLimitMeansUnlimited) {
  MemoryTracker tracker("unlimited");
  tracker.Charge(int64_t{1} << 40);  // a terabyte of accounting, no throw
  EXPECT_EQ(tracker.used(), int64_t{1} << 40);
  EXPECT_EQ(tracker.limit(), 0);
}

TEST(MemoryTrackerTest, NegativeAndZeroChargesAreNoOps) {
  MemoryTracker tracker("t", 100);
  tracker.Charge(0);
  tracker.Charge(-50);
  EXPECT_EQ(tracker.used(), 0);
  tracker.Release(0);
  tracker.Release(-50);
  EXPECT_EQ(tracker.used(), 0);
}

TEST(MemoryTrackerTest, OverReleaseClampsAtZero) {
  MemoryTracker tracker("t");
  tracker.Charge(100);
  tracker.Release(500);
  EXPECT_EQ(tracker.used(), 0);
}

TEST(MemoryTrackerTest, ChildReservesFromParentInChunks) {
  MemoryTracker root("root");
  {
    MemoryTracker child("child", 0, &root);
    child.Charge(1);
    // One byte of child use grabs a whole reservation chunk from the parent.
    EXPECT_EQ(root.used(), MemoryTracker::kReservationChunk);
    // Growth within the chunk touches the parent no further.
    child.Charge(MemoryTracker::kReservationChunk - 1);
    EXPECT_EQ(root.used(), MemoryTracker::kReservationChunk);
    // The next byte crosses into a second chunk.
    child.Charge(1);
    EXPECT_EQ(root.used(), 2 * MemoryTracker::kReservationChunk);
  }
  // Destroying the child returns the whole reservation.
  EXPECT_EQ(root.used(), 0);
}

TEST(MemoryTrackerTest, RootBalanceReturnsToZeroAfterChildThrow) {
  MemoryTracker root("root");
  {
    MemoryTracker child("child", 100, &root);
    EXPECT_THROW(child.Charge(200), XQueryError);
    // The child still holds no reservation (the charge failed on its own
    // limit before touching the parent).
  }
  EXPECT_EQ(root.used(), 0);

  {
    MemoryTracker child("child", 0, &root);
    child.Charge(3 * MemoryTracker::kReservationChunk);
    EXPECT_GT(root.used(), 0);
    // Simulated unwind: the child dies with charges outstanding.
  }
  EXPECT_EQ(root.used(), 0);
}

TEST(MemoryTrackerTest, ParentLimitVetoesChildCharge) {
  MemoryTracker root("root", MemoryTracker::kReservationChunk);
  MemoryTracker child("child", 0, &root);
  child.Charge(10);  // fits: one chunk == the root limit
  try {
    child.Charge(2 * MemoryTracker::kReservationChunk);
    FAIL() << "expected XQSV0004 from the root";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0004);
    EXPECT_NE(std::string(error.what()).find("'root'"), std::string::npos);
  }
  // Rejected charge rolled back on the child; the root keeps only the first
  // chunk.
  EXPECT_EQ(child.used(), 10);
  EXPECT_EQ(root.used(), MemoryTracker::kReservationChunk);
  EXPECT_EQ(root.budget_failures(), 1);
}

TEST(MemoryTrackerTest, WouldExceedProbesWholeChain) {
  MemoryTracker root("root", 1000);
  MemoryTracker child("child", 0, &root);
  EXPECT_FALSE(child.WouldExceed(500));
  root.Charge(900);
  EXPECT_TRUE(child.WouldExceed(500));
  EXPECT_FALSE(child.WouldExceed(50));
}

TEST(MemoryTrackerTest, ConcurrentChargeReleaseBalances) {
  // Hammer one tracker from several threads (the parallel-FLWOR sharing
  // pattern); under TSan this doubles as the data-race check.
  MemoryTracker root("root");
  MemoryTracker shared("query", 0, &root);
  constexpr int kThreads = 4;
  constexpr int kIterations = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&shared] {
      for (int i = 0; i < kIterations; ++i) {
        shared.Charge(64);
        shared.Charge(512);
        shared.Release(64);
        shared.Release(512);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(shared.used(), 0);
  EXPECT_GT(shared.peak(), 0);
}

TEST(ScopedMemoryChargeTest, ResetChargesDeltaAndReleasesOnDestruction) {
  MemoryTracker tracker("t");
  {
    ScopedMemoryCharge charge(&tracker);
    charge.Reset(100);
    EXPECT_EQ(tracker.used(), 100);
    charge.Reset(250);  // generation replaced by a bigger one
    EXPECT_EQ(tracker.used(), 250);
    charge.Reset(40);  // ... then a smaller one
    EXPECT_EQ(tracker.used(), 40);
    charge.Add(10);
    EXPECT_EQ(charge.held(), 50);
    EXPECT_EQ(tracker.used(), 50);
  }
  EXPECT_EQ(tracker.used(), 0);
}

TEST(ScopedMemoryChargeTest, NullTrackerIsANoOp) {
  ScopedMemoryCharge charge(nullptr);
  charge.Reset(1000);
  charge.Add(1000);
  EXPECT_EQ(charge.held(), 0);
}

TEST(ScopedMemoryChargeTest, ReleasesOnExceptionUnwind) {
  MemoryTracker tracker("t", 1000);
  try {
    ScopedMemoryCharge charge(&tracker);
    charge.Reset(800);
    charge.Reset(2000);  // throws XQSV0004
    FAIL() << "expected XQSV0004";
  } catch (const XQueryError&) {
  }
  // The scoped charge released its held 800 during unwind; the failed delta
  // was rolled back by Charge itself.
  EXPECT_EQ(tracker.used(), 0);
}

// --- Engine-level budget behavior ------------------------------------------

Sequence RunWithBudget(const std::string& query, const DocumentPtr& doc,
                       MemoryTracker* tracker) {
  Engine engine;
  PreparedQuery prepared = engine.Compile(query);
  ExecutionOptions exec;
  exec.memory = tracker;
  return prepared.Execute(doc, exec);
}

TEST(MemoryBudgetTest, TightBudgetFailsQueryWithXQSV0004) {
  workload::OrderConfig config;
  config.num_orders = 500;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  MemoryTracker tracker("query", 16 * 1024);  // 16 KiB: far below the data
  try {
    RunWithBudget("for $o in /orders/order order by $o/orderkey "
                  "return <o>{$o/orderkey/text()}</o>",
                  doc, &tracker);
    FAIL() << "expected XQSV0004";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0004);
  }
  EXPECT_GE(tracker.budget_failures(), 1);
}

TEST(MemoryBudgetTest, GroupByTripsBudgetMidFormation) {
  workload::OrderConfig config;
  config.num_orders = 1000;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  MemoryTracker tracker("query", 16 * 1024);
  EXPECT_THROW(
      RunWithBudget("for $o in /orders/order "
                    "group by $o/orderkey into $key nest $o into $os "
                    "return count($os)",
                    doc, &tracker),
      XQueryError);
}

TEST(MemoryBudgetTest, UnhitBudgetIsByteIdenticalToUntracked) {
  // The ablation acceptance check: accounting on-but-unhit must not change a
  // single output byte versus accounting off, across all three workloads.
  struct Case {
    DocumentPtr doc;
    std::string query;
  };
  workload::OrderConfig orders;
  orders.num_orders = 300;
  workload::BooksConfig books;
  books.num_books = 120;
  workload::SalesConfig sales;
  sales.num_sales = 200;
  std::vector<Case> cases;
  cases.push_back(
      {workload::GenerateOrdersDocument(orders),
       "for $o in /orders/order "
       "group by $o/customer/custkey into $c nest $o into $os "
       "return <c key=\"{$c}\"><n>{count($os)}</n></c>"});
  cases.push_back({workload::GenerateBooksDocument(books),
                   "for $b in /bib/book order by $b/title return $b/title"});
  cases.push_back({workload::GenerateSalesDocument(sales),
                   "for $s in /sales/sale "
                   "group by $s/region into $r nest $s into $ss "
                   "return <r name=\"{$r}\">{count($ss)}</r>"});
  Engine engine;
  for (const Case& c : cases) {
    PreparedQuery prepared = engine.Compile(c.query);
    ExecutionOptions plain;
    std::string untracked =
        SerializeSequence(prepared.Execute(c.doc, plain), 0);

    MemoryTracker root("root");
    MemoryTracker tracker("query", int64_t{1} << 30, &root);  // 1 GiB: unhit
    ExecutionOptions budgeted;
    budgeted.memory = &tracker;
    std::string tracked =
        SerializeSequence(prepared.Execute(c.doc, budgeted), 0);

    EXPECT_EQ(untracked, tracked) << c.query;
    EXPECT_GT(tracker.used(), 0) << "accounting never engaged: " << c.query;
  }
}

// --- Depth guards (XQSV0005) -----------------------------------------------

TEST(DepthGuardTest, ParserRejectsDeeplyNestedExpression) {
  std::string query(4000, '(');
  query += "1";
  query += std::string(4000, ')');
  Engine engine;
  try {
    engine.Compile(query);
    FAIL() << "expected XQSV0005";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0005);
    EXPECT_NE(std::string(error.what()).find("parser depth limit"),
              std::string::npos);
  }
}

TEST(DepthGuardTest, ParserRejectsDeeplyNestedConstructors) {
  std::string query, close;
  for (int i = 0; i < 2000; ++i) {
    query += "<a>";
    close = "</a>" + close;
  }
  query += close;
  Engine engine;
  try {
    engine.Compile(query);
    FAIL() << "expected XQSV0005";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0005);
  }
}

TEST(DepthGuardTest, ReasonableNestingStillCompilesAndRuns) {
  std::string query(64, '(');
  query += "1 + 1";
  query += std::string(64, ')');
  Engine engine;
  Sequence result = engine.Compile(query).Execute();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(SerializeSequence(result), "2");
}

}  // namespace
}  // namespace xqa

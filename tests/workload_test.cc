// Workload generator tests: determinism, paper-matching shape parameters.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "workload/books.h"
#include "workload/orders.h"
#include "workload/random.h"
#include "workload/sales.h"

namespace xqa {
namespace {

TEST(WorkloadRandom, Deterministic) {
  workload::Random a(42), b(42), c(43);
  EXPECT_EQ(a.NextUint64(), b.NextUint64());
  EXPECT_NE(a.NextUint64(), c.NextUint64());
}

TEST(WorkloadRandom, RangesRespected) {
  workload::Random random(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = random.NextInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    double d = random.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(OrdersWorkload, DeterministicBySeed) {
  workload::OrderConfig config;
  config.num_orders = 10;
  EXPECT_EQ(workload::GenerateOrdersXml(config),
            workload::GenerateOrdersXml(config));
  workload::OrderConfig other = config;
  other.seed = 99;
  EXPECT_NE(workload::GenerateOrdersXml(config),
            workload::GenerateOrdersXml(other));
}

TEST(OrdersWorkload, MatchesPaperShape) {
  // Section 6: each order ~3 KB of text, an average of four lineitems, and
  // many child elements per lineitem.
  workload::OrderConfig config;
  config.num_orders = 200;
  std::string xml = workload::GenerateOrdersXml(config);
  double bytes_per_order = static_cast<double>(xml.size()) / config.num_orders;
  EXPECT_GT(bytes_per_order, 2000) << "orders should be ~3KB";
  EXPECT_LT(bytes_per_order, 4500) << "orders should be ~3KB";

  DocumentPtr doc = Engine::ParseDocument(xml);
  Engine engine;
  double lineitems = std::stod(
      engine.Compile("count(//order/lineitem)").ExecuteToString(doc));
  double average = lineitems / config.num_orders;
  EXPECT_GT(average, 3.0);
  EXPECT_LT(average, 5.0);
  // Lineitems have many children (the paper: "many child elements").
  EXPECT_EQ(engine.Compile("count((//lineitem)[1]/*)").ExecuteToString(doc),
            "15");
}

TEST(OrdersWorkload, GroupingChildCardinalities) {
  workload::OrderConfig config;
  config.num_orders = 400;
  config.shipinstruct_cardinality = 13;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  Engine engine;
  EXPECT_EQ(engine
                .Compile("count(distinct-values(//lineitem/shipinstruct))")
                .ExecuteToString(doc),
            "13");
  EXPECT_EQ(engine.Compile("count(distinct-values(//lineitem/shipmode))")
                .ExecuteToString(doc),
            "7");
  // Each grouping child occurs exactly once per lineitem (the experiment's
  // stated precondition).
  EXPECT_EQ(engine
                .Compile("count(//lineitem[count(shipinstruct) != 1])")
                .ExecuteToString(doc),
            "0");
}

TEST(OrdersWorkload, CountLineitemsConsistent) {
  workload::OrderConfig config;
  config.num_orders = 50;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  Engine engine;
  EXPECT_EQ(std::to_string(workload::CountLineitems(config)),
            engine.Compile("count(//lineitem)").ExecuteToString(doc));
}

TEST(BooksWorkload, ShapeAndOptionality) {
  workload::BooksConfig config;
  config.num_books = 300;
  config.no_publisher_prob = 0.25;
  config.with_categories = true;
  DocumentPtr doc = workload::GenerateBooksDocument(config);
  Engine engine;
  EXPECT_EQ(engine.Compile("count(//book)").ExecuteToString(doc), "300");
  // Some books lack publishers, none lack years.
  std::string missing = engine
      .Compile("count(//book[not(publisher)])").ExecuteToString(doc);
  EXPECT_GT(std::stoi(missing), 0);
  EXPECT_EQ(engine.Compile("count(//book[not(year)])").ExecuteToString(doc),
            "0");
  EXPECT_GT(std::stoi(engine.Compile("count(//book/categories)")
                          .ExecuteToString(doc)),
            0);
}

TEST(BooksWorkload, PaperDocumentsParse) {
  Engine engine;
  DocumentPtr bib = Engine::ParseDocument(workload::PaperBibliographyXml());
  EXPECT_EQ(engine.Compile("count(//book)").ExecuteToString(bib), "7");
  DocumentPtr sales = Engine::ParseDocument(workload::PaperSalesXml());
  EXPECT_EQ(engine.Compile("count(//sale)").ExecuteToString(sales), "6");
  DocumentPtr cats =
      Engine::ParseDocument(workload::PaperCategorizedBooksXml());
  EXPECT_EQ(engine.Compile("count(//book/categories)").ExecuteToString(cats),
            "2");
}

TEST(SalesWorkload, RegionsContainTheirStates) {
  workload::SalesConfig config;
  config.num_sales = 500;
  DocumentPtr doc = workload::GenerateSalesDocument(config);
  Engine engine;
  EXPECT_EQ(engine.Compile("count(//sale)").ExecuteToString(doc), "500");
  // Every sale has a coherent region/state pairing: grouping by region and
  // checking each state maps to exactly one region.
  EXPECT_EQ(engine
                .Compile("count(for $s in //sale "
                         "group by $s/state into $state "
                         "nest $s/region into $regions "
                         "where count(distinct-values($regions)) != 1 "
                         "return $state)")
                .ExecuteToString(doc),
            "0");
  // Timestamps parse as xs:dateTime.
  EXPECT_EQ(engine
                .Compile("count(//sale[not(year-from-dateTime(timestamp) >= "
                         "2002 and year-from-dateTime(timestamp) <= 2004)])")
                .ExecuteToString(doc),
            "0");
}

}  // namespace
}  // namespace xqa

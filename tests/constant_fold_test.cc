// Constant-folding pass: folds literal kernels, preserves error behavior,
// and leaves non-constant expressions alone.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "optimizer/rewriter.h"
#include "parser/parser.h"

namespace xqa {
namespace {

/// Options with only constant folding enabled, so these tests observe the
/// fold pass in isolation from the default-on cost-gated rules.
OptimizerOptions FoldOnly() {
  OptimizerOptions options;
  options.detect_groupby_patterns = false;
  options.push_predicates = false;
  options.eliminate_order_by = false;
  options.fold_constants = true;
  return options;
}

/// Folds a query body and returns (fold count, dumped AST).
std::pair<int, std::string> Fold(const std::string& query) {
  ModulePtr module = ParseQuery(query);
  int count = OptimizeModule(module.get(), FoldOnly()).constants_folded;
  return {count, DumpExpr(module->body.get())};
}

TEST(ConstantFold, Arithmetic) {
  EXPECT_EQ(Fold("1 + 2 * 3").second, "7");
  EXPECT_EQ(Fold("1.5 + 0.5").second, "2");
  EXPECT_EQ(Fold("2 * 3 + $x").second, "(+ 6 $x)");
  EXPECT_EQ(Fold("-(2 + 3)").second, "-5");
  EXPECT_EQ(Fold("1e1 * 2").second, "20");
}

TEST(ConstantFold, DivisionIsNotFolded) {
  // Division can raise FOAR0001; the fold must not hide it.
  EXPECT_EQ(Fold("4 div 2").first, 0);
  EXPECT_EQ(Fold("1 div 0").first, 0);
  EXPECT_EQ(Fold("7 mod 2").first, 0);
}

TEST(ConstantFold, OverflowIsNotFolded) {
  EXPECT_EQ(Fold("9223372036854775807 + 1").first, 0);
}

TEST(ConstantFold, Comparisons) {
  EXPECT_EQ(Fold("1 < 2").second, "true");
  EXPECT_EQ(Fold("\"a\" eq \"b\"").second, "false");
  EXPECT_EQ(Fold("2 >= 2").second, "true");
  // Incomparable literal types keep the runtime XPTY0004.
  EXPECT_EQ(Fold("1 eq \"1\"").first, 0);
}

TEST(ConstantFold, Logic) {
  EXPECT_EQ(Fold("1 < 2 and 3 < 4").second, "true");
  EXPECT_EQ(Fold("1 > 2 or 3 > 4").second, "false");
  // Short-circuit with a decided side folds even when the other is dynamic.
  EXPECT_EQ(Fold("1 > 2 and $x").second, "false");
  EXPECT_EQ(Fold("1 < 2 or count(//a) = 0").second, "true");
  // Undecided stays.
  EXPECT_EQ(Fold("$x and $y").first, 0);
}

TEST(ConstantFold, ConditionalPruning) {
  EXPECT_EQ(Fold("if (1 < 2) then \"yes\" else \"no\"").second, "\"yes\"");
  EXPECT_EQ(Fold("if (0) then $a else $b").second, "$b");
  EXPECT_EQ(Fold("if ($cond) then 1 else 2").first, 0);
  // Cascaded folding: condition folds, then the if folds.
  EXPECT_EQ(Fold("if (2 + 2 = 4) then \"t\" else \"f\"").second, "\"t\"");
}

TEST(ConstantFold, InsideLargerExpressions) {
  auto [count, dump] = Fold("for $x in //v where $x > 2 + 3 return $x * (1 + 1)");
  EXPECT_EQ(count, 2);
  EXPECT_NE(dump.find("(general-gt $x 5)"), std::string::npos);
  EXPECT_NE(dump.find("(* $x 2)"), std::string::npos);
}

TEST(ConstantFold, ResultsUnchangedThroughEngine) {
  Engine::Options off;
  off.optimizer.detect_groupby_patterns = false;
  off.optimizer.push_predicates = false;
  off.optimizer.eliminate_order_by = false;
  Engine plain(off);
  Engine::Options options;
  options.optimizer = FoldOnly();
  Engine folding(options);
  DocumentPtr doc = Engine::ParseDocument("<r><v>1</v><v>7</v></r>");
  const char* queries[] = {
      "for $x in //v where number($x) > 2 + 3 return number($x) * (10 - 9)",
      "if (2 > 1) then sum(for $v in //v return number($v)) else 0",
      "1 + 2 * 3 - 4",
      "for $x in (1, 2, 3) return if ($x > 1 + 1) then \"big\" else \"small\"",
      "count(//v[. = \"7\"]) + (2 - 2)",
  };
  for (const char* query : queries) {
    PreparedQuery folded = folding.Compile(query);
    EXPECT_EQ(plain.Compile(query).ExecuteToString(doc),
              folded.ExecuteToString(doc))
        << query;
  }
}

TEST(ConstantFold, FoldCountSurfacedViaEngine) {
  Engine::Options options;
  options.optimizer = FoldOnly();
  Engine folding(options);
  EXPECT_GE(folding.Compile("1 + 2 + 3").rewrite_counts().constants_folded, 2);
  EXPECT_EQ(folding.Compile("count(//a)").rewrites_applied(), 0);
}

}  // namespace
}  // namespace xqa

// Expression-evaluation tests: arithmetic, comparisons, logic, conditionals,
// quantifiers, ranges, filters.

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

class EvalExprTest : public ::testing::Test {
 protected:
  std::string Run(const std::string& query) {
    DocumentPtr doc = Engine::ParseDocument("<root/>");
    return engine_.Compile(query).ExecuteToString(doc);
  }

  ErrorCode RunError(const std::string& query) {
    DocumentPtr doc = Engine::ParseDocument("<root/>");
    try {
      engine_.Compile(query).Execute(doc);
    } catch (const XQueryError& error) {
      return error.code();
    }
    return ErrorCode::kOk;
  }

  Engine engine_;
};

TEST_F(EvalExprTest, IntegerArithmetic) {
  EXPECT_EQ(Run("1 + 2 * 3"), "7");
  EXPECT_EQ(Run("10 - 4 - 3"), "3");
  EXPECT_EQ(Run("7 idiv 2"), "3");
  EXPECT_EQ(Run("-7 idiv 2"), "-3");
  EXPECT_EQ(Run("7 mod 2"), "1");
  EXPECT_EQ(Run("-7 mod 2"), "-1");
}

TEST_F(EvalExprTest, IntegerDivisionYieldsDecimal) {
  // XQuery rule: div on two integers produces xs:decimal.
  EXPECT_EQ(Run("7 div 2"), "3.5");
  EXPECT_EQ(Run("1 div 3"), "0.333333333333333333");
}

TEST_F(EvalExprTest, DecimalArithmetic) {
  EXPECT_EQ(Run("0.1 + 0.2"), "0.3");
  EXPECT_EQ(Run("65.00 - 6.00"), "59");
  EXPECT_EQ(Run("1.5 * 4"), "6");
  EXPECT_EQ(Run("7.5 mod 2"), "1.5");
}

TEST_F(EvalExprTest, DoubleArithmetic) {
  EXPECT_EQ(Run("1e1 + 5"), "15");
  EXPECT_EQ(Run("1e0 div 0e0"), "INF");
  EXPECT_EQ(Run("-1e0 div 0e0"), "-INF");
  EXPECT_EQ(Run("0e0 div 0e0"), "NaN");
}

TEST_F(EvalExprTest, ArithmeticErrors) {
  EXPECT_EQ(RunError("1 div 0"), ErrorCode::kFOAR0001);
  EXPECT_EQ(RunError("1 idiv 0"), ErrorCode::kFOAR0001);
  EXPECT_EQ(RunError("1 mod 0"), ErrorCode::kFOAR0001);
  EXPECT_EQ(RunError("9223372036854775807 + 1"), ErrorCode::kFOAR0002);
  EXPECT_EQ(RunError("\"a\" + 1"), ErrorCode::kXPTY0004);
  EXPECT_EQ(RunError("(1, 2) + 1"), ErrorCode::kXPTY0004);
}

TEST_F(EvalExprTest, EmptySequencePropagatesThroughArithmetic) {
  EXPECT_EQ(Run("count(() + 1)"), "0");
  EXPECT_EQ(Run("count(1 + ())"), "0");
  EXPECT_EQ(Run("count(-())"), "0");
}

TEST_F(EvalExprTest, UnaryMinus) {
  EXPECT_EQ(Run("-5"), "-5");
  EXPECT_EQ(Run("--5"), "5");
  EXPECT_EQ(Run("-(1.5)"), "-1.5");
  EXPECT_EQ(Run("4 - -2"), "6");
}

TEST_F(EvalExprTest, Comparisons) {
  EXPECT_EQ(Run("1 < 2"), "true");
  EXPECT_EQ(Run("2 <= 2"), "true");
  EXPECT_EQ(Run("1 eq 1"), "true");
  EXPECT_EQ(Run("1 ne 2"), "true");
  EXPECT_EQ(Run("\"abc\" lt \"abd\""), "true");
  EXPECT_EQ(Run("(1, 2, 3) = 2"), "true");
  EXPECT_EQ(Run("(1, 2, 3) = 9"), "false");
  EXPECT_EQ(Run("() = 1"), "false");
  // Value comparison with empty operand yields the empty sequence.
  EXPECT_EQ(Run("count(() eq 1)"), "0");
}

TEST_F(EvalExprTest, Logic) {
  EXPECT_EQ(Run("true() and false()"), "false");
  EXPECT_EQ(Run("true() or false()"), "true");
  EXPECT_EQ(Run("not(true())"), "false");
  // EBV of sequences.
  EXPECT_EQ(Run("() or false()"), "false");
  EXPECT_EQ(Run("\"x\" and 1"), "true");
  // Short-circuit: the rhs error is never reached.
  EXPECT_EQ(Run("false() and (1 div 0 = 1)"), "false");
  EXPECT_EQ(Run("true() or (1 div 0 = 1)"), "true");
}

TEST_F(EvalExprTest, Conditionals) {
  EXPECT_EQ(Run("if (1 < 2) then \"yes\" else \"no\""), "yes");
  EXPECT_EQ(Run("if (()) then 1 else 2"), "2");
  EXPECT_EQ(Run("if (0) then 1 else 2"), "2");
}

TEST_F(EvalExprTest, Quantified) {
  EXPECT_EQ(Run("some $x in (1, 2, 3) satisfies $x > 2"), "true");
  EXPECT_EQ(Run("every $x in (1, 2, 3) satisfies $x > 0"), "true");
  EXPECT_EQ(Run("every $x in (1, 2, 3) satisfies $x > 1"), "false");
  EXPECT_EQ(Run("some $x in () satisfies true()"), "false");
  EXPECT_EQ(Run("every $x in () satisfies false()"), "true");
  EXPECT_EQ(
      Run("some $x in (1, 2), $y in (3, 4) satisfies $x + $y = 6"), "true");
}

TEST_F(EvalExprTest, Ranges) {
  EXPECT_EQ(Run("count(1 to 5)"), "5");
  EXPECT_EQ(Run("string-join(for $i in 1 to 3 return string($i), \",\")"),
            "1,2,3");
  EXPECT_EQ(Run("count(5 to 1)"), "0");
  EXPECT_EQ(Run("count(2 to 2)"), "1");
  EXPECT_EQ(Run("count(() to 3)"), "0");
}

TEST_F(EvalExprTest, FilterPredicates) {
  EXPECT_EQ(Run("(10, 20, 30)[2]"), "20");
  EXPECT_EQ(Run("string-join(for $x in (10, 20, 30)[. > 15] "
                "return string($x), \",\")"),
            "20,30");
  EXPECT_EQ(Run("count((1, 2, 3)[9])"), "0");
  EXPECT_EQ(Run("(1 to 10)[last()]"), "10");
  EXPECT_EQ(Run("string-join(for $x in (1 to 10)[position() > 8] "
                "return string($x), \",\")"),
            "9,10");
}

TEST_F(EvalExprTest, SequenceConstruction) {
  EXPECT_EQ(Run("count((1, (2, 3), ()))"), "3");  // sequences flatten
  EXPECT_EQ(Run("count(())"), "0");
}

TEST_F(EvalExprTest, GlobalVariables) {
  DocumentPtr doc = Engine::ParseDocument("<root/>");
  std::string out = engine_
      .Compile("declare variable $base := 10; "
               "declare variable $double := $base * 2; "
               "$base + $double")
      .ExecuteToString(doc);
  EXPECT_EQ(out, "30");
}

TEST_F(EvalExprTest, UserFunctions) {
  EXPECT_EQ(Run("declare function local:sq($x as xs:integer) { $x * $x }; "
                "local:sq(7)"),
            "49");
  EXPECT_EQ(Run("declare function local:fact($n as xs:integer) { "
                "if ($n <= 1) then 1 else $n * local:fact($n - 1) }; "
                "local:fact(10)"),
            "3628800");
}

TEST_F(EvalExprTest, RecursionLimit) {
  EXPECT_EQ(RunError("declare function local:loop($n) { local:loop($n) }; "
                     "local:loop(1)"),
            ErrorCode::kFORG0006);
}

TEST_F(EvalExprTest, UnionOperator) {
  DocumentPtr doc = Engine::ParseDocument("<r><a/><b/><c/></r>");
  std::string out = engine_
      .Compile("let $r := /r return count(($r/a | $r/b) | ($r/b | $r/c))")
      .ExecuteToString(doc);
  EXPECT_EQ(out, "3");  // duplicates removed by identity
}

}  // namespace
}  // namespace xqa

#include "parser/lexer.h"

#include <gtest/gtest.h>

#include <vector>

#include "base/error.h"

namespace xqa {
namespace {

std::vector<Token> LexAll(std::string_view text) {
  Lexer lexer(text);
  std::vector<Token> tokens;
  while (true) {
    Token token = lexer.Next();
    if (token.kind == TokenKind::kEof) break;
    tokens.push_back(std::move(token));
  }
  return tokens;
}

TEST(Lexer, NumericLiterals) {
  auto tokens = LexAll("42 3.14 1e5 2.5E-3 .5");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIntegerLiteral);
  EXPECT_EQ(tokens[0].text, "42");
  EXPECT_EQ(tokens[1].kind, TokenKind::kDecimalLiteral);
  EXPECT_EQ(tokens[1].text, "3.14");
  EXPECT_EQ(tokens[2].kind, TokenKind::kDoubleLiteral);
  EXPECT_EQ(tokens[3].kind, TokenKind::kDoubleLiteral);
  EXPECT_EQ(tokens[3].text, "2.5E-3");
  EXPECT_EQ(tokens[4].kind, TokenKind::kDecimalLiteral);
  EXPECT_EQ(tokens[4].text, ".5");
}

TEST(Lexer, StringLiterals) {
  auto tokens = LexAll(R"("hello" 'world' "say ""hi""" "a&amp;b")");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "world");
  EXPECT_EQ(tokens[2].text, "say \"hi\"");
  EXPECT_EQ(tokens[3].text, "a&b");
}

TEST(Lexer, NamesAndQNames) {
  auto tokens = LexAll("book year-from-dateTime local:set-equal xs:integer");
  ASSERT_EQ(tokens.size(), 4u);
  for (const Token& token : tokens) {
    EXPECT_EQ(token.kind, TokenKind::kName);
  }
  EXPECT_EQ(tokens[1].text, "year-from-dateTime");
  EXPECT_EQ(tokens[2].text, "local:set-equal");
}

TEST(Lexer, Variables) {
  auto tokens = LexAll("$b $region-sales $local:x");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kVariable);
  EXPECT_EQ(tokens[0].text, "b");
  EXPECT_EQ(tokens[1].text, "region-sales");
  EXPECT_EQ(tokens[2].text, "local:x");
}

TEST(Lexer, PunctuationAndOperators) {
  auto tokens = LexAll("( ) [ ] { } , ; := = != < <= > >= + - * / // @ | :: ? . ..");
  std::vector<TokenKind> expected = {
      TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBracket,
      TokenKind::kRBracket, TokenKind::kLBrace, TokenKind::kRBrace,
      TokenKind::kComma, TokenKind::kSemicolon, TokenKind::kAssign,
      TokenKind::kEq, TokenKind::kNeq, TokenKind::kLt, TokenKind::kLe,
      TokenKind::kGt, TokenKind::kGe, TokenKind::kPlus, TokenKind::kMinus,
      TokenKind::kStar, TokenKind::kSlash, TokenKind::kSlashSlash,
      TokenKind::kAt, TokenKind::kVBar, TokenKind::kColonColon,
      TokenKind::kQuestion, TokenKind::kDot, TokenKind::kDotDot};
  ASSERT_EQ(tokens.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
}

TEST(Lexer, AxisVsAssignVsQName) {
  // "child::book" must lex as name, ::, name — not a QName "child:..".
  auto tokens = LexAll("child::book");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "child");
  EXPECT_EQ(tokens[1].kind, TokenKind::kColonColon);
  EXPECT_EQ(tokens[2].text, "book");
}

TEST(Lexer, NestedComments) {
  auto tokens = LexAll("1 (: outer (: inner :) still-comment :) 2");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "1");
  EXPECT_EQ(tokens[1].text, "2");
  EXPECT_THROW(LexAll("(: unterminated"), XQueryError);
}

TEST(Lexer, LocationTracking) {
  Lexer lexer("a\n  bc");
  Token a = lexer.Next();
  EXPECT_EQ(a.location.line, 1u);
  EXPECT_EQ(a.location.column, 1u);
  Token bc = lexer.Next();
  EXPECT_EQ(bc.location.line, 2u);
  EXPECT_EQ(bc.location.column, 3u);
}

TEST(Lexer, PeekDoesNotConsume) {
  Lexer lexer("a b");
  EXPECT_EQ(lexer.Peek().text, "a");
  EXPECT_EQ(lexer.Peek().text, "a");
  EXPECT_EQ(lexer.Peek2().text, "b");
  EXPECT_EQ(lexer.Next().text, "a");
  EXPECT_EQ(lexer.Peek().text, "b");
}

TEST(Lexer, RawModeAfterToken) {
  // Simulates the constructor flow: consume '<', then raw-read the tag.
  Lexer lexer("<book attr=\"v\">");
  Token lt = lexer.Next();
  ASSERT_EQ(lt.kind, TokenKind::kLt);
  EXPECT_EQ(lexer.RawName(), "book");
  lexer.RawSkipWhitespace();
  EXPECT_EQ(lexer.RawName(), "attr");
  EXPECT_EQ(lexer.RawNext(), '=');
  EXPECT_EQ(lexer.RawNext(), '"');
  EXPECT_EQ(lexer.RawNext(), 'v');
}

TEST(Lexer, RawModeDiscardsPeek) {
  Lexer lexer("<abc");
  lexer.Next();              // consume '<'
  (void)lexer.Peek();        // peeks "abc" as a name token
  EXPECT_EQ(lexer.RawPeek(), 'a');  // raw cursor is still right after '<'
  EXPECT_EQ(lexer.RawName(), "abc");
  EXPECT_TRUE(lexer.RawAtEnd());
}

TEST(Lexer, ErrorsCarryLocation) {
  Lexer lexer("  #");
  try {
    lexer.Next();
    FAIL() << "expected error";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXPST0003);
    EXPECT_EQ(error.location().column, 3u);
  }
}

TEST(Lexer, CharacterReferencesInStrings) {
  auto tokens = LexAll(R"("A&#66;C" "&#x44;")");
  EXPECT_EQ(tokens[0].text, "ABC");
  EXPECT_EQ(tokens[1].text, "D");
}

}  // namespace
}  // namespace xqa

// Type-operator tests: instance of / treat as / castable as / cast as, plus
// the function conversion rules applied to declared parameter types.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "eval/type_match.h"

namespace xqa {
namespace {

class TypeOpsTest : public ::testing::Test {
 protected:
  std::string Run(const std::string& query,
                  const std::string& xml = "<root><a>1</a></root>") {
    DocumentPtr doc = Engine::ParseDocument(xml);
    return engine_.Compile(query).ExecuteToString(doc);
  }

  ErrorCode RunError(const std::string& query) {
    DocumentPtr doc = Engine::ParseDocument("<root><a>1</a></root>");
    try {
      engine_.Compile(query).Execute(doc);
    } catch (const XQueryError& error) {
      return error.code();
    }
    return ErrorCode::kOk;
  }

  Engine engine_;
};

TEST_F(TypeOpsTest, InstanceOfAtomicTypes) {
  EXPECT_EQ(Run("1 instance of xs:integer"), "true");
  EXPECT_EQ(Run("1 instance of xs:decimal"), "true");  // integer ⊆ decimal
  EXPECT_EQ(Run("1.5 instance of xs:integer"), "false");
  EXPECT_EQ(Run("1.5 instance of xs:decimal"), "true");
  EXPECT_EQ(Run("1e0 instance of xs:double"), "true");
  EXPECT_EQ(Run("1e0 instance of xs:decimal"), "false");
  EXPECT_EQ(Run("\"x\" instance of xs:string"), "true");
  EXPECT_EQ(Run("true() instance of xs:boolean"), "true");
}

TEST_F(TypeOpsTest, InstanceOfOccurrence) {
  EXPECT_EQ(Run("() instance of xs:integer"), "false");
  EXPECT_EQ(Run("() instance of xs:integer?"), "true");
  EXPECT_EQ(Run("() instance of xs:integer*"), "true");
  EXPECT_EQ(Run("(1, 2) instance of xs:integer"), "false");
  EXPECT_EQ(Run("(1, 2) instance of xs:integer+"), "true");
  EXPECT_EQ(Run("(1, 2) instance of xs:integer*"), "true");
  EXPECT_EQ(Run("(1, \"a\") instance of xs:integer*"), "false");
}

TEST_F(TypeOpsTest, InstanceOfNodeKinds) {
  EXPECT_EQ(Run("//a instance of element()"), "true");
  EXPECT_EQ(Run("//a instance of element(a)"), "true");
  EXPECT_EQ(Run("//a instance of element(b)"), "false");
  EXPECT_EQ(Run("//a instance of node()"), "true");
  EXPECT_EQ(Run("//a instance of item()"), "true");
  EXPECT_EQ(Run("//a/text() instance of text()"), "true");
  EXPECT_EQ(Run("1 instance of node()"), "false");
  // "(/)": a bare "/ instance" would parse "instance" as a step name (the
  // W3C grammar has the same ambiguity and resolution).
  EXPECT_EQ(Run("(/) instance of document-node()"), "true");
  EXPECT_EQ(Run("//missing instance of element()?"), "true");
}

TEST_F(TypeOpsTest, CastAs) {
  EXPECT_EQ(Run("\"42\" cast as xs:integer"), "42");
  EXPECT_EQ(Run("3.9 cast as xs:integer"), "3");
  EXPECT_EQ(Run("\"1.5\" cast as xs:decimal"), "1.5");
  EXPECT_EQ(Run("//a cast as xs:integer"), "1");  // atomizes the node
  EXPECT_EQ(Run("count(() cast as xs:integer?)"), "0");
  EXPECT_EQ(RunError("() cast as xs:integer"), ErrorCode::kXPTY0004);
  EXPECT_EQ(RunError("(1, 2) cast as xs:integer"), ErrorCode::kXPTY0004);
  EXPECT_EQ(RunError("\"abc\" cast as xs:integer"), ErrorCode::kFORG0001);
}

TEST_F(TypeOpsTest, CastableAs) {
  EXPECT_EQ(Run("\"42\" castable as xs:integer"), "true");
  EXPECT_EQ(Run("\"abc\" castable as xs:integer"), "false");
  EXPECT_EQ(Run("\"2004-01-31\" castable as xs:date"), "true");
  EXPECT_EQ(Run("\"2004-13-31\" castable as xs:date"), "false");
  EXPECT_EQ(Run("() castable as xs:integer"), "false");
  EXPECT_EQ(Run("() castable as xs:integer?"), "true");
  EXPECT_EQ(Run("(1, 2) castable as xs:integer"), "false");
}

TEST_F(TypeOpsTest, CastableGuardsCast) {
  EXPECT_EQ(Run("for $v in (\"3\", \"x\", \"7\") "
                "return if ($v castable as xs:integer) "
                "       then $v cast as xs:integer else -1"),
            "3 -1 7");
}

TEST_F(TypeOpsTest, TreatAs) {
  EXPECT_EQ(Run("(1 treat as xs:integer) + 1"), "2");
  EXPECT_EQ(Run("count(//a treat as element()+)"), "1");
  EXPECT_EQ(RunError("(1.5 treat as xs:integer) + 1"), ErrorCode::kXPDY0050);
  EXPECT_EQ(RunError("() treat as xs:integer"), ErrorCode::kXPDY0050);
}

TEST_F(TypeOpsTest, PrecedenceWithComparison) {
  // instance-of binds tighter than comparison.
  EXPECT_EQ(Run("(1 instance of xs:integer) = true()"), "true");
  EXPECT_EQ(Run("1 instance of xs:integer and 2 instance of xs:integer"),
            "true");
}

// --- Function conversion rules ------------------------------------------------

TEST_F(TypeOpsTest, UntypedArgumentsCastToDeclaredType) {
  // A node argument atomizes to untypedAtomic then casts to the parameter
  // type — the rule that makes local:f(//a) work with typed params.
  EXPECT_EQ(Run("declare function local:inc($x as xs:integer) { $x + 1 }; "
                "local:inc(//a)"),
            "2");
  EXPECT_EQ(Run("declare function local:half($x as xs:decimal) { $x div 2 }; "
                "local:half(5)"),  // integer promotes to decimal
            "2.5");
  EXPECT_EQ(Run("declare function local:d($x as xs:double) { $x * 2 }; "
                "local:d(1.5)"),  // decimal promotes to double
            "3");
}

TEST_F(TypeOpsTest, CardinalityEnforced) {
  EXPECT_EQ(RunError("declare function local:one($x as xs:integer) { $x }; "
                     "local:one((1, 2))"),
            ErrorCode::kXPTY0004);
  EXPECT_EQ(RunError("declare function local:one($x as xs:integer) { $x }; "
                     "local:one(())"),
            ErrorCode::kXPTY0004);
  EXPECT_EQ(Run("declare function local:opt($x as xs:integer?) "
                "{ count($x) }; local:opt(())"),
            "0");
  EXPECT_EQ(RunError("declare function local:el($x as element(book)) { $x }; "
                     "local:el(//a)"),
            ErrorCode::kXPTY0004);
}

TEST_F(TypeOpsTest, UntypedParametersAcceptAnything) {
  EXPECT_EQ(Run("declare function local:n($x) { count($x) }; "
                "local:n((1, \"a\", //a))"),
            "3");
  EXPECT_EQ(Run("declare function local:n($x) { count($x) }; local:n(())"),
            "0");
}

TEST_F(TypeOpsTest, BadConversionMessageNamesParameter) {
  try {
    DocumentPtr doc = Engine::ParseDocument("<r/>");
    engine_.Compile("declare function local:f($x as xs:integer) { $x }; "
                    "local:f(\"oops\")")
        .Execute(doc);
    FAIL() << "expected error";
  } catch (const XQueryError& error) {
    EXPECT_NE(std::string(error.what()).find("local:f"), std::string::npos);
  }
}

// --- Direct MatchesSeqType coverage -------------------------------------------

TEST(MatchesSeqType, OccurrenceMatrix) {
  SeqType one;  // item()
  SeqType star = one;
  star.occurrence = SeqType::Occurrence::kStar;
  SeqType optional = one;
  optional.occurrence = SeqType::Occurrence::kOptional;
  SeqType plus = one;
  plus.occurrence = SeqType::Occurrence::kPlus;

  Sequence empty;
  Sequence single = {MakeInteger(1)};
  Sequence pair = {MakeInteger(1), MakeInteger(2)};

  EXPECT_FALSE(MatchesSeqType(empty, one));
  EXPECT_TRUE(MatchesSeqType(single, one));
  EXPECT_FALSE(MatchesSeqType(pair, one));

  EXPECT_TRUE(MatchesSeqType(empty, optional));
  EXPECT_TRUE(MatchesSeqType(single, optional));
  EXPECT_FALSE(MatchesSeqType(pair, optional));

  EXPECT_TRUE(MatchesSeqType(empty, star));
  EXPECT_TRUE(MatchesSeqType(pair, star));

  EXPECT_FALSE(MatchesSeqType(empty, plus));
  EXPECT_TRUE(MatchesSeqType(pair, plus));
}

}  // namespace
}  // namespace xqa

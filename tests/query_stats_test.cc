// ExecuteProfiled / QueryStats / ExplainAnalyze: golden per-clause
// cardinalities for the paper's Q1 and Q3 (the documents are small enough to
// hand-count every tuple), plus the zero-rebind regression guard for bare
// XQuery 3.0 grouping keys.

#include <gtest/gtest.h>

#include <string>

#include "api/engine.h"
#include "workload/books.h"
#include "xdm/deep_equal.h"

namespace xqa {
namespace {

class QueryStatsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bib_ = new DocumentPtr(
        Engine::ParseDocument(workload::PaperBibliographyXml()));
    sales_ = new DocumentPtr(Engine::ParseDocument(workload::PaperSalesXml()));
  }
  static void TearDownTestSuite() {
    delete bib_;
    delete sales_;
  }

  ProfiledResult Profile(const DocumentPtr& doc, const std::string& query) {
    return engine_.Compile(query).ExecuteProfiled(doc);
  }

  Engine engine_;
  static DocumentPtr* bib_;
  static DocumentPtr* sales_;
};

DocumentPtr* QueryStatsTest::bib_ = nullptr;
DocumentPtr* QueryStatsTest::sales_ = nullptr;

// Q1 — average net price per (publisher, year) over the 7-book bibliography.
constexpr char kQ1[] = R"(
  for $b in //book
  group by $b/publisher into $p, $b/year into $y
  nest $b/price - $b/discount into $netprices
  return
    <group>
      {$p, $y}
      <avg-net-price>{avg($netprices)}</avg-net-price>
    </group>
)";

TEST_F(QueryStatsTest, Q1PerClauseCardinalities) {
  ProfiledResult profiled = Profile(*bib_, kQ1);
  ASSERT_EQ(profiled.sequence.size(), 4u);

  // Clause order follows first execution: for, group by, return.
  const auto& clauses = profiled.stats.clauses;
  ASSERT_EQ(clauses.size(), 3u);

  EXPECT_EQ(clauses[0].label, "for $b");
  EXPECT_EQ(clauses[0].executions, 1);
  EXPECT_EQ(clauses[0].tuples_in, 1);   // the initial empty tuple
  EXPECT_EQ(clauses[0].tuples_out, 7);  // one per book

  EXPECT_EQ(clauses[1].label, "group by");
  EXPECT_EQ(clauses[1].tuples_in, 7);
  EXPECT_EQ(clauses[1].tuples_out, 4);  // (MK,93) (MK,95) (AW,93) ((),95)
  EXPECT_EQ(clauses[1].groups_formed, 4);
  // Two keys hashed per input tuple.
  EXPECT_EQ(profiled.stats.deep_hash_calls, 14);
  // Every probe found its group (no collisions between distinct key pairs).
  EXPECT_EQ(clauses[1].hash_collisions, 0);
  EXPECT_EQ(clauses[1].hash_probes, 3);  // books 2,3 join (MK,93); 5 joins (MK,95)
  EXPECT_EQ(clauses[1].linear_scan_compares, 0);

  EXPECT_EQ(clauses[2].label, "return");
  EXPECT_EQ(clauses[2].clause_index, ClauseStats::kReturnClause);
  EXPECT_EQ(clauses[2].tuples_in, 4);
  EXPECT_EQ(clauses[2].tuples_out, 4);

  EXPECT_EQ(profiled.stats.TotalGroupsFormed(), 4);
  // 4 <group> elements, each with 2-3 copied children plus the avg element
  // and its text; just pin that construction was counted at all.
  EXPECT_GT(profiled.stats.nodes_constructed, 8);
  EXPECT_GT(profiled.stats.path_steps, 0);
}

// Q3 — nested grouping: region/year outer, state inner (6-sale document).
constexpr char kQ3[] = R"(
  for $s in //sale
  group by $s/region into $region,
           year-from-dateTime($s/timestamp) into $year
  nest $s into $region-sales
  let $region-sum := round-half-to-even(sum( $region-sales/(quantity * price) ), 2)
  order by $year, $region
  return
    for $s in $region-sales
    group by $s/state into $state
    nest $s into $state-sales
    let $state-sum := round-half-to-even(sum( $state-sales/(quantity * price) ), 2)
    order by $state
    return
      <summary>
        <year>{$year}</year>{$region, $state}
        <state-sales>{ $state-sum }</state-sales>
        <region-sales>{ $region-sum }</region-sales>
      </summary>
)";

TEST_F(QueryStatsTest, Q3NestedFlworCardinalities) {
  ProfiledResult profiled = Profile(*sales_, kQ3);
  ASSERT_EQ(profiled.sequence.size(), 5u);

  // First-execution order: the outer FLWOR's five clauses, then the inner
  // FLWOR's five (first reached from the outer return clause).
  const auto& clauses = profiled.stats.clauses;
  ASSERT_EQ(clauses.size(), 10u);

  // Outer: 1 -> 6 sales -> 3 (region, year) groups.
  EXPECT_EQ(clauses[0].label, "for $s");
  EXPECT_EQ(clauses[0].tuples_out, 6);
  EXPECT_EQ(clauses[1].label, "group by");
  EXPECT_EQ(clauses[1].tuples_in, 6);
  EXPECT_EQ(clauses[1].tuples_out, 3);  // (West,04) (East,04) (West,03)
  EXPECT_EQ(clauses[1].groups_formed, 3);
  EXPECT_EQ(clauses[2].label, "let $region-sum");
  EXPECT_EQ(clauses[3].label, "order by");
  EXPECT_EQ(clauses[3].tuples_in, 3);
  EXPECT_EQ(clauses[4].label, "return");
  EXPECT_EQ(clauses[4].executions, 1);
  EXPECT_EQ(clauses[4].tuples_in, 3);
  EXPECT_EQ(clauses[4].tuples_out, 5);  // five summaries total

  // Inner: runs once per outer group; cardinalities are summed across runs.
  EXPECT_EQ(clauses[5].label, "for $s");
  EXPECT_EQ(clauses[5].executions, 3);
  EXPECT_EQ(clauses[5].tuples_in, 3);   // one initial tuple per run
  EXPECT_EQ(clauses[5].tuples_out, 6);  // 3 + 2 + 1 member sales
  EXPECT_EQ(clauses[6].label, "group by");
  EXPECT_EQ(clauses[6].tuples_in, 6);
  EXPECT_EQ(clauses[6].tuples_out, 5);  // CA,OR | NY,MA | CA
  EXPECT_EQ(clauses[6].groups_formed, 5);
  EXPECT_EQ(clauses[9].label, "return");
  EXPECT_EQ(clauses[9].executions, 3);
  EXPECT_EQ(clauses[9].tuples_in, 5);
  EXPECT_EQ(clauses[9].tuples_out, 5);
}

TEST_F(QueryStatsTest, ProfiledMatchesPlainAcrossFeatureQueries) {
  // One query per language feature the paper exercises (Q1-Q12 shapes):
  // grouping with nest, `using` equality, windows via positional predicates,
  // output numbering, count clause, and the 3.0 dialect. Profiling must not
  // change any result, and every run must report per-clause counters.
  struct Case { const DocumentPtr* doc; const char* query; };
  const Case kCases[] = {
      {bib_, kQ1},
      {sales_, kQ3},
      {bib_,
       "for $b in //book group by $b/author into $a using xqa:set-equal "
       "nest $b/price into $p return count($p)"},
      {sales_,
       "for $s in //sale order by number($s/price) descending "
       "return at $rank concat($rank, \"-\", $s/state)"},
      {bib_, "for $b in //book count $n where $n mod 2 = 0 return $b/title"},
      {bib_,
       "for $b in //book let $y := $b/year group by $p := string($b/publisher) "
       "order by $p return concat($p, \":\", count($y))"},
  };
  for (const Case& c : kCases) {
    PreparedQuery query = engine_.Compile(c.query);
    Sequence plain = query.Execute(*c.doc);
    ProfiledResult profiled = query.ExecuteProfiled(*c.doc);
    EXPECT_TRUE(DeepEqualSequences(plain, profiled.sequence)) << c.query;
    EXPECT_FALSE(profiled.stats.clauses.empty()) << c.query;
    for (const ClauseStats& clause : profiled.stats.clauses) {
      EXPECT_GE(clause.executions, 1) << c.query << " / " << clause.label;
    }
  }
}

TEST_F(QueryStatsTest, PlainExecuteCollectsNothing) {
  PreparedQuery query = engine_.Compile(kQ1);
  // The unprofiled path must not allocate or observe a stats object at all;
  // all we can check from outside is that profiled state is per-call.
  ProfiledResult first = query.ExecuteProfiled(*bib_);
  (void)query.Execute(*bib_);
  ProfiledResult second = query.ExecuteProfiled(*bib_);
  EXPECT_EQ(first.stats.tuples_flowed, second.stats.tuples_flowed);
  EXPECT_EQ(first.stats.deep_hash_calls, second.stats.deep_hash_calls);
}

TEST_F(QueryStatsTest, ExplainAnalyzeAnnotatesClauses) {
  PreparedQuery query = engine_.Compile(kQ1);
  std::string analyzed = query.ExplainAnalyze(*bib_);
  // The plan's clauses carry observed cardinalities...
  EXPECT_NE(analyzed.find("for $b in"), std::string::npos);
  EXPECT_NE(analyzed.find("[execs=1 in=1 out=7"), std::string::npos);
  EXPECT_NE(analyzed.find("groups=4"), std::string::npos);
  // ...the return line too, and a whole-query summary footer.
  EXPECT_NE(analyzed.find("in=4 out=4"), std::string::npos);
  EXPECT_NE(analyzed.find("observed: total"), std::string::npos);
  // The unannotated plan has none of this.
  std::string plain = query.Explain();
  EXPECT_EQ(plain.find("execs="), std::string::npos);
  EXPECT_EQ(plain.find("observed:"), std::string::npos);
}

TEST_F(QueryStatsTest, ToJsonIsWellFormed) {
  ProfiledResult profiled = Profile(*bib_, kQ1);
  std::string json = profiled.stats.ToJson();
  // Spot-check shape: balanced braces, the counters present, no raw pointers.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"tuples_flowed\""), std::string::npos);
  EXPECT_NE(json.find("\"clauses\""), std::string::npos);
  EXPECT_NE(json.find("\"groups_formed\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"flwor\": 0"), std::string::npos);
  EXPECT_EQ(json.find("0x"), std::string::npos);
}

// Regression (bare-key slot handling): `group by $x` on a variable bound in
// the same FLWOR rebinds $x to the key in place. Before the fix the binder
// declared a shadow slot while the evaluator also materialized the implicit
// merged concatenation for the original slot — a duplicate binding whose
// merged sequence was dead weight on every group. Post-group clauses must see
// the key, and no merged sequence may be built for a grouping variable.
TEST_F(QueryStatsTest, BareGroupKeyProducesNoImplicitRebind) {
  ProfiledResult profiled = Profile(
      *bib_,
      "for $x in //book/year group by $x where $x >= 1995 return $x");
  // Years: 1993 x4, 1995 x3 -> two groups, one survives the where.
  ASSERT_EQ(profiled.sequence.size(), 1u);
  EXPECT_EQ(profiled.sequence[0].atomic().ToLexical(), "1995");
  for (const ClauseStats& clause : profiled.stats.clauses) {
    EXPECT_EQ(clause.implicit_rebinds, 0)
        << "grouping variable was also materialized as a merged sequence in "
        << clause.label;
  }
}

TEST_F(QueryStatsTest, NonGroupingVariablesStillRebind) {
  // $y is not a grouping key, so it must still be rebound per group (two
  // groups -> two merged sequences).
  ProfiledResult profiled = Profile(
      *bib_,
      "for $x in //book/year let $y := $x + 1 group by $x "
      "return count($y)");
  ASSERT_EQ(profiled.sequence.size(), 2u);
  int64_t rebinds = 0;
  for (const ClauseStats& clause : profiled.stats.clauses) {
    rebinds += clause.implicit_rebinds;
  }
  EXPECT_EQ(rebinds, 2);
}

}  // namespace
}  // namespace xqa

// Storage chaos (docs/STORAGE.md, docs/ROBUSTNESS.md): sweep every
// storage.* fault site and assert the durability contract around each trip —
//   1. a tripped write path (journal append, segment/manifest write) fails
//      with the typed kXQSV0007 and leaves the store unchanged: the mutation
//      or checkpoint simply did not happen;
//   2. a tripped recovery read is absorbed by the retry and never changes
//      the recovered corpus;
//   3. after any trip the service stays serviceable, and killing it (no
//      checkpoint, no clean close) then recovering yields a consistent
//      corpus version with query results byte-identical to the live state.
// The kill-recover suite drives the same guarantee without faults: recovery
// after abandoning the service at any mutation boundary — including with a
// torn journal tail — lands exactly on an acknowledged prefix state.
// Requires -DXQA_FAULTS=ON for the sweep; kill-recover runs in any build.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/error.h"
#include "base/fault_injection.h"
#include "base/file_io.h"
#include "service/query_service.h"
#include "storage/format.h"
#include "xml/xml_parser.h"

namespace xqa {
namespace {

using service::CollectionStore;
using service::QueryService;
using service::Request;
using service::Response;
using service::ServiceOptions;

std::string MakeTempDir(const std::string& name) {
  std::string sanitized = name;
  for (char& c : sanitized) {
    if (c == '.') c = '_';
  }
  std::string dir = ::testing::TempDir() + "xqa_storage_chaos_" + sanitized;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

ServiceOptions DurableOptions(const std::string& dir) {
  ServiceOptions options;
  options.worker_threads = 2;
  options.collection_shards = 4;
  options.data_dir = dir;
  options.storage_fsync = FsyncPolicy::kAlways;  // the durability contract
  return options;
}

DocumentPtr Doc(const std::string& xml) {
  DocumentPtr document = ParseXml(xml);
  if (!document->sealed()) document->SealOrder();
  return document;
}

std::string QueryCorpus(QueryService& service) {
  Request request;
  request.query =
      "for $d in collection('books') return <t>{$d/book/t/text()}</t>";
  request.provide_collections = true;
  Response response = service.Execute(request);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  return response.result;
}

void Seed(QueryService& service, int docs) {
  for (int i = 0; i < docs; ++i) {
    service.collections().Put(
        "books", "seed" + std::to_string(i) + ".xml",
        Doc("<book><t>seed" + std::to_string(i) + "</t></book>"));
  }
}

class StorageChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::Enabled()) {
      GTEST_SKIP() << "fault points compiled out; configure -DXQA_FAULTS=ON";
    }
    fault::Reset();
  }
  void TearDown() override {
    if (fault::Enabled()) fault::Reset();
  }
};

/// Record mode over the full durable lifecycle — mutate, checkpoint, close,
/// recover — discovering every reachable storage.* site.
std::vector<fault::SiteInfo> DiscoverStorageSites() {
  fault::Reset();
  std::string dir = MakeTempDir("record");
  {
    QueryService service(DurableOptions(dir));
    Seed(service, 4);                                  // storage.journal_append
    service.CheckpointStorage();  // segment_write, journal_append,
                                  // manifest_write
    service.collections().Remove("books", "seed0.xml");
  }
  {
    QueryService service(DurableOptions(dir));  // storage.recover_read
  }
  std::vector<fault::SiteInfo> storage_sites;
  for (const fault::SiteInfo& site : fault::Sites()) {
    if (site.name.rfind("storage.", 0) == 0) storage_sites.push_back(site);
  }
  return storage_sites;
}

TEST_F(StorageChaosTest, SweepEveryStorageSite) {
  std::vector<fault::SiteInfo> sites = DiscoverStorageSites();
  std::vector<std::string> names;
  for (const fault::SiteInfo& site : sites) names.push_back(site.name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "storage.journal_append", "storage.manifest_write",
                       "storage.recover_read", "storage.segment_write"}));

  for (const fault::SiteInfo& site : sites) {
    SCOPED_TRACE(site.name);
    fault::Disarm();
    std::string dir = MakeTempDir("sweep_" + site.name);

    // Seed a generation on disk so recovery has segments and a journal.
    {
      QueryService service(DurableOptions(dir));
      Seed(service, 6);
      service.CheckpointStorage();
      service.collections().Put("books", "post.xml",
                                Doc("<book><t>post</t></book>"));
    }

    // Victim run with the site armed: recovery, a mutation, a checkpoint.
    // Exactly one step may absorb the trip; it must fail with the typed
    // error (or, for recover_read, be absorbed by the retry) and leave the
    // store in a state recovery reproduces byte-identically.
    fault::ArmSite(site.name, 1);
    int typed_failures = 0;
    std::string live_result;
    uint64_t live_version = 0;
    {
      QueryService service(DurableOptions(dir));
      try {
        service.collections().Put("books", "victim.xml",
                                  Doc("<book><t>victim</t></book>"));
      } catch (const XQueryError& error) {
        EXPECT_EQ(error.code(), ErrorCode::kXQSV0007);
        ++typed_failures;
      }
      try {
        service.CheckpointStorage();
      } catch (const XQueryError& error) {
        EXPECT_EQ(error.code(), ErrorCode::kXQSV0007);
        ++typed_failures;
      }
      try {
        std::vector<CollectionStore::BulkDocument> batch;
        batch.push_back({"bulk.xml", "<book><t>bulk</t></book>"});
        service.collections().BulkLoad("books", batch, 1);
      } catch (const XQueryError& error) {
        EXPECT_EQ(error.code(), ErrorCode::kXQSV0007);
        ++typed_failures;
      }
      EXPECT_LE(typed_failures, 1);

      // Liveness: with the fault spent, the service keeps accepting
      // mutations and checkpoints.
      fault::Disarm();
      service.collections().Put("books", "alive.xml",
                                Doc("<book><t>alive</t></book>"));
      service.CheckpointStorage();
      live_result = QueryCorpus(service);
      live_version = service.collections().version();
    }  // killed: no further checkpoint, no clean close

    // Recovery must land exactly on the acknowledged live state.
    QueryService recovered(DurableOptions(dir));
    EXPECT_EQ(recovered.collections().version(), live_version);
    EXPECT_EQ(QueryCorpus(recovered), live_result);
    EXPECT_EQ(recovered.storage_recovery().segments_quarantined, 0u);
  }
}

TEST_F(StorageChaosTest, FailedCheckpointLeavesPreviousGenerationServing) {
  for (const char* site :
       {"storage.segment_write", "storage.manifest_write"}) {
    SCOPED_TRACE(site);
    fault::Disarm();
    std::string dir = MakeTempDir(std::string("ckpt_") + site);
    std::string before;
    uint64_t version = 0;
    {
      QueryService service(DurableOptions(dir));
      Seed(service, 5);
      service.CheckpointStorage();
      service.collections().Put("books", "late.xml",
                                Doc("<book><t>late</t></book>"));
      before = QueryCorpus(service);
      version = service.collections().version();

      fault::ArmSite(site, 1);
      EXPECT_THROW(service.CheckpointStorage(), XQueryError);
      fault::Disarm();
      // The live corpus is untouched by the failed checkpoint.
      EXPECT_EQ(QueryCorpus(service), before);
      EXPECT_EQ(service.collections().version(), version);
    }
    // And the on-disk state still recovers it: the old manifest, segments,
    // and journal were never disturbed, and no partial generation-2 file is
    // picked up.
    QueryService recovered(DurableOptions(dir));
    EXPECT_EQ(recovered.collections().version(), version);
    EXPECT_EQ(QueryCorpus(recovered), before);
    EXPECT_LE(recovered.storage()->manifest_seq(), 1u);
  }
}

/// Kill-recover without faults: runs in every build (no XQA_FAULTS needed).
/// The QueryService destructor does nothing for storage beyond closing file
/// descriptors — there is no flush-on-close path — so dropping the service
/// without a checkpoint exercises exactly what a kill -9 leaves behind:
/// the last checkpoint plus the write-ahead journal.
TEST(KillRecoverTest, RecoveryAtEveryMutationBoundaryIsByteIdentical) {
  std::string dir = MakeTempDir("boundaries");
  constexpr int kMutations = 6;
  std::vector<std::string> results;
  std::vector<uint64_t> versions;
  {
    QueryService service(DurableOptions(dir));
    for (int i = 0; i < kMutations; ++i) {
      if (i == 2) {
        service.collections().Remove("books", "m0.xml");
      } else {
        service.collections().Put(
            "books", "m" + std::to_string(i) + ".xml",
            Doc("<book><t>m" + std::to_string(i) + "</t></book>"));
      }
      if (i == 3) service.CheckpointStorage();
      results.push_back(QueryCorpus(service));
      versions.push_back(service.collections().version());
    }
  }  // killed

  QueryService recovered(DurableOptions(dir));
  EXPECT_EQ(recovered.collections().version(), versions.back());
  EXPECT_EQ(QueryCorpus(recovered), results.back());
  EXPECT_TRUE(recovered.storage_recovery().manifest_found);
}

TEST(KillRecoverTest, TornTailLandsOnAnAcknowledgedPrefixState) {
  // Capture the state after every mutation, kill, then tear the journal at
  // descending sizes. Every recovery must land exactly on captured state
  // #records_applied — never a blend, never a crash.
  std::string dir = MakeTempDir("torn_prefix");
  constexpr int kMutations = 5;
  std::vector<std::string> results;
  std::vector<uint64_t> versions;
  {
    QueryService service(DurableOptions(dir));
    for (int i = 0; i < kMutations; ++i) {
      service.collections().Put(
          "books", "m" + std::to_string(i) + ".xml",
          Doc("<book><t>m" + std::to_string(i) + "</t></book>"));
      results.push_back(QueryCorpus(service));
      versions.push_back(service.collections().version());
    }
  }

  const std::string journal = dir + "/" + storage::JournalFileName(0);
  const uint64_t full = FileSizeOf(journal);
  // Chop 7 bytes at a time through the last two records' worth of tail.
  for (uint64_t size = full - 7; size + 150 > full && size > 24; size -= 7) {
    std::filesystem::resize_file(journal, size);
    QueryService recovered(DurableOptions(dir));
    const storage::RecoveryResult& recovery = recovered.storage_recovery();
    size_t applied = recovery.journal_records_applied;
    ASSERT_LE(applied, static_cast<size_t>(kMutations));
    if (applied == 0) {
      EXPECT_EQ(recovered.collections().size(), 0u);
      EXPECT_EQ(recovered.collections().version(), 0u);
    } else {
      EXPECT_EQ(recovered.collections().version(), versions[applied - 1]);
      EXPECT_EQ(QueryCorpus(recovered), results[applied - 1]);
    }
    // Recovery truncated the journal to the valid prefix; appends from the
    // recovered service would resume there. Re-tear from the smaller size
    // next iteration.
  }
}

}  // namespace
}  // namespace xqa

// Cross-validation: aggregate queries computed by the engine are checked
// against an independent C++ computation walking the same DOM directly.
// Any systematic bias in the FLWOR pipeline, grouping, atomization, or
// numeric handling shows up as a divergence here.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>

#include "api/engine.h"
#include "workload/sales.h"

namespace xqa {
namespace {

struct SaleRow {
  std::string region;
  std::string state;
  std::string product;
  int year;
  double amount;
};

std::vector<SaleRow> ExtractRows(const DocumentPtr& doc) {
  std::vector<SaleRow> rows;
  const Node* sales = doc->root()->children()[0];
  for (const Node* sale : sales->children()) {
    if (sale->kind() != NodeKind::kElement) continue;
    SaleRow row;
    double quantity = 0, price = 0;
    for (const Node* field : sale->children()) {
      if (field->name() == "region") row.region = field->StringValue();
      else if (field->name() == "state") row.state = field->StringValue();
      else if (field->name() == "product") row.product = field->StringValue();
      else if (field->name() == "quantity") quantity = std::stod(field->StringValue());
      else if (field->name() == "price") price = std::stod(field->StringValue());
      else if (field->name() == "timestamp")
        row.year = std::stoi(field->StringValue().substr(0, 4));
    }
    row.amount = quantity * price;
    rows.push_back(std::move(row));
  }
  return rows;
}

class CrossValidationTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    workload::SalesConfig config;
    config.seed = GetParam();
    config.num_sales = 400;
    doc_ = workload::GenerateSalesDocument(config);
    rows_ = ExtractRows(doc_);
  }

  std::string Run(const std::string& query) {
    return engine_.Compile(query).ExecuteToString(doc_);
  }

  Engine engine_;
  DocumentPtr doc_;
  std::vector<SaleRow> rows_;
};

TEST_P(CrossValidationTest, TotalRevenueAgrees) {
  double expected = 0;
  for (const SaleRow& row : rows_) expected += row.amount;
  double actual =
      std::stod(Run("sum(//sale/(quantity * price))"));
  EXPECT_NEAR(actual, expected, 1e-6 * expected);
}

TEST_P(CrossValidationTest, PerRegionGroupingAgrees) {
  std::map<std::string, std::pair<int, double>> expected;
  for (const SaleRow& row : rows_) {
    expected[row.region].first += 1;
    expected[row.region].second += row.amount;
  }
  std::string out = Run(
      "for $s in //sale group by string($s/region) into $r "
      "nest $s/quantity * $s/price into $amounts "
      "order by $r "
      "return concat($r, \"|\", count($amounts), \"|\", "
      "round-half-to-even(sum($amounts), 2))");
  std::istringstream stream(out);
  std::string token;
  auto it = expected.begin();
  int seen = 0;
  while (stream >> token) {
    ASSERT_NE(it, expected.end());
    size_t p1 = token.find('|');
    size_t p2 = token.rfind('|');
    EXPECT_EQ(token.substr(0, p1), it->first);
    EXPECT_EQ(std::stoi(token.substr(p1 + 1, p2 - p1 - 1)), it->second.first);
    EXPECT_NEAR(std::stod(token.substr(p2 + 1)), it->second.second, 0.01);
    ++it;
    ++seen;
  }
  EXPECT_EQ(seen, static_cast<int>(expected.size()));
}

TEST_P(CrossValidationTest, TwoKeyGroupingAgrees) {
  std::map<std::pair<int, std::string>, double> expected;
  for (const SaleRow& row : rows_) {
    expected[{row.year, row.region}] += row.amount;
  }
  std::string count_out = Run(
      "count(for $s in //sale "
      "group by year-from-dateTime($s/timestamp) into $y, "
      "         string($s/region) into $r return 1)");
  EXPECT_EQ(std::stoi(count_out), static_cast<int>(expected.size()));

  // Spot-check every group total through a correlated query.
  for (const auto& [key, total] : expected) {
    std::string query =
        "round-half-to-even(sum(//sale[region = \"" + key.second +
        "\" and year-from-dateTime(timestamp) = " + std::to_string(key.first) +
        "]/(quantity * price)), 2)";
    EXPECT_NEAR(std::stod(Run(query)), total, 0.01)
        << key.first << "/" << key.second;
  }
}

TEST_P(CrossValidationTest, MinMaxAgree) {
  double lo = 1e300, hi = -1e300;
  for (const SaleRow& row : rows_) {
    lo = std::min(lo, row.amount);
    hi = std::max(hi, row.amount);
  }
  EXPECT_NEAR(std::stod(Run("min(//sale/(quantity * price))")), lo, 1e-9);
  EXPECT_NEAR(std::stod(Run("max(//sale/(quantity * price))")), hi, 1e-9);
}

TEST_P(CrossValidationTest, DistinctProductCountAgrees) {
  std::map<std::string, int> products;
  for (const SaleRow& row : rows_) products[row.product] += 1;
  EXPECT_EQ(std::stoi(Run("count(distinct-values(//sale/product))")),
            static_cast<int>(products.size()));
  // Group sizes sum to the row count.
  EXPECT_EQ(std::stoi(Run("sum(for $s in //sale group by $s/product into $p "
                          "nest $s into $ss return count($ss))")),
            static_cast<int>(rows_.size()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidationTest,
                         ::testing::Values(3, 17, 91, 2024));

}  // namespace
}  // namespace xqa

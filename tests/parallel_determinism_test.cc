// Deterministic intra-query parallelism (docs/PARALLELISM.md): parallel
// execution must be an invisible optimization. For every query, the
// serialized result bytes, the error outcome (code, message, and which
// tuple's error wins), and the semantic profile counters must match the
// serial engine exactly, at every thread count.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "workload/books.h"
#include "workload/orders.h"

namespace xqa {
namespace {

std::string RunWithThreads(Engine& engine, const DocumentPtr& doc,
                           const std::string& query, int num_threads) {
  PreparedQuery prepared = engine.Compile(query);
  ExecutionOptions options;
  options.num_threads = num_threads;
  prepared.set_execution_options(options);
  return prepared.ExecuteToString(doc);
}

Status StatusWithThreads(Engine& engine, const DocumentPtr& doc,
                         const std::string& query, int num_threads) {
  PreparedQuery prepared = engine.Compile(query);
  ExecutionOptions options;
  options.num_threads = num_threads;
  prepared.set_execution_options(options);
  Result<Sequence> result = prepared.TryExecute(doc);
  return result.ok() ? Status::OK() : result.status();
}

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::OrderConfig config;
    config.num_orders = 3000;  // ~12k lineitems: well past the morsel cutoff
    orders_ = new DocumentPtr(workload::GenerateOrdersDocument(config));
    bib_ = new DocumentPtr(
        Engine::ParseDocument(workload::PaperBibliographyXml()));
    sales_ = new DocumentPtr(Engine::ParseDocument(workload::PaperSalesXml()));
  }
  static void TearDownTestSuite() {
    delete orders_;
    delete bib_;
    delete sales_;
  }

  /// Serial output is the reference; 2, 4, and hardware (0) lanes must
  /// reproduce it byte for byte.
  void ExpectDeterministic(const DocumentPtr& doc, const std::string& query) {
    const std::string serial = RunWithThreads(engine_, doc, query, 1);
    for (int threads : {2, 4, 0}) {
      EXPECT_EQ(RunWithThreads(engine_, doc, query, threads), serial)
          << "num_threads=" << threads << "\nquery: " << query;
    }
  }

  Engine engine_;
  static DocumentPtr* orders_;
  static DocumentPtr* bib_;
  static DocumentPtr* sales_;
};

DocumentPtr* ParallelDeterminismTest::orders_ = nullptr;
DocumentPtr* ParallelDeterminismTest::bib_ = nullptr;
DocumentPtr* ParallelDeterminismTest::sales_ = nullptr;

// --- Paper queries (small documents, exercises the option plumbing and the
// --- below-cutoff serial fallback) -----------------------------------------

TEST_F(ParallelDeterminismTest, PaperBibliographyQueries) {
  const char* queries[] = {
      // Q1: explicit group by with multiple keys and a nest.
      R"(for $b in //book
         group by $b/publisher into $p, $b/year into $y
         nest $b/price - $b/discount into $netprices
         return <group>{$p, $y}<avg>{avg($netprices)}</avg></group>)",
      // Q2a: author-sequence grouping (permutations distinct).
      R"(for $b in //book
         group by $b/author into $a
         nest $b/price into $prices
         return <group>{$a}<avg-price>{avg($prices)}</avg-price></group>)",
      // nest ... order by (always serial, must still honor the options).
      R"(for $b in //book
         group by $b/year into $y
         nest $b/title order by string($b/title) descending into $titles
         return <g>{$y, $titles}</g>)",
      // order by + the paper's output-numbering extension.
      R"(for $b in //book
         order by string($b/title)
         return at $r ($r, string($b/title)))",
  };
  for (const char* query : queries) ExpectDeterministic(*bib_, query);
}

TEST_F(ParallelDeterminismTest, PaperSalesNestedGroupBy) {
  ExpectDeterministic(*sales_, R"(
    for $s in //sale
    group by $s/region into $region,
             year-from-dateTime($s/timestamp) into $year
    nest $s into $region-sales
    order by $year, $region
    return
      for $s in $region-sales
      group by $s/state into $state
      nest $s/(quantity * price) into $amounts
      order by $state
      return <summary>{$year, $region, $state}
        <sales>{round-half-to-even(sum($amounts), 2)}</sales></summary>
  )");
}

// --- Large documents (the parallel paths actually engage) -------------------

TEST_F(ParallelDeterminismTest, LargeGroupByPaperDialect) {
  ExpectDeterministic(*orders_, R"(
    for $l in //order/lineitem
    group by $l/quantity into $q
    nest $l/extendedprice into $prices
    order by number($q)
    return <r>{$q}<n>{count($prices)}</n><s>{sum($prices)}</s></r>
  )");
}

TEST_F(ParallelDeterminismTest, LargeGroupByMultipleKeys) {
  ExpectDeterministic(*orders_, R"(
    for $l in //lineitem
    group by $l/shipmode into $m, $l/returnflag into $f
    nest $l/quantity into $qs
    order by string($m), string($f)
    return <r>{$m, $f}<n>{count($qs)}</n></r>
  )");
}

TEST_F(ParallelDeterminismTest, LargeGroupByXQuery3Dialect) {
  // Implicit rebinding: $l is rebound to each group's member sequence, whose
  // order must match the serial engine's input order exactly.
  ExpectDeterministic(*orders_, R"(
    for $l in //lineitem
    group by $k := string($l/shipmode)
    order by $k
    return ($k, count($l), sum($l/quantity))
  )");
}

TEST_F(ParallelDeterminismTest, LargeWhereClause) {
  ExpectDeterministic(*orders_, R"(
    for $l in //lineitem
    where number($l/quantity) > 25 and $l/shipmode = "AIR"
    return string($l/partkey)
  )");
}

TEST_F(ParallelDeterminismTest, LargeOrderByMultipleKeys) {
  ExpectDeterministic(*orders_, R"(
    for $l in //lineitem
    order by string($l/shipmode) descending, number($l/quantity),
             string($l/partkey)
    return string($l/linenumber)
  )");
}

TEST_F(ParallelDeterminismTest, LargeOrderByStableOnTies) {
  // Massive tie groups: stability means input order decides within a tie, so
  // any reordering introduced by parallel key evaluation would show up.
  ExpectDeterministic(*orders_, R"(
    for $l in //lineitem
    order by string($l/returnflag)
    return string($l/partkey)
  )");
}

TEST_F(ParallelDeterminismTest, CustomUsingEqualityFallsBackToSerial) {
  ExpectDeterministic(*bib_, R"(
    for $b in //book
    group by $b/author into $a using xqa:set-equal
    nest $b/price into $prices
    return <group>{$a}<avg>{avg($prices)}</avg></group>
  )");
}

TEST_F(ParallelDeterminismTest, UserFunctionEqualityFallsBackToSerial) {
  ExpectDeterministic(*bib_, R"(
    declare function local:set-equal
        ($arg1 as item()*, $arg2 as item()*) as xs:boolean
    { every $i1 in $arg1 satisfies
        some $i2 in $arg2 satisfies $i1 eq $i2
      and every $i2 in $arg2 satisfies
        some $i1 in $arg1 satisfies $i1 eq $i2
    };
    for $b in //book
    group by $b/author into $a using local:set-equal
    nest $b/price into $prices
    return <group>{$a}</group>
  )");
}

TEST_F(ParallelDeterminismTest, NestOrderByOnLargeDocument) {
  ExpectDeterministic(*orders_, R"(
    for $l in //lineitem
    group by $l/shipmode into $m
    nest $l/partkey order by number($l/quantity) descending,
                             string($l/partkey) into $parts
    return <g>{$m}<first>{$parts[1]}</first><n>{count($parts)}</n></g>
  )");
}

// --- Error determinism ------------------------------------------------------

TEST_F(ParallelDeterminismTest, IncomparableOrderKeysSameErrorEverywhere) {
  // Key types flip from numeric to string mid-stream: every thread count
  // must report the identical XPTY0004 (validated before the sort, at the
  // first offending tuple in input order).
  const std::string query =
      "for $i in 1 to 2000 "
      "order by (if ($i = 1500) then \"oops\" else $i) "
      "return $i";
  DocumentPtr doc = Engine::ParseDocument("<root/>");
  Status serial = StatusWithThreads(engine_, doc, query, 1);
  ASSERT_EQ(serial.code(), ErrorCode::kXPTY0004);
  for (int threads : {2, 4, 0}) {
    Status parallel = StatusWithThreads(engine_, doc, query, threads);
    EXPECT_EQ(parallel.code(), serial.code()) << "num_threads=" << threads;
    EXPECT_EQ(parallel.message(), serial.message())
        << "num_threads=" << threads;
  }
}

TEST_F(ParallelDeterminismTest, LowestTupleErrorWinsUnderParallelism) {
  // Two tuples fail during parallel key evaluation; the one at the lower
  // input index must be reported, exactly as the serial engine does.
  const std::string query =
      "for $i in 1 to 2000 "
      "order by (if ($i = 700 or $i = 1900) then $i div 0 else $i) "
      "return $i";
  DocumentPtr doc = Engine::ParseDocument("<root/>");
  Status serial = StatusWithThreads(engine_, doc, query, 1);
  ASSERT_EQ(serial.code(), ErrorCode::kFOAR0001);
  for (int threads : {2, 4, 0}) {
    Status parallel = StatusWithThreads(engine_, doc, query, threads);
    EXPECT_EQ(parallel.code(), serial.code()) << "num_threads=" << threads;
    EXPECT_EQ(parallel.message(), serial.message())
        << "num_threads=" << threads;
  }
}

TEST_F(ParallelDeterminismTest, WhereClauseErrorIsDeterministic) {
  const std::string query =
      "for $i in 1 to 2000 "
      "where (if ($i = 1111) then $i idiv 0 else $i) > 0 "
      "return $i";
  DocumentPtr doc = Engine::ParseDocument("<root/>");
  Status serial = StatusWithThreads(engine_, doc, query, 1);
  ASSERT_NE(serial.code(), ErrorCode::kOk);
  for (int threads : {2, 4, 0}) {
    Status parallel = StatusWithThreads(engine_, doc, query, threads);
    EXPECT_EQ(parallel.code(), serial.code()) << "num_threads=" << threads;
    EXPECT_EQ(parallel.message(), serial.message())
        << "num_threads=" << threads;
  }
}

// --- Profiled execution -----------------------------------------------------

TEST_F(ParallelDeterminismTest, ProfiledCountersMatchSerial) {
  const std::string query =
      "for $l in //lineitem "
      "group by $l/quantity into $q "
      "nest $l into $ls "
      "return count($ls)";
  PreparedQuery serial_query = engine_.Compile(query);
  ProfiledResult serial = serial_query.ExecuteProfiled(*orders_);

  PreparedQuery parallel_query = engine_.Compile(query);
  ExecutionOptions options;
  options.num_threads = 4;
  parallel_query.set_execution_options(options);
  ProfiledResult parallel = parallel_query.ExecuteProfiled(*orders_);

  EXPECT_EQ(SerializeSequence(parallel.sequence),
            SerializeSequence(serial.sequence));
  // Semantic counters are exact across thread counts; probe/collision
  // counts may legitimately differ (the parallel path re-probes during the
  // partial-table merge), so they are not compared.
  EXPECT_EQ(parallel.stats.TotalGroupsFormed(), serial.stats.TotalGroupsFormed());
  EXPECT_EQ(parallel.stats.deep_hash_calls, serial.stats.deep_hash_calls);
  EXPECT_EQ(parallel.stats.tuples_flowed, serial.stats.tuples_flowed);
}

TEST_F(ParallelDeterminismTest, SingleThreadOptionIsExactlySerial) {
  const std::string query =
      "for $l in //lineitem "
      "group by $l/shipmode into $m "
      "nest $l/quantity into $qs "
      "order by string($m) "
      "return <r>{$m}<n>{count($qs)}</n></r>";
  PreparedQuery serial_query = engine_.Compile(query);
  ProfiledResult serial = serial_query.ExecuteProfiled(*orders_);

  PreparedQuery one_thread_query = engine_.Compile(query);
  ExecutionOptions options;
  options.num_threads = 1;
  one_thread_query.set_execution_options(options);
  ProfiledResult one_thread = one_thread_query.ExecuteProfiled(*orders_);

  EXPECT_EQ(SerializeSequence(one_thread.sequence),
            SerializeSequence(serial.sequence));
  // num_threads=1 takes the identical code path, so every counter matches.
  EXPECT_EQ(one_thread.stats.TotalGroupsFormed(),
            serial.stats.TotalGroupsFormed());
  EXPECT_EQ(one_thread.stats.TotalHashProbes(), serial.stats.TotalHashProbes());
  EXPECT_EQ(one_thread.stats.deep_equal_calls, serial.stats.deep_equal_calls);
  EXPECT_EQ(one_thread.stats.deep_hash_calls, serial.stats.deep_hash_calls);
  EXPECT_EQ(one_thread.stats.tuples_flowed, serial.stats.tuples_flowed);
}

// --- Structural indexes under parallelism (docs/INDEXES.md) -----------------

TEST_F(ParallelDeterminismTest, IndexedPathsDeterministicAcrossThreads) {
  // Index-backed descendant steps inside parallel FLWOR lanes read the
  // sealed per-document indexes without synchronization; the results must
  // stay byte-identical at every thread count.
  const char* queries[] = {
      // Descendant step per tuple, answered by the element-name index.
      R"(for $o in //order
         where count($o//lineitem) > 3
         return string($o/orderkey))",
      // Fused //T start plus a per-tuple descendant step with a predicate.
      R"(for $o in //order
         let $air := $o//lineitem[shipmode = "MODE-1"]
         order by string($o/orderkey)
         return <r>{string($o/orderkey)}<n>{count($air)}</n></r>)",
      // Name absent from the document: indexed no-op scans everywhere.
      R"(for $o in //order
         return count($o//nonexistent))",
  };
  for (const char* query : queries) ExpectDeterministic(*orders_, query);
}

TEST_F(ParallelDeterminismTest, IndexCountersMatchSerial) {
  // Each order tuple triggers one index scan; the per-lane sinks must merge
  // to exactly the serial totals (index counters are semantic, not timing).
  const std::string query =
      "for $o in //order "
      "where count($o//lineitem) > 2 "
      "return string($o/orderkey)";
  PreparedQuery serial_query = engine_.Compile(query);
  ProfiledResult serial = serial_query.ExecuteProfiled(*orders_);
  EXPECT_GT(serial.stats.index_scans, 0);

  PreparedQuery parallel_query = engine_.Compile(query);
  ExecutionOptions options;
  options.num_threads = 4;
  parallel_query.set_execution_options(options);
  ProfiledResult parallel = parallel_query.ExecuteProfiled(*orders_);

  EXPECT_EQ(SerializeSequence(parallel.sequence),
            SerializeSequence(serial.sequence));
  EXPECT_EQ(parallel.stats.index_scans, serial.stats.index_scans);
  EXPECT_EQ(parallel.stats.index_scan_nodes, serial.stats.index_scan_nodes);
  EXPECT_EQ(parallel.stats.fallback_walks, serial.stats.fallback_walks);
  EXPECT_EQ(parallel.stats.fallback_walk_nodes,
            serial.stats.fallback_walk_nodes);
}

TEST_F(ParallelDeterminismTest, AblationDeterministicAcrossThreads) {
  // use_structural_index = false must also be deterministic, and must agree
  // with the indexed result at every thread count.
  const std::string query =
      "for $o in //order "
      "where count($o//lineitem) > 3 "
      "return string($o/orderkey)";
  PreparedQuery indexed = engine_.Compile(query);
  const std::string reference = indexed.ExecuteToString(*orders_);
  for (int threads : {1, 2, 4}) {
    PreparedQuery fallback = engine_.Compile(query);
    ExecutionOptions options;
    options.num_threads = threads;
    options.use_structural_index = false;
    fallback.set_execution_options(options);
    EXPECT_EQ(fallback.ExecuteToString(*orders_), reference)
        << "num_threads=" << threads;
  }
}

// --- Cross-thread stress ----------------------------------------------------

TEST_F(ParallelDeterminismTest, ConcurrentParallelExecutions) {
  // Multiple caller threads drive parallel queries through the one shared
  // pool simultaneously; every run must still match the serial reference.
  PreparedQuery query = engine_.Compile(
      "for $l in //lineitem "
      "group by $l/shipmode into $m "
      "nest $l into $ls "
      "order by string($m) "
      "return <r>{$m}<n>{count($ls)}</n></r>");
  const std::string expected = query.ExecuteToString(*orders_);
  ExecutionOptions options;
  options.num_threads = 4;
  query.set_execution_options(options);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 5; ++i) {
        if (query.ExecuteToString(*orders_) != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace xqa

// Public API tests: Engine / PreparedQuery, error carriers, serialization.

#include "api/engine.h"

#include <gtest/gtest.h>

namespace xqa {
namespace {

TEST(Engine, CompileOnceExecuteMany) {
  Engine engine;
  PreparedQuery query = engine.Compile("count(//x)");
  EXPECT_EQ(query.ExecuteToString(Engine::ParseDocument("<r><x/><x/></r>")),
            "2");
  EXPECT_EQ(query.ExecuteToString(Engine::ParseDocument("<r/>")), "0");
}

TEST(Engine, ExecuteWithoutContextItem) {
  Engine engine;
  PreparedQuery query = engine.Compile("1 + 1");
  Sequence result = query.Execute();
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].atomic().AsInteger(), 2);
  // Touching the context item without one is a dynamic error.
  EXPECT_THROW(engine.Compile("//x").Execute(), XQueryError);
}

TEST(Engine, TryCompileReportsStaticErrors) {
  Engine engine;
  Result<PreparedQuery> bad_syntax = engine.TryCompile("for $x in");
  ASSERT_FALSE(bad_syntax.ok());
  EXPECT_EQ(bad_syntax.status().code(), ErrorCode::kXPST0003);

  Result<PreparedQuery> bad_var = engine.TryCompile("$nope");
  ASSERT_FALSE(bad_var.ok());
  EXPECT_EQ(bad_var.status().code(), ErrorCode::kXPST0008);

  Result<PreparedQuery> ok = engine.TryCompile("1");
  EXPECT_TRUE(ok.ok());
}

TEST(Engine, TryExecuteReportsDynamicErrors) {
  Engine engine;
  DocumentPtr doc = Engine::ParseDocument("<r/>");
  Result<Sequence> result = engine.Compile("1 div 0").TryExecute(doc);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), ErrorCode::kFOAR0001);
  EXPECT_NE(result.status().ToString().find("FOAR0001"), std::string::npos);
}

TEST(Engine, SerializeSequenceRules) {
  Engine engine;
  DocumentPtr doc = Engine::ParseDocument("<r><a>1</a></r>");
  // Adjacent atomics get one space; nodes serialize as XML.
  EXPECT_EQ(engine.Compile("(1, 2, //a, 3)").ExecuteToString(doc),
            "1 2<a>1</a>3");
  EXPECT_EQ(engine.Compile("()").ExecuteToString(doc), "");
}

TEST(Engine, SerializeWithIndent) {
  Engine engine;
  DocumentPtr doc = Engine::ParseDocument("<r/>");
  std::string out =
      engine.Compile("<a><b>x</b><c/></a>").ExecuteToString(doc, 2);
  EXPECT_EQ(out, "<a>\n  <b>x</b>\n  <c/>\n</a>");
}

TEST(Engine, ModuleAccessors) {
  Engine engine;
  PreparedQuery query = engine.Compile(
      "declare function local:f($x) { $x }; local:f(1)");
  EXPECT_EQ(query.module().functions.size(), 1u);
  EXPECT_EQ(query.rewrites_applied(), 0);
}

TEST(Engine, GroupByRewriteOptionSurfacesCount) {
  Engine engine;  // group-by extraction is on by default
  PreparedQuery query = engine.Compile(R"(
    for $a in distinct-values(//order/lineitem/shipmode)
    let $items := for $i in //order/lineitem
                  where $i/shipmode = $a
                  return $i
    return <r>{$a, count($items)}</r>
  )");
  EXPECT_EQ(query.rewrites_applied(), 1);
}

TEST(Engine, QueriesAreIndependentAcrossExecutions) {
  // A PreparedQuery carries no mutable execution state.
  Engine engine;
  PreparedQuery query = engine.Compile(
      "for $x in //v return at $n $n");
  DocumentPtr doc = Engine::ParseDocument("<r><v/><v/></r>");
  EXPECT_EQ(query.ExecuteToString(doc), "1 2");
  EXPECT_EQ(query.ExecuteToString(doc), "1 2");  // numbering restarts
}

TEST(Engine, LargeDocumentRoundTrip) {
  Engine engine;
  std::string xml = "<r>";
  for (int i = 0; i < 1000; ++i) {
    xml += "<item n=\"" + std::to_string(i) + "\">" + std::to_string(i % 10) +
           "</item>";
  }
  xml += "</r>";
  DocumentPtr doc = Engine::ParseDocument(xml);
  EXPECT_EQ(engine.Compile("count(//item)").ExecuteToString(doc), "1000");
  EXPECT_EQ(engine.Compile("count(distinct-values(//item))")
                .ExecuteToString(doc),
            "10");
  EXPECT_EQ(engine
                .Compile("for $i in //item group by string($i) into $k "
                         "nest $i into $is order by $k "
                         "return count($is)")
                .ExecuteToString(doc),
            "100 100 100 100 100 100 100 100 100 100");
}

}  // namespace
}  // namespace xqa

// Direct element constructor evaluation: attributes, enclosed expressions,
// content sequence rules, copy semantics.

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

class ConstructorTest : public ::testing::Test {
 protected:
  std::string Run(const std::string& query,
                  const std::string& xml = "<root><a>1</a><b>2</b></root>") {
    DocumentPtr doc = Engine::ParseDocument(xml);
    return engine_.Compile(query).ExecuteToString(doc);
  }

  ErrorCode RunError(const std::string& query) {
    DocumentPtr doc = Engine::ParseDocument("<root/>");
    try {
      engine_.Compile(query).Execute(doc);
    } catch (const XQueryError& error) {
      return error.code();
    }
    return ErrorCode::kOk;
  }

  Engine engine_;
};

TEST_F(ConstructorTest, EmptyAndTextElements) {
  EXPECT_EQ(Run("<e/>"), "<e/>");
  EXPECT_EQ(Run("<e>text</e>"), "<e>text</e>");
  EXPECT_EQ(Run("<e>a b  c</e>"), "<e>a b  c</e>");  // inner spaces kept
}

TEST_F(ConstructorTest, LiteralAttributes) {
  EXPECT_EQ(Run("<e a=\"1\" b='two'/>"), "<e a=\"1\" b=\"two\"/>");
}

TEST_F(ConstructorTest, AttributeValueTemplates) {
  EXPECT_EQ(Run("let $v := 5 return <e a=\"{$v}\"/>"), "<e a=\"5\"/>");
  EXPECT_EQ(Run("let $v := 5 return <e a=\"x{$v}y\"/>"), "<e a=\"x5y\"/>");
  EXPECT_EQ(Run("<e a=\"{1 + 2}-{3 + 4}\"/>"), "<e a=\"3-7\"/>");
  // Sequence values join with single spaces.
  EXPECT_EQ(Run("<e a=\"{(1, 2, 3)}\"/>"), "<e a=\"1 2 3\"/>");
  EXPECT_EQ(Run("<e a=\"{()}\"/>"), "<e a=\"\"/>");
}

TEST_F(ConstructorTest, AttributeValueAtomizesNodes) {
  EXPECT_EQ(Run("<e a=\"{//a}\"/>"), "<e a=\"1\"/>");
}

TEST_F(ConstructorTest, EnclosedExpressionsInContent) {
  EXPECT_EQ(Run("<e>{1 + 2}</e>"), "<e>3</e>");
  EXPECT_EQ(Run("<e>x{1}y</e>"), "<e>x1y</e>");
  // Adjacent atomics from one expression are space-separated.
  EXPECT_EQ(Run("<e>{(1, 2, 3)}</e>"), "<e>1 2 3</e>");
  // Adjacent enclosed expressions do NOT insert a space.
  EXPECT_EQ(Run("<e>{1}{2}</e>"), "<e>12</e>");
}

TEST_F(ConstructorTest, NodeContentIsCopied) {
  std::string out = Run("let $copy := <wrap>{//a}</wrap> return $copy");
  EXPECT_EQ(out, "<wrap><a>1</a></wrap>");
  // The copy is a distinct node: modifying nothing, but identity differs.
  EXPECT_EQ(Run("let $w := <wrap>{//a}</wrap> return $w/a is (//a)[1]"),
            "false");
}

TEST_F(ConstructorTest, MixedNodeAndAtomicContent) {
  EXPECT_EQ(Run("<e>{ \"n=\", count(//a) }</e>"), "<e>n= 1</e>");
  EXPECT_EQ(Run("<e>{//a}{//b}</e>"), "<e><a>1</a><b>2</b></e>");
}

TEST_F(ConstructorTest, NestedConstructors) {
  EXPECT_EQ(Run("<out><mid><in>{40 + 2}</in></mid></out>"),
            "<out><mid><in>42</in></mid></out>");
}

TEST_F(ConstructorTest, BoundaryWhitespaceStripped) {
  EXPECT_EQ(Run("<e>\n  <f/>\n  <g/>\n</e>"), "<e><f/><g/></e>");
  EXPECT_EQ(Run("<e> {1} </e>"), "<e>1</e>");
}

TEST_F(ConstructorTest, SignificantWhitespacePreserved) {
  EXPECT_EQ(Run("<e>a <f/> b</e>"), "<e>a <f/> b</e>");
  // CDATA whitespace is significant even if all-spaces.
  EXPECT_EQ(Run("<e><![CDATA[  ]]></e>"), "<e>  </e>");
}

TEST_F(ConstructorTest, EscapesAndReferences) {
  EXPECT_EQ(Run("<e>{{braces}}</e>"), "<e>{braces}</e>");
  EXPECT_EQ(Run("<e>&lt;raw&gt;</e>"), "<e>&lt;raw&gt;</e>");
  EXPECT_EQ(Run("<e a=\"{{x}}\"/>"), "<e a=\"{x}\"/>");
  EXPECT_EQ(Run("<e>&#65;</e>"), "<e>A</e>");
}

TEST_F(ConstructorTest, CommentsBecomeCommentNodes) {
  EXPECT_EQ(Run("<e><!-- note --><v>1</v></e>"), "<e><!-- note --><v>1</v></e>");
}

TEST_F(ConstructorTest, ConstructedTreeIsNavigable) {
  EXPECT_EQ(Run("let $t := <o><i><x>7</x></i></o> return string($t/i/x)"),
            "7");
  EXPECT_EQ(Run("let $t := <o><i/><i/></o> return count($t/i)"), "2");
  EXPECT_EQ(Run("let $t := <o a=\"v\"/> return string($t/@a)"), "v");
  // Parent navigation within a constructed tree.
  EXPECT_EQ(Run("let $t := <o><i><x/></i></o> "
                "return name(($t//x)[1]/..)"),
            "i");
}

TEST_F(ConstructorTest, ConstructedNodesHaveDocumentOrder) {
  EXPECT_EQ(Run("let $t := <o><p/><q/><r/></o> "
                "return string-join(for $n in $t/* return name($n), \",\")"),
            "p,q,r");
}

TEST_F(ConstructorTest, EachEvaluationCreatesFreshNodes) {
  // Two evaluations of the same constructor are distinct nodes.
  EXPECT_EQ(Run("let $a := <e/> let $b := <e/> return $a is $b"), "false");
  EXPECT_EQ(Run("let $a := <e/> return $a is $a"), "true");
  // Constructors inside a loop make one node per iteration.
  EXPECT_EQ(Run("count(for $i in 1 to 3 return <e/>)"), "3");
}

TEST_F(ConstructorTest, DeepEqualOnConstructedTrees) {
  EXPECT_EQ(Run("deep-equal(<a x=\"1\"><b/></a>, <a x=\"1\"><b/></a>)"),
            "true");
  EXPECT_EQ(Run("deep-equal(<a x=\"1\"/>, <a x=\"2\"/>)"), "false");
}

TEST_F(ConstructorTest, DuplicateAttributeError) {
  EXPECT_EQ(RunError("<e a=\"1\" a=\"2\"/>"), ErrorCode::kXQDY0025);
}

TEST_F(ConstructorTest, NumbersFormatInContent) {
  EXPECT_EQ(Run("<e>{1.50}</e>"), "<e>1.5</e>");
  EXPECT_EQ(Run("<e>{1e3}</e>"), "<e>1000</e>");
  EXPECT_EQ(Run("<e>{true()}</e>"), "<e>true</e>");
}

TEST_F(ConstructorTest, TextEscapingOnSerialization) {
  // In XQuery string literals a bare '&' is illegal; use &amp;.
  EXPECT_EQ(Run("<e>{\"a < b &amp; c\"}</e>"), "<e>a &lt; b &amp; c</e>");
  EXPECT_EQ(Run("<e a=\"{'say &quot;hi&quot;'}\"/>"),
            "<e a=\"say &quot;hi&quot;\"/>");
}

}  // namespace
}  // namespace xqa

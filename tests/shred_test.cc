// Columnar shredding subsystem (docs/SHREDDING.md): schema inference over a
// corpus (type lattice, nullability, the named refusals), the typed column
// tables (row order, dictionary codes, null bitmaps, dense numeric vectors),
// and the per-snapshot catalog (caching, negative caching, gauges). Resource
// governance — cancellation, memory budget, fault sites — is exercised at the
// build entry points the executing query threads its context through.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "base/cancellation.h"
#include "base/fault_injection.h"
#include "base/memory_tracker.h"
#include "service/collection_store.h"
#include "shred/shred_catalog.h"
#include "shred/shred_schema.h"
#include "shred/shredded_table.h"
#include "workload/books.h"

namespace xqa {
namespace {

using service::CollectionSnapshot;
using service::CollectionStore;

std::vector<DocumentPtr> MakeDocs(const std::vector<std::string>& xmls) {
  std::vector<DocumentPtr> docs;
  docs.reserve(xmls.size());
  for (const std::string& xml : xmls) {
    docs.push_back(Engine::ParseDocument(xml));
  }
  return docs;
}

ShredInference Infer(const std::vector<std::string>& xmls,
                     std::string_view record) {
  std::vector<DocumentPtr> docs = MakeDocs(xmls);
  return InferShredSchema(docs, record, ShredOptions{}, ShredBuildContext{});
}

// ---------------------------------------------------------------------------
// Schema inference: per-value type detection and the join lattice.
// ---------------------------------------------------------------------------

TEST(ShredSchemaTest, DetectsAllFieldTypes) {
  ShredInference inference = Infer(
      {"<t><r><i>42</i><d>9.99</d><f>1.5e3</f><s>abc</s>"
       "<ts>2004-07-01T12:00:00</ts></r></t>"},
      "r");
  ASSERT_TRUE(inference.ok) << inference.refusal;
  ASSERT_EQ(inference.schema.fields.size(), 5u);
  EXPECT_EQ(inference.schema.record_name, "r");

  auto type_of = [&](const char* name) {
    int index = inference.schema.FieldIndex(name, false);
    EXPECT_GE(index, 0) << name;
    return inference.schema.fields[static_cast<size_t>(index)].type;
  };
  EXPECT_EQ(type_of("i"), ShredFieldType::kInteger);
  EXPECT_EQ(type_of("d"), ShredFieldType::kDecimal);
  EXPECT_EQ(type_of("f"), ShredFieldType::kDouble);
  EXPECT_EQ(type_of("s"), ShredFieldType::kString);
  EXPECT_EQ(type_of("ts"), ShredFieldType::kDateTime);
}

TEST(ShredSchemaTest, TypeLatticeJoinsAcrossRecords) {
  // integer ∨ decimal = decimal; integer ∨ double = double; numeric ∨ text =
  // string; dateTime joins only with itself, anything else is string.
  ShredInference inference = Infer(
      {"<t><r><a>1</a><b>1</b><c>1</c><d>2004-01-01T00:00:00</d></r>"
       "<r><a>2.5</a><b>1e2</b><c>oops</c><d>not-a-date</d></r></t>"},
      "r");
  ASSERT_TRUE(inference.ok) << inference.refusal;
  auto type_of = [&](const char* name) {
    return inference.schema
        .fields[static_cast<size_t>(inference.schema.FieldIndex(name, false))]
        .type;
  };
  EXPECT_EQ(type_of("a"), ShredFieldType::kDecimal);
  EXPECT_EQ(type_of("b"), ShredFieldType::kDouble);
  EXPECT_EQ(type_of("c"), ShredFieldType::kString);
  EXPECT_EQ(type_of("d"), ShredFieldType::kString);
}

TEST(ShredSchemaTest, MarksMissingFieldsNullable) {
  ShredInference inference = Infer(
      {"<t><r><always>1</always><sometimes>x</sometimes></r>"
       "<r><always>2</always></r></t>"},
      "r");
  ASSERT_TRUE(inference.ok) << inference.refusal;
  int always = inference.schema.FieldIndex("always", false);
  int sometimes = inference.schema.FieldIndex("sometimes", false);
  ASSERT_GE(always, 0);
  ASSERT_GE(sometimes, 0);
  EXPECT_FALSE(inference.schema.fields[static_cast<size_t>(always)].nullable);
  EXPECT_TRUE(
      inference.schema.fields[static_cast<size_t>(sometimes)].nullable);
}

TEST(ShredSchemaTest, InfersAttributeFields) {
  ShredInference inference =
      Infer({"<t><r id=\"7\"><v>1</v></r><r id=\"8\"><v>2</v></r></t>"}, "r");
  ASSERT_TRUE(inference.ok) << inference.refusal;
  EXPECT_GE(inference.schema.FieldIndex("id", true), 0);
  EXPECT_GE(inference.schema.FieldIndex("v", false), 0);
  // An attribute and an element field are distinct namespaces.
  EXPECT_EQ(inference.schema.FieldIndex("id", false), -1);
  EXPECT_EQ(inference.schema.FieldIndex("v", true), -1);
}

TEST(ShredSchemaTest, FieldOrderIsFirstAppearance) {
  ShredInference inference = Infer(
      {"<t><r><b>1</b><a>2</a></r><r><a>3</a><c>4</c></r></t>"}, "r");
  ASSERT_TRUE(inference.ok) << inference.refusal;
  ASSERT_EQ(inference.schema.fields.size(), 3u);
  EXPECT_EQ(inference.schema.fields[0].name, "b");
  EXPECT_EQ(inference.schema.fields[1].name, "a");
  EXPECT_EQ(inference.schema.fields[2].name, "c");
}

// ---------------------------------------------------------------------------
// Schema inference: the named refusals.
// ---------------------------------------------------------------------------

TEST(ShredSchemaTest, RefusesWhenNoRecordsExist) {
  ShredInference inference = Infer({"<t><other>1</other></t>"}, "r");
  EXPECT_FALSE(inference.ok);
  EXPECT_FALSE(inference.refusal.empty());
}

TEST(ShredSchemaTest, RefusesMixedContentRecords) {
  ShredInference inference =
      Infer({"<t><r>loose text<v>1</v></r></t>"}, "r");
  EXPECT_FALSE(inference.ok);
}

TEST(ShredSchemaTest, RefusesRepeatedScalarChild) {
  // Two <a> children in one record: a column can hold at most one value per
  // row, so the corpus is refused rather than silently dropping data.
  ShredInference inference =
      Infer({"<t><r><a>1</a><a>2</a></r></t>"}, "r");
  EXPECT_FALSE(inference.ok);
}

TEST(ShredSchemaTest, RefusesWhenNoScalarFieldsRemain) {
  // The only child is structured everywhere, so it is excluded and nothing
  // shreddable remains.
  ShredInference inference =
      Infer({"<t><r><nest><x>1</x></nest></r></t>"}, "r");
  EXPECT_FALSE(inference.ok);
}

TEST(ShredSchemaTest, RefusesBelowHomogeneityThreshold) {
  // Ten records with pairwise-disjoint field names: average coverage 1/10,
  // far below the default 0.6 threshold.
  std::string xml = "<t>";
  for (int i = 0; i < 10; ++i) {
    std::string name = "f" + std::to_string(i);
    xml += "<r><" + name + ">1</" + name + "></r>";
  }
  xml += "</t>";
  ShredInference inference = Infer({xml}, "r");
  EXPECT_FALSE(inference.ok);
  EXPECT_LT(inference.coverage, 0.6);
}

TEST(ShredSchemaTest, StructuredChildIsExcludedNotRefused) {
  // An orders-like shape: <lineitems> is structured, so it stays DOM-only,
  // but the scalar siblings still shred.
  ShredInference inference = Infer(
      {"<t><r><id>1</id><lineitems><li>x</li></lineitems></r>"
       "<r><id>2</id><lineitems><li>y</li></lineitems></r></t>"},
      "r");
  ASSERT_TRUE(inference.ok) << inference.refusal;
  EXPECT_GE(inference.schema.FieldIndex("id", false), 0);
  EXPECT_EQ(inference.schema.FieldIndex("lineitems", false), -1);
}

TEST(ShredSchemaTest, DefaultBooksCorpusRefusesOnRepeatedAuthors) {
  // The paper's bibliography generator allows up to three <author> children
  // per book — the canonical unshreddable corpus.
  workload::BooksConfig config;
  config.num_books = 50;
  std::vector<DocumentPtr> docs = {workload::GenerateBooksDocument(config)};
  ShredInference inference =
      InferShredSchema(docs, "book", ShredOptions{}, ShredBuildContext{});
  EXPECT_FALSE(inference.ok);
}

TEST(ShredSchemaTest, SingleAuthorBooksCorpusConforms) {
  workload::BooksConfig config;
  config.num_books = 50;
  config.max_authors = 1;
  std::vector<DocumentPtr> docs = {workload::GenerateBooksDocument(config)};
  ShredInference inference =
      InferShredSchema(docs, "book", ShredOptions{}, ShredBuildContext{});
  ASSERT_TRUE(inference.ok) << inference.refusal;
  EXPECT_GE(inference.schema.FieldIndex("publisher", false), 0);
  EXPECT_GE(inference.schema.FieldIndex("year", false), 0);
  EXPECT_GE(inference.schema.FieldIndex("price", false), 0);
  EXPECT_EQ(inference.record_count, 50u);
}

// ---------------------------------------------------------------------------
// Column tables: row order, dictionaries, nulls, typed vectors.
// ---------------------------------------------------------------------------

std::shared_ptr<const ShreddedTable> BuildTable(
    const std::vector<DocumentPtr>& docs, std::string_view record) {
  ShredInference inference =
      InferShredSchema(docs, record, ShredOptions{}, ShredBuildContext{});
  EXPECT_TRUE(inference.ok) << inference.refusal;
  return BuildShreddedTable(docs, inference.schema, ShredBuildContext{});
}

TEST(ShreddedTableTest, RowsAreDocumentOrderThenPreorder) {
  std::vector<DocumentPtr> docs = MakeDocs(
      {"<t><r><v>a</v></r><r><v>b</v></r></t>", "<t><r><v>c</v></r></t>"});
  // Hand the builder the documents in reverse: rows must still come out
  // documents-ascending-by-id, preorder within each — the //r order.
  std::vector<DocumentPtr> reversed = {docs[1], docs[0]};
  auto table = BuildTable(reversed, "r");
  ASSERT_EQ(table->row_count(), 3u);
  const ShreddedTable::Column& v =
      table->column(static_cast<size_t>(table->schema().FieldIndex("v", false)));
  EXPECT_EQ(v.dict[v.codes[0]], "a");
  EXPECT_EQ(v.dict[v.codes[1]], "b");
  EXPECT_EQ(v.dict[v.codes[2]], "c");
}

TEST(ShreddedTableTest, DictionaryKeepsLexicalFormsDistinct) {
  // "07" and "7" compare equal numerically but are different nodes under
  // deep-equal, so they must hold different codes.
  auto table = BuildTable(
      MakeDocs({"<t><r><v>07</v></r><r><v>7</v></r><r><v>07</v></r></t>"}),
      "r");
  const ShreddedTable::Column& v = table->column(0);
  EXPECT_NE(v.codes[0], v.codes[1]);
  EXPECT_EQ(v.codes[0], v.codes[2]);
  ASSERT_EQ(v.dict.size(), 2u);
  EXPECT_EQ(v.dict[0], "07");  // first-seen order
  EXPECT_EQ(v.dict[1], "7");
}

TEST(ShreddedTableTest, NegativeZeroAndTrailingZeroStayDistinct) {
  auto table = BuildTable(
      MakeDocs({"<t><r><v>-0</v></r><r><v>0</v></r></t>",
                "<t><r><w>1.0</w><v>0</v></r><r><w>1</w><v>0</v></r></t>"}),
      "r");
  const ShreddedTable::Column& v =
      table->column(static_cast<size_t>(table->schema().FieldIndex("v", false)));
  EXPECT_NE(v.codes[0], v.codes[1]);  // -0 vs 0
  const ShreddedTable::Column& w =
      table->column(static_cast<size_t>(table->schema().FieldIndex("w", false)));
  EXPECT_NE(w.codes[2], w.codes[3]);  // 1.0 vs 1
}

TEST(ShreddedTableTest, NullBitmapAndNullCodes) {
  auto table = BuildTable(
      MakeDocs({"<t><r><a>1</a><b>x</b></r><r><a>2</a></r>"
                "<r><a>3</a><b>y</b></r></t>"}),
      "r");
  const ShreddedTable::Column& b =
      table->column(static_cast<size_t>(table->schema().FieldIndex("b", false)));
  EXPECT_TRUE(b.IsPresent(0));
  EXPECT_FALSE(b.IsPresent(1));
  EXPECT_TRUE(b.IsPresent(2));
  EXPECT_EQ(b.codes[1], ShreddedTable::kNullCode);
  EXPECT_EQ(b.nodes[1], nullptr);
  EXPECT_EQ(b.null_count, 1);
}

TEST(ShreddedTableTest, DenseNumericVectors) {
  auto table = BuildTable(
      MakeDocs({"<t><r><i>10</i><d>2.50</d></r><r><i>-3</i><d>0.25</d></r></t>"}),
      "r");
  const ShreddedTable::Column& i =
      table->column(static_cast<size_t>(table->schema().FieldIndex("i", false)));
  ASSERT_EQ(i.field.type, ShredFieldType::kInteger);
  ASSERT_EQ(i.ints.size(), 2u);
  EXPECT_EQ(i.ints[0], 10);
  EXPECT_EQ(i.ints[1], -3);
  const ShreddedTable::Column& d =
      table->column(static_cast<size_t>(table->schema().FieldIndex("d", false)));
  ASSERT_EQ(d.field.type, ShredFieldType::kDecimal);
  ASSERT_EQ(d.doubles.size(), 2u);
  EXPECT_DOUBLE_EQ(d.doubles[0], 2.50);
  EXPECT_DOUBLE_EQ(d.doubles[1], 0.25);
}

TEST(ShreddedTableTest, RowOfMapsRecordsAndRejectsOutsiders) {
  std::vector<DocumentPtr> docs =
      MakeDocs({"<t><r><v>a</v></r><r><v>b</v></r></t>"});
  auto table = BuildTable(docs, "r");
  for (size_t row = 0; row < table->row_count(); ++row) {
    EXPECT_EQ(table->RowOf(table->record(row)), static_cast<int>(row));
  }
  EXPECT_EQ(table->RowOf(docs[0]->root()), -1);  // <t> is not a record
  EXPECT_EQ(table->RowOf(nullptr), -1);
}

TEST(ShreddedTableTest, ReportsBytesAndPinsDocuments) {
  auto table = BuildTable(MakeDocs({"<t><r><v>abc</v></r></t>"}), "r");
  EXPECT_GT(table->bytes(), 0);
  ASSERT_EQ(table->row_count(), 1u);
  EXPECT_NE(table->record_document(0), nullptr);
}

// ---------------------------------------------------------------------------
// Catalog: per-snapshot caching, negative caching, gauges.
// ---------------------------------------------------------------------------

class ShredCatalogTest : public ::testing::Test {
 protected:
  void Load(const std::string& collection, const std::string& body,
            int copies) {
    std::vector<CollectionStore::BulkDocument> batch;
    for (int i = 0; i < copies; ++i) {
      batch.push_back({collection + "-" + std::to_string(i) + ".xml", body});
    }
    store_.BulkLoad(collection, batch, /*num_threads=*/1);
  }

  CollectionStore store_{CollectionStore::Options{4}};
};

TEST_F(ShredCatalogTest, CachesTablePerSnapshotAndReusesPointer) {
  Load("c", "<t><r><v>1</v></r></t>", 8);
  auto snapshot = store_.Snapshot();
  const ShreddedTable* first =
      snapshot->FindShreddedTable("c", "r", ShredBuildContext{});
  ASSERT_NE(first, nullptr);
  const ShreddedTable* second =
      snapshot->FindShreddedTable("c", "r", ShredBuildContext{});
  EXPECT_EQ(first, second);
  EXPECT_EQ(first->row_count(), 8u);

  ShredCatalog::Stats stats = snapshot->shred_stats();
  EXPECT_EQ(stats.tables, 1);
  EXPECT_EQ(stats.rows, 8);
  EXPECT_GT(stats.bytes, 0);
  EXPECT_EQ(stats.refusals, 0);
}

TEST_F(ShredCatalogTest, CachesRefusalsNegatively) {
  Load("c", "<t><r><a>1</a><a>2</a></r></t>", 4);  // repeated child: refusal
  auto snapshot = store_.Snapshot();
  EXPECT_EQ(snapshot->FindShreddedTable("c", "r", ShredBuildContext{}),
            nullptr);
  EXPECT_EQ(snapshot->FindShreddedTable("c", "r", ShredBuildContext{}),
            nullptr);
  ShredCatalog::Stats stats = snapshot->shred_stats();
  EXPECT_EQ(stats.tables, 0);
  EXPECT_EQ(stats.refusals, 1);  // inference ran once, not twice
}

TEST_F(ShredCatalogTest, UnknownCollectionAndRecordReturnNull) {
  Load("c", "<t><r><v>1</v></r></t>", 2);
  auto snapshot = store_.Snapshot();
  EXPECT_EQ(snapshot->FindShreddedTable("missing", "r", ShredBuildContext{}),
            nullptr);
  EXPECT_EQ(snapshot->FindShreddedTable("c", "absent", ShredBuildContext{}),
            nullptr);
}

TEST_F(ShredCatalogTest, DistinctRecordNamesGetDistinctTables) {
  Load("c", "<t><r><v>1</v></r><s><w>2</w></s></t>", 3);
  auto snapshot = store_.Snapshot();
  const ShreddedTable* r =
      snapshot->FindShreddedTable("c", "r", ShredBuildContext{});
  const ShreddedTable* s =
      snapshot->FindShreddedTable("c", "s", ShredBuildContext{});
  ASSERT_NE(r, nullptr);
  ASSERT_NE(s, nullptr);
  EXPECT_NE(r, s);
  EXPECT_EQ(snapshot->shred_stats().tables, 2);
}

TEST_F(ShredCatalogTest, StatsJsonCarriesTheGauges) {
  Load("c", "<t><r><v>1</v><w>2.5</w></r></t>", 5);
  auto snapshot = store_.Snapshot();
  ASSERT_NE(snapshot->FindShreddedTable("c", "r", ShredBuildContext{}),
            nullptr);
  std::string json = snapshot->ShredStatsJson();
  EXPECT_NE(json.find("\"tables\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rows\":5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"refusals\":0"), std::string::npos) << json;
  EXPECT_NE(json.find("per_table"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Resource governance at the build entry points.
// ---------------------------------------------------------------------------

// A corpus big enough that the record loops cross their 256-record
// cancellation poll stride several times.
std::vector<DocumentPtr> MakeLargeCorpus() {
  std::vector<std::string> xmls;
  for (int d = 0; d < 3; ++d) {
    std::string xml = "<t>";
    for (int i = 0; i < 400; ++i) {
      xml += "<r><v>v" + std::to_string(d * 400 + i) + "</v></r>";
    }
    xml += "</t>";
    xmls.push_back(xml);
  }
  return MakeDocs(xmls);
}

TEST(ShredGovernanceTest, PreCancelledTokenAbortsInference) {
  std::vector<DocumentPtr> docs = MakeLargeCorpus();
  CancellationToken token;
  token.Cancel();
  ShredBuildContext context;
  context.cancellation = &token;
  try {
    InferShredSchema(docs, "r", ShredOptions{}, context);
    FAIL() << "expected XQSV0002";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0002);
  }
}

TEST(ShredGovernanceTest, PreCancelledTokenAbortsTableBuild) {
  std::vector<DocumentPtr> docs = MakeLargeCorpus();
  ShredInference inference =
      InferShredSchema(docs, "r", ShredOptions{}, ShredBuildContext{});
  ASSERT_TRUE(inference.ok);
  CancellationToken token;
  token.Cancel();
  ShredBuildContext context;
  context.cancellation = &token;
  try {
    BuildShreddedTable(docs, inference.schema, context);
    FAIL() << "expected XQSV0002";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0002);
  }
}

TEST(ShredGovernanceTest, TinyBudgetFailsBuildAndLeavesTrackerBalanced) {
  std::vector<std::string> xmls;
  for (int i = 0; i < 4; ++i) {
    std::string xml = "<t>";
    for (int j = 0; j < 64; ++j) {
      xml += "<r><v>value-" + std::to_string(i * 64 + j) + "</v></r>";
    }
    xml += "</t>";
    xmls.push_back(xml);
  }
  std::vector<DocumentPtr> docs = MakeDocs(xmls);
  ShredInference inference =
      InferShredSchema(docs, "r", ShredOptions{}, ShredBuildContext{});
  ASSERT_TRUE(inference.ok);

  MemoryTracker tracker("shred-test", /*limit_bytes=*/256);
  ShredBuildContext context;
  context.memory = &tracker;
  try {
    BuildShreddedTable(docs, inference.schema, context);
    FAIL() << "expected XQSV0004";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0004);
  }
  EXPECT_EQ(tracker.used(), 0);
}

TEST(ShredGovernanceTest, ColumnBuildFaultPropagatesAndIsNotCached) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "fault points compiled out; configure -DXQA_FAULTS=ON";
  }
  CollectionStore store{CollectionStore::Options{4}};
  std::vector<CollectionStore::BulkDocument> batch;
  for (int i = 0; i < 6; ++i) {
    batch.push_back({"d" + std::to_string(i) + ".xml",
                     "<t><r><v>" + std::to_string(i) + "</v></r></t>"});
  }
  store.BulkLoad("c", batch, /*num_threads=*/1);
  auto snapshot = store.Snapshot();

  fault::Reset();
  fault::ArmSite("shred.column_build", 2);
  try {
    snapshot->FindShreddedTable("c", "r", ShredBuildContext{});
    FAIL() << "armed shred.column_build never tripped";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0004);
  }
  fault::Reset();

  // The abort is transient — unlike a refusal it must not be cached, so the
  // retry builds the table.
  const ShreddedTable* table =
      snapshot->FindShreddedTable("c", "r", ShredBuildContext{});
  ASSERT_NE(table, nullptr);
  EXPECT_EQ(table->row_count(), 6u);
}

}  // namespace
}  // namespace xqa

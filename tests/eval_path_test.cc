// Path-expression evaluation: axes, node tests, predicates, document order.

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

constexpr char kDoc[] = R"(
<library>
  <shelf id="s1">
    <book lang="en"><title>Alpha</title><pages>100</pages></book>
    <book lang="de"><title>Beta</title><pages>200</pages></book>
  </shelf>
  <shelf id="s2">
    <book lang="en"><title>Gamma</title><pages>300</pages></book>
    <magazine><title>Weekly</title></magazine>
  </shelf>
  <!-- catalogue comment -->
</library>
)";

class EvalPathTest : public ::testing::Test {
 protected:
  void SetUp() override { doc_ = Engine::ParseDocument(kDoc); }

  std::string Run(const std::string& query) {
    return engine_.Compile(query).ExecuteToString(doc_);
  }

  ErrorCode RunError(const std::string& query) {
    try {
      engine_.Compile(query).Execute(doc_);
    } catch (const XQueryError& error) {
      return error.code();
    }
    return ErrorCode::kOk;
  }

  Engine engine_;
  DocumentPtr doc_;
};

TEST_F(EvalPathTest, ChildAxis) {
  EXPECT_EQ(Run("count(/library/shelf)"), "2");
  EXPECT_EQ(Run("count(/library/shelf/book)"), "3");
  EXPECT_EQ(Run("count(/library/book)"), "0");
}

TEST_F(EvalPathTest, DescendantShortcut) {
  EXPECT_EQ(Run("count(//book)"), "3");
  EXPECT_EQ(Run("count(//title)"), "4");
  EXPECT_EQ(Run("count(//shelf//title)"), "4");
}

TEST_F(EvalPathTest, Wildcards) {
  EXPECT_EQ(Run("count(/library/*)"), "2");
  EXPECT_EQ(Run("count(//shelf/*)"), "4");
}

TEST_F(EvalPathTest, AttributeAxis) {
  EXPECT_EQ(Run("string(/library/shelf[1]/@id)"), "s1");
  EXPECT_EQ(Run("count(//@lang)"), "3");
  EXPECT_EQ(Run("count(//book[@lang = \"en\"])"), "2");
  EXPECT_EQ(Run("count(//book/attribute::*)"), "3");
}

TEST_F(EvalPathTest, ParentAndAncestor) {
  EXPECT_EQ(Run("string((//title)[1]/../pages)"), "100");
  EXPECT_EQ(Run("count((//pages)[1]/ancestor::*)"), "3");
  EXPECT_EQ(Run("string((//pages)[1]/ancestor::shelf/@id)"), "s1");
  EXPECT_EQ(Run("count((//pages)[1]/ancestor-or-self::*)"), "4");
}

TEST_F(EvalPathTest, SelfAxis) {
  EXPECT_EQ(Run("count(//book/self::book)"), "3");
  EXPECT_EQ(Run("count(//book/self::magazine)"), "0");
  EXPECT_EQ(Run("count(//book/.)"), "3");
}

TEST_F(EvalPathTest, SiblingAxes) {
  EXPECT_EQ(Run("string(//magazine/preceding-sibling::book/title)"), "Gamma");
  EXPECT_EQ(Run("count((//book)[1]/following-sibling::*)"), "1");
  EXPECT_EQ(Run("count((//book)[1]/preceding-sibling::*)"), "0");
}

TEST_F(EvalPathTest, NodeKindTests) {
  EXPECT_EQ(Run("count(//text())"), "7");  // 4 titles + 3 pages
  EXPECT_EQ(Run("count(/library/comment())"), "1");
  EXPECT_EQ(Run("count(//node())"), "22");  // 14 elements + 7 text + 1 comment
  EXPECT_EQ(Run("count(//element(book))"), "3");
}

TEST_F(EvalPathTest, PositionalPredicates) {
  EXPECT_EQ(Run("string((//book)[1]/title)"), "Alpha");
  EXPECT_EQ(Run("string((//book)[3]/title)"), "Gamma");
  // In a step predicate, [1] applies per context node: the first book of
  // EACH shelf — so //book[1] has two matches and //book[2] only one.
  EXPECT_EQ(Run("count(//book[1])"), "2");
  EXPECT_EQ(Run("count(//book[2])"), "1");
  EXPECT_EQ(Run("count(//shelf/book[1])"), "2");
  EXPECT_EQ(Run("string(//shelf[2]/book[1]/title)"), "Gamma");
  EXPECT_EQ(Run("string((//book)[last()]/title)"), "Gamma");
  // Per-shelf last(): the last book of each shelf.
  EXPECT_EQ(Run("string-join(for $t in //shelf/book[last()]/title "
                "return string($t), \",\")"),
            "Beta,Gamma");
}

TEST_F(EvalPathTest, ValuePredicates) {
  EXPECT_EQ(Run("string(//book[pages = 200]/title)"), "Beta");
  EXPECT_EQ(Run("count(//book[pages > 150])"), "2");
  EXPECT_EQ(Run("count(//book[title])"), "3");
  EXPECT_EQ(Run("count(//book[subtitle])"), "0");
  EXPECT_EQ(Run("string(//book[title = \"Beta\" and @lang = \"de\"]/pages)"),
            "200");
}

TEST_F(EvalPathTest, ChainedPredicates) {
  // Per-shelf filtering: each shelf contributes at most one pages>100 book,
  // so the positional [2] never matches within a shelf...
  EXPECT_EQ(Run("count(//book[pages > 100][2])"), "0");
  // ...but over the whole filtered sequence it selects Gamma.
  EXPECT_EQ(Run("string((//book[pages > 100])[2]/title)"), "Gamma");
}

TEST_F(EvalPathTest, ResultsInDocumentOrderWithoutDuplicates) {
  // Both steps can reach the same titles; dedup keeps three.
  EXPECT_EQ(Run("count((//shelf | //shelf)/book)"), "3");
  EXPECT_EQ(Run("string-join(for $t in //title return string($t), \",\")"),
            "Alpha,Beta,Gamma,Weekly");
  // Parent step from multiple children yields each shelf once.
  EXPECT_EQ(Run("count(//book/..)"), "2");
}

TEST_F(EvalPathTest, FilterSegments) {
  EXPECT_EQ(Run("string-join(for $p in //book/(pages div 100) "
                "return string($p), \",\")"),
            "1,2,3");
  EXPECT_EQ(Run("count(//book/string(title))"), "3");
}

TEST_F(EvalPathTest, AbsoluteFromRoot) {
  EXPECT_EQ(Run("count(/)"), "1");
  EXPECT_EQ(Run("string(/library/shelf[2]/@id)"), "s2");
}

TEST_F(EvalPathTest, RelativePathUsesFocus) {
  EXPECT_EQ(Run("string-join(for $b in //book return string($b/title), \"|\")"),
            "Alpha|Beta|Gamma");
}

TEST_F(EvalPathTest, Errors) {
  EXPECT_EQ(RunError("(1, 2)/x"), ErrorCode::kXPTY0004);
  // Mixing nodes and atomics in one step result.
  EXPECT_EQ(RunError("//book/(title, 1)"), ErrorCode::kXPTY0004);
  // Atomics from a non-final step.
  EXPECT_EQ(RunError("//book/string(title)/x"), ErrorCode::kXPTY0004);
}

TEST_F(EvalPathTest, AttributesHaveStringValues) {
  EXPECT_EQ(Run("string-join(for $a in //book/@lang return string($a), \",\")"),
            "en,de,en");
}

TEST_F(EvalPathTest, RootFunctionAndAbsolutePathsFromNodes) {
  EXPECT_EQ(Run("count(root((//title)[1])//book)"), "3");
  // Absolute path inside a predicate still sees the whole document.
  EXPECT_EQ(Run("count(//book[count(/library/shelf) = 2])"), "3");
}

}  // namespace
}  // namespace xqa

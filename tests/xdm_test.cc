// AtomicValue, Item, and sequence-operation tests.

#include <gtest/gtest.h>

#include <cmath>

#include "base/error.h"
#include "xdm/sequence_ops.h"
#include "xml/xml_parser.h"

namespace xqa {
namespace {

TEST(AtomicValue, LexicalForms) {
  EXPECT_EQ(AtomicValue::Integer(42).ToLexical(), "42");
  EXPECT_EQ(AtomicValue::Boolean(true).ToLexical(), "true");
  EXPECT_EQ(AtomicValue::Boolean(false).ToLexical(), "false");
  EXPECT_EQ(AtomicValue::Double(1.5).ToLexical(), "1.5");
  EXPECT_EQ(AtomicValue::String("hi").ToLexical(), "hi");
  Decimal d;
  ASSERT_TRUE(Decimal::Parse("12.50", &d));
  EXPECT_EQ(AtomicValue::MakeDecimal(d).ToLexical(), "12.5");
}

TEST(AtomicValue, ToDoubleValuePromotion) {
  EXPECT_EQ(AtomicValue::Integer(3).ToDoubleValue(), 3.0);
  EXPECT_EQ(AtomicValue::Untyped("2.5").ToDoubleValue(), 2.5);
  EXPECT_THROW(AtomicValue::Untyped("abc").ToDoubleValue(), XQueryError);
  EXPECT_THROW(AtomicValue::String("3").ToDoubleValue(), XQueryError);
}

TEST(AtomicValue, CastToInteger) {
  EXPECT_EQ(AtomicValue::String("123").CastTo(AtomicType::kInteger).AsInteger(), 123);
  EXPECT_EQ(AtomicValue::Double(4.9).CastTo(AtomicType::kInteger).AsInteger(), 4);
  EXPECT_EQ(AtomicValue::Boolean(true).CastTo(AtomicType::kInteger).AsInteger(), 1);
  Decimal d;
  ASSERT_TRUE(Decimal::Parse("-7.8", &d));
  EXPECT_EQ(AtomicValue::MakeDecimal(d).CastTo(AtomicType::kInteger).AsInteger(), -7);
  EXPECT_THROW(AtomicValue::String("x").CastTo(AtomicType::kInteger), XQueryError);
  EXPECT_THROW(AtomicValue::Double(NAN).CastTo(AtomicType::kInteger), XQueryError);
}

TEST(AtomicValue, CastToBoolean) {
  EXPECT_TRUE(AtomicValue::String("true").CastTo(AtomicType::kBoolean).AsBoolean());
  EXPECT_TRUE(AtomicValue::String("1").CastTo(AtomicType::kBoolean).AsBoolean());
  EXPECT_FALSE(AtomicValue::String("false").CastTo(AtomicType::kBoolean).AsBoolean());
  EXPECT_FALSE(AtomicValue::Integer(0).CastTo(AtomicType::kBoolean).AsBoolean());
  EXPECT_FALSE(AtomicValue::Double(NAN).CastTo(AtomicType::kBoolean).AsBoolean());
  EXPECT_THROW(AtomicValue::String("yes").CastTo(AtomicType::kBoolean), XQueryError);
}

TEST(AtomicValue, CastToDateTimeFamily) {
  AtomicValue dt = AtomicValue::Untyped("2004-01-31T11:32:07")
                       .CastTo(AtomicType::kDateTime);
  EXPECT_EQ(dt.AsDateTime().year(), 2004);
  AtomicValue date = dt.CastTo(AtomicType::kDate);
  EXPECT_EQ(date.ToLexical(), "2004-01-31");
  EXPECT_THROW(AtomicValue::String("nope").CastTo(AtomicType::kDate), XQueryError);
}

TEST(AtomicValue, HashNumericCrossType) {
  Decimal d;
  ASSERT_TRUE(Decimal::Parse("5", &d));
  EXPECT_EQ(AtomicValue::Integer(5).Hash(), AtomicValue::Double(5.0).Hash());
  EXPECT_EQ(AtomicValue::Integer(5).Hash(), AtomicValue::MakeDecimal(d).Hash());
  EXPECT_EQ(AtomicValue::Untyped("x").Hash(), AtomicValue::String("x").Hash());
}

TEST(Item, StringValue) {
  EXPECT_EQ(MakeInteger(7).StringValue(), "7");
  DocumentPtr doc = ParseXml("<a>hi <b>there</b></a>");
  Item node(doc->root()->children()[0], doc);
  EXPECT_EQ(node.StringValue(), "hi there");
}

TEST(Atomize, NodesBecomeUntyped) {
  DocumentPtr doc = ParseXml("<a>42</a>");
  Sequence seq = {Item(doc->root()->children()[0], doc), MakeInteger(7)};
  Sequence atomized = Atomize(seq);
  ASSERT_EQ(atomized.size(), 2u);
  EXPECT_EQ(atomized[0].atomic().type(), AtomicType::kUntypedAtomic);
  EXPECT_EQ(atomized[0].atomic().AsString(), "42");
  EXPECT_EQ(atomized[1].atomic().type(), AtomicType::kInteger);
}

TEST(EffectiveBooleanValue, Rules) {
  EXPECT_FALSE(EffectiveBooleanValue({}));
  EXPECT_TRUE(EffectiveBooleanValue({MakeBoolean(true)}));
  EXPECT_FALSE(EffectiveBooleanValue({MakeBoolean(false)}));
  EXPECT_FALSE(EffectiveBooleanValue({MakeString("")}));
  EXPECT_TRUE(EffectiveBooleanValue({MakeString("x")}));
  EXPECT_FALSE(EffectiveBooleanValue({MakeInteger(0)}));
  EXPECT_TRUE(EffectiveBooleanValue({MakeInteger(-1)}));
  EXPECT_FALSE(EffectiveBooleanValue({MakeDouble(NAN)}));
  EXPECT_TRUE(EffectiveBooleanValue({MakeUntyped("anything")}));

  DocumentPtr doc = ParseXml("<a/>");
  Item node(doc->root()->children()[0], doc);
  // A sequence starting with a node is true regardless of length.
  EXPECT_TRUE(EffectiveBooleanValue({node}));
  EXPECT_TRUE(EffectiveBooleanValue({node, MakeInteger(0)}));
  // Multi-item atomic sequences are an error.
  EXPECT_THROW(EffectiveBooleanValue({MakeInteger(1), MakeInteger(2)}),
               XQueryError);
}

TEST(StringValueOf, Cardinality) {
  EXPECT_EQ(StringValueOf({}), "");
  EXPECT_EQ(StringValueOf({MakeInteger(7)}), "7");
  EXPECT_THROW(StringValueOf({MakeInteger(1), MakeInteger(2)}), XQueryError);
}

TEST(SortDocumentOrderAndDedup, SortsAndDedups) {
  DocumentPtr doc = ParseXml("<a><b/><c/><d/></a>");
  const Node* a = doc->root()->children()[0];
  Item b(a->children()[0], doc);
  Item c(a->children()[1], doc);
  Item d(a->children()[2], doc);
  Sequence seq = {d, b, c, b, d};
  SortDocumentOrderAndDedup(&seq);
  ASSERT_EQ(seq.size(), 3u);
  EXPECT_EQ(seq[0].node(), b.node());
  EXPECT_EQ(seq[1].node(), c.node());
  EXPECT_EQ(seq[2].node(), d.node());
}

TEST(SortDocumentOrderAndDedup, RejectsAtomics) {
  Sequence seq = {MakeInteger(1)};
  EXPECT_THROW(SortDocumentOrderAndDedup(&seq), XQueryError);
}

TEST(ErrorCodes, NamesAndFormatting) {
  EXPECT_EQ(ErrorCodeName(ErrorCode::kXPST0008), "XPST0008");
  EXPECT_EQ(ErrorCodeName(ErrorCode::kXQAG0001), "XQAG0001");
  XQueryError error(ErrorCode::kXPST0008, "undefined variable $x", {3, 14});
  EXPECT_EQ(error.FormattedMessage(), "[XPST0008] line 3:14: undefined variable $x");
  Status status = Status::FromException(error);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), ErrorCode::kXPST0008);
}

}  // namespace
}  // namespace xqa

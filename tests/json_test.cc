// JSON ↔ XDM interop (docs/SHREDDING.md): xqa:parse-json's canonical element
// mapping (objects, arrays, scalars with original lexemes, nulls, escapes,
// FOJS0001 diagnostics), xqa:xml-to-json / SerializeSequenceJson emission,
// round-trips, and the integration the mapping exists for — a JSON feed
// loaded as a collection and scanned through the shredded column table.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "service/collection_store.h"
#include "xdm/json.h"

namespace xqa {
namespace {

using service::CollectionStore;

class JsonTest : public ::testing::Test {
 protected:
  std::string Run(const std::string& query) {
    DocumentPtr doc = Engine::ParseDocument("<root/>");
    return engine_.Compile(query).ExecuteToString(doc);
  }

  Engine engine_;
};

// ---------------------------------------------------------------------------
// xqa:parse-json — the element mapping.
// ---------------------------------------------------------------------------

TEST_F(JsonTest, ParseJsonObjectBecomesChildElements) {
  EXPECT_EQ(Run(R"(xqa:parse-json('{"a": 1, "b": "x"}'))"),
            "<json><a>1</a><b>x</b></json>");
}

TEST_F(JsonTest, ParseJsonArrayUnderKeyBecomesRepeatedChildren) {
  EXPECT_EQ(Run(R"(xqa:parse-json('{"a": [1, 2, 3]}'))"),
            "<json><a>1</a><a>2</a><a>3</a></json>");
}

TEST_F(JsonTest, ParseJsonTopLevelArrayBecomesItems) {
  EXPECT_EQ(Run(R"(xqa:parse-json('[1, "two"]'))"),
            "<json><item>1</item><item>two</item></json>");
}

TEST_F(JsonTest, ParseJsonNestedObjects) {
  EXPECT_EQ(Run(R"(xqa:parse-json('{"o": {"i": 5}}'))"),
            "<json><o><i>5</i></o></json>");
}

TEST_F(JsonTest, ParseJsonPreservesNumberLexemes) {
  // 1.10 must not reformat to 1.1 — the shredder's type detection and the
  // byte-identity discipline both see the feed's original spelling.
  EXPECT_EQ(Run(R"(xqa:parse-json('{"p": 1.10, "e": 1.5e3, "z": -0}'))"),
            "<json><p>1.10</p><e>1.5e3</e><z>-0</z></json>");
}

TEST_F(JsonTest, ParseJsonNullBecomesEmptyElement) {
  EXPECT_EQ(Run(R"(xqa:parse-json('{"a": null, "b": 1}'))"),
            "<json><a/><b>1</b></json>");
}

TEST_F(JsonTest, ParseJsonBooleansBecomeText) {
  EXPECT_EQ(Run(R"(xqa:parse-json('{"t": true, "f": false}'))"),
            "<json><t>true</t><f>false</f></json>");
}

TEST_F(JsonTest, ParseJsonSanitizesMemberKeys) {
  EXPECT_EQ(Run(R"(xqa:parse-json('{"a b": 1, "2024": 2, "": 3}'))"),
            "<json><a_b>1</a_b><_2024>2</_2024><_>3</_></json>");
}

TEST_F(JsonTest, ParseJsonDecodesEscapes) {
  DocumentPtr doc = ParseJsonDocument(R"({"s": "a\nb\t\"q\"\\"})");
  const Node* json = doc->root()->children()[0];
  ASSERT_EQ(json->children().size(), 1u);
  EXPECT_EQ(json->children()[0]->StringValue(), "a\nb\t\"q\"\\");
}

TEST_F(JsonTest, ParseJsonDecodesUnicodeEscapesAndSurrogatePairs) {
  DocumentPtr doc = ParseJsonDocument(R"({"s": "\u0041\uD83D\uDE00"})");
  const Node* json = doc->root()->children()[0];
  EXPECT_EQ(json->children()[0]->StringValue(), "A\xF0\x9F\x98\x80");
}

// ---------------------------------------------------------------------------
// xqa:parse-json — FOJS0001 diagnostics.
// ---------------------------------------------------------------------------

void ExpectParseFails(const std::string& json) {
  try {
    ParseJsonDocument(json);
    FAIL() << "expected FOJS0001 for: " << json;
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kFOJS0001) << json;
    EXPECT_NE(std::string(error.what()).find("offset"), std::string::npos);
  }
}

TEST_F(JsonTest, ParseJsonRejectsMalformedInput) {
  ExpectParseFails("{");
  ExpectParseFails("[1, ]");
  ExpectParseFails("{\"a\" 1}");
  ExpectParseFails("1 x");  // trailing garbage
  ExpectParseFails("01");   // leading zero
  ExpectParseFails("nul");
  ExpectParseFails("\"a");  // unterminated string
  ExpectParseFails("\"\\q\"");
  ExpectParseFails("\"\x01\"");  // unescaped control character
}

TEST_F(JsonTest, ParseJsonRejectsUnpairedSurrogates) {
  ExpectParseFails(R"("\uD800")");
  ExpectParseFails(R"("\uD800\u0041")");
  ExpectParseFails(R"("\uDC00")");
}

TEST_F(JsonTest, ParseJsonRejectsRunawayNesting) {
  std::string deep(600, '[');
  deep += "1";
  deep.append(600, ']');
  ExpectParseFails(deep);
}

TEST_F(JsonTest, ParseJsonErrorSurfacesThroughTheFunction) {
  try {
    Run(R"(xqa:parse-json('{"a":'))");
    FAIL() << "expected FOJS0001";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kFOJS0001);
  }
}

// ---------------------------------------------------------------------------
// xqa:xml-to-json / SerializeSequenceJson — emission.
// ---------------------------------------------------------------------------

TEST_F(JsonTest, XmlToJsonGroupsRepeatedChildrenIntoArrays) {
  EXPECT_EQ(Run("xqa:xml-to-json(<a><b>1</b><b>2</b><c>x</c></a>)"),
            R"({"b":[1,2],"c":"x"})");
}

TEST_F(JsonTest, XmlToJsonMapsAttributesToAtMembers) {
  EXPECT_EQ(Run(R"(xqa:xml-to-json(<a id="7"><b>x</b></a>))"),
            R"({"@id":7,"b":"x"})");
}

TEST_F(JsonTest, XmlToJsonScalarShapes) {
  EXPECT_EQ(Run("xqa:xml-to-json(<a>42</a>)"), "42");
  EXPECT_EQ(Run("xqa:xml-to-json(<a>1.5e3</a>)"), "1.5e3");
  EXPECT_EQ(Run("xqa:xml-to-json(<a>true</a>)"), "true");
  EXPECT_EQ(Run("xqa:xml-to-json(<a/>)"), "null");
  // A leading zero is not a JSON number lexeme; it stays a string.
  EXPECT_EQ(Run("xqa:xml-to-json(<a>01</a>)"), R"("01")");
}

TEST_F(JsonTest, XmlToJsonAtomicsAndSequences) {
  EXPECT_EQ(Run("xqa:xml-to-json(\"hi\")"), R"("hi")");
  EXPECT_EQ(Run("xqa:xml-to-json(1.5)"), "1.5");
  EXPECT_EQ(Run("xqa:xml-to-json(())"), "null");
  EXPECT_EQ(Run("xqa:xml-to-json((1, 2))"), "[1,2]");
  EXPECT_EQ(Run("xqa:xml-to-json(true())"), "true");
}

TEST_F(JsonTest, XmlToJsonNanAndInfinitySerializeAsStrings) {
  EXPECT_EQ(Run("xqa:xml-to-json(number('NaN'))"), R"("NaN")");
  EXPECT_EQ(Run("xqa:xml-to-json(1e308 * 10)"), R"("INF")");
}

TEST_F(JsonTest, XmlToJsonEscapesStrings) {
  EXPECT_EQ(Run(R"(xqa:xml-to-json(codepoints-to-string((97, 10, 9, 34, 92))))"),
            R"("a\n\t\"\\")");
}

TEST_F(JsonTest, XmlToJsonMixedContentDegradesToStringValue) {
  EXPECT_EQ(Run("xqa:xml-to-json(<a>t<b>1</b></a>)"), R"("t1")");
}

TEST_F(JsonTest, SerializeSequenceJsonMatchesTheFunction) {
  PreparedQuery query =
      engine_.Compile("(<a><b>1</b><b>2</b></a>, 3, \"s\")");
  Sequence result = query.Execute(Engine::ParseDocument("<root/>"));
  EXPECT_EQ(SerializeSequenceJson(result), R"([{"b":[1,2]},3,"s"])");
  EXPECT_EQ(SerializeSequenceJson(Sequence{}), "null");
}

TEST_F(JsonTest, RoundTripThroughBothDirections) {
  EXPECT_EQ(
      Run(R"(xqa:xml-to-json(xqa:parse-json('{"a":[1,2],"b":{"c":"x"},"n":null}')))"),
      R"({"a":[1,2],"b":{"c":"x"},"n":null})");
}

// ---------------------------------------------------------------------------
// The integration the mapping exists for: a JSON feed as a shredded corpus.
// ---------------------------------------------------------------------------

TEST_F(JsonTest, JsonFeedShredsAndScansByteIdentically) {
  CollectionStore store{CollectionStore::Options{4}};
  for (int d = 0; d < 12; ++d) {
    std::string feed = "[";
    for (int i = 0; i < 4; ++i) {
      int n = d * 4 + i;
      if (i > 0) feed += ",";
      feed += R"({"sku": "p)" + std::to_string(n % 5) +
              R"(", "qty": )" + std::to_string(n % 7) +
              R"(, "price": )" + std::to_string(n % 3) + ".50}";
    }
    feed += "]";
    store.Put("feed", "feed-" + std::to_string(d) + ".json",
              ParseJsonDocument(feed));
  }
  auto snapshot = store.Snapshot();

  const std::string query = R"(
    for $r in collection('feed')//item
    group by $r/sku into $sku
    nest $r/qty into $qtys
    order by string($sku)
    return <g>{$sku}<n>{count($qtys)}</n><q>{sum($qtys)}</q></g>
  )";
  PreparedQuery prepared = engine_.Compile(query);

  ExecutionOptions baseline;
  baseline.num_threads = 1;
  baseline.use_batched_execution = false;
  std::string expected =
      prepared.ExecuteToString(nullptr, nullptr, snapshot.get(), baseline);
  ASSERT_FALSE(expected.empty());

  for (bool shred : {false, true}) {
    ExecutionOptions exec;
    exec.num_threads = 2;
    exec.use_shredded_scan = shred;
    EXPECT_EQ(prepared.ExecuteToString(nullptr, nullptr, snapshot.get(), exec),
              expected)
        << "shred=" << shred;
  }

  ExecutionOptions profiled_exec;
  ProfiledResult profiled =
      prepared.ExecuteProfiled(nullptr, nullptr, snapshot.get(), profiled_exec);
  EXPECT_EQ(profiled.stats.shredded_scans, 1);
  EXPECT_EQ(profiled.stats.shredded_rows, 48);
}

}  // namespace
}  // namespace xqa

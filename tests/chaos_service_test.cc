// Service-level chaos sweep (docs/ROBUSTNESS.md): run a QueryService
// workload once per reachable fault site with that site armed, and assert
// the full graceful-degradation contract after every trip:
//   1. the failing request resolves with the site's typed error (Submit
//      never throws, the future always resolves);
//   2. the service stays serviceable — a follow-up request succeeds;
//   3. the root memory tracker balances back to zero once idle (no charge
//      leaked across the unwind);
//   4. a failed compile does not poison the plan cache — compile_failures
//      increments, no tombstone entry appears, and the same query compiles
//      and runs on the next request.
// Requires the fault call sites compiled in (-DXQA_FAULTS=ON); the sweep
// skips in a default build. Run under ASan in the chaos CI job.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "base/error.h"
#include "base/fault_injection.h"
#include "service/query_service.h"
#include "workload/orders.h"

namespace xqa::service {
namespace {

ServiceOptions ChaosOptions(bool enable_plan_cache) {
  ServiceOptions options;
  options.worker_threads = 2;
  options.enable_plan_cache = enable_plan_cache;
  // Generous budgets: activate the tracker hierarchy (so the allocation
  // fault sites are reachable) without ever tripping on their own.
  options.per_query_memory_bytes = 256ll << 20;
  options.total_memory_bytes = 1ll << 30;
  return options;
}

std::unique_ptr<QueryService> MakeService(bool enable_plan_cache = true) {
  auto service =
      std::make_unique<QueryService>(ChaosOptions(enable_plan_cache));
  workload::OrderConfig config;
  config.num_orders = 40;
  service->documents().Put("orders",
                           workload::GenerateOrdersDocument(config));
  return service;
}

/// Requests that together reach every service-path fault site: compile
/// (parse/bind), tuple materialization, sort keys, group tables, node
/// construction, serialization, doc load, enqueue, execute.
std::vector<Request> ChaosWorkload() {
  std::vector<Request> requests;
  Request sort;
  sort.query =
      "for $o in /orders/order order by $o/orderkey descending "
      "return <o>{$o/orderkey/text()}</o>";
  sort.document = "orders";
  requests.push_back(sort);

  Request group;
  group.query =
      "for $l in /orders/order/lineitem "
      "group by $l/shipmode into $m nest $l into $ls "
      "return <g mode=\"{$m}\">{count($ls)}</g>";
  group.document = "orders";
  requests.push_back(group);

  Request via_doc;
  via_doc.query = "count(doc('orders')/orders/order)";
  via_doc.provide_registry = true;
  requests.push_back(via_doc);
  return requests;
}

Request SanityRequest() {
  Request request;
  request.query = "count(/orders/order)";
  request.document = "orders";
  return request;
}

class ChaosServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::Enabled()) {
      GTEST_SKIP() << "fault points compiled out; configure -DXQA_FAULTS=ON";
    }
    fault::Reset();
  }
  void TearDown() override { fault::Reset(); }
};

TEST_F(ChaosServiceTest, SweepEverySiteTypedErrorServiceableNoLeak) {
  // Plan cache off so the compile fault sites stay reachable on every pass
  // (a cached plan would skip compilation after the record run).
  std::unique_ptr<QueryService> service = MakeService(/*enable_plan_cache=*/
                                                      false);
  // Record mode: a clean pass over the workload discovers reachable sites.
  for (const Request& request : ChaosWorkload()) {
    Response response = service->Execute(request);
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  }
  std::vector<fault::SiteInfo> sites = fault::Sites();
  ASSERT_FALSE(sites.empty());

  for (const fault::SiteInfo& site : sites) {
    SCOPED_TRACE(site.name);
    fault::Disarm();
    fault::ArmSite(site.name, 1);

    // Exactly one request absorbs the trip and resolves with the site's
    // typed error; Submit itself must never throw.
    int failures = 0;
    for (const Request& request : ChaosWorkload()) {
      Response response = service->Execute(request);
      if (!response.status.ok()) {
        ++failures;
        EXPECT_EQ(response.status.code(), site.code);
        EXPECT_NE(response.status.message().find("injected fault"),
                  std::string::npos)
            << response.status.ToString();
        EXPECT_TRUE(response.result.empty());
      }
    }
    EXPECT_EQ(failures, 1) << "armed site should trip exactly once";

    // Serviceable afterwards (countdown is consumed, nothing armed).
    Response sanity = service->Execute(SanityRequest());
    EXPECT_TRUE(sanity.status.ok())
        << "service unserviceable after " << site.name << ": "
        << sanity.status.ToString();

    // Leak invariant: all request trackers unwound back to the root.
    EXPECT_EQ(service->root_memory().used(), 0)
        << "tracker leak after " << site.name;
  }
}

TEST_F(ChaosServiceTest, EnqueueFaultResolvesFutureRetryable) {
  std::unique_ptr<QueryService> service = MakeService();
  fault::ArmSite("service.enqueue", 1);
  Response response = service->Execute(SanityRequest());
  EXPECT_EQ(response.status.code(), ErrorCode::kXQSV0003);
  EXPECT_TRUE(response.retryable);
  EXPECT_EQ(service->metrics().rejected.load(), 1u);
  // Next submit goes through.
  Response again = service->Execute(SanityRequest());
  EXPECT_TRUE(again.status.ok()) << again.status.ToString();
  EXPECT_EQ(service->root_memory().used(), 0);
}

TEST_F(ChaosServiceTest, FailedCompileDoesNotPoisonPlanCache) {
  std::unique_ptr<QueryService> service = MakeService();
  Request request = SanityRequest();

  fault::ArmSite("compile.parse", 1);
  Response failed = service->Execute(request);
  EXPECT_EQ(failed.status.code(), ErrorCode::kXPST0003);
  EXPECT_FALSE(failed.retryable);

  PlanCache::Counters after_failure = service->plan_cache_counters();
  EXPECT_EQ(after_failure.compile_failures, 1u);
  EXPECT_EQ(after_failure.entries, 0u) << "failed compile must not tombstone";
  EXPECT_EQ(after_failure.evictions, 0u);

  // The very same query compiles and runs on the next request — the cache
  // retries rather than replaying the failure.
  Response ok = service->Execute(request);
  ASSERT_TRUE(ok.status.ok()) << ok.status.ToString();
  EXPECT_EQ(ok.result, "40");
  PlanCache::Counters after_success = service->plan_cache_counters();
  EXPECT_EQ(after_success.compile_failures, 1u);
  EXPECT_EQ(after_success.entries, 1u);

  // And the plan really is cached now.
  Response cached = service->Execute(request);
  EXPECT_TRUE(cached.cache_hit);
}

TEST_F(ChaosServiceTest, ExecuteFaultLeavesServiceDrainable) {
  // Trip the execute-path fault, then immediately destroy the service: the
  // destructor drain must not hang or double-release.
  std::unique_ptr<QueryService> service = MakeService();
  fault::ArmSite("service.execute", 1);
  Response response = service->Execute(SanityRequest());
  EXPECT_EQ(response.status.code(), ErrorCode::kXQSV0002);
  EXPECT_EQ(service->root_memory().used(), 0);
  service.reset();  // drain
}

TEST_F(ChaosServiceTest, MetricsReportFaultActivity) {
  std::unique_ptr<QueryService> service = MakeService();
  Response response = service->Execute(SanityRequest());
  ASSERT_TRUE(response.status.ok());
  std::string json = service->MetricsJson();
  EXPECT_NE(json.find("\"faults\""), std::string::npos);
  EXPECT_NE(json.find("\"enabled\": true"), std::string::npos);
  EXPECT_GT(fault::TotalHits(), 0u);
}

}  // namespace
}  // namespace xqa::service

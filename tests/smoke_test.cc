#include <gtest/gtest.h>

#include "api/engine.h"
#include "workload/books.h"

namespace xqa {
namespace {

TEST(Smoke, ParseAndCount) {
  Engine engine;
  DocumentPtr doc =
      Engine::ParseDocument(workload::PaperBibliographyXml());
  PreparedQuery query = engine.Compile("count(//book)");
  Sequence result = query.Execute(doc);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].atomic().AsInteger(), 7);
}

TEST(Smoke, GroupByRuns) {
  Engine engine;
  DocumentPtr doc =
      Engine::ParseDocument(workload::PaperBibliographyXml());
  PreparedQuery query = engine.Compile(R"(
    for $b in //book
    group by $b/publisher into $p
    nest $b/price into $prices
    order by $p
    return <g>{$p}<n>{count($prices)}</n></g>
  )");
  std::string out = query.ExecuteToString(doc);
  EXPECT_NE(out.find("Morgan Kaufmann"), std::string::npos);
}

}  // namespace
}  // namespace xqa

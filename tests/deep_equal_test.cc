#include "xdm/deep_equal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <utility>
#include <vector>

#include "xdm/datetime.h"
#include "xml/xml_parser.h"

namespace xqa {
namespace {

Sequence NodeSeq(const DocumentPtr& doc, std::initializer_list<size_t> indexes) {
  Sequence out;
  const Node* root_elem = doc->root()->children()[0];
  for (size_t i : indexes) {
    out.push_back(Item(root_elem->children()[i], doc));
  }
  return out;
}

TEST(DeepEqualAtomic, NumericCrossType) {
  Decimal d;
  ASSERT_TRUE(Decimal::Parse("5", &d));
  EXPECT_TRUE(DeepEqualItems(MakeInteger(5), MakeDecimalItem(d)));
  EXPECT_TRUE(DeepEqualItems(MakeInteger(5), MakeDouble(5.0)));
  EXPECT_FALSE(DeepEqualItems(MakeInteger(5), MakeInteger(6)));
}

TEST(DeepEqualAtomic, NaNEqualsNaN) {
  // fn:deep-equal's explicit exception to eq semantics.
  EXPECT_TRUE(DeepEqualItems(MakeDouble(std::nan("")), MakeDouble(std::nan(""))));
}

TEST(DeepEqualAtomic, StringsAndUntyped) {
  EXPECT_TRUE(DeepEqualItems(MakeString("x"), MakeUntyped("x")));
  EXPECT_FALSE(DeepEqualItems(MakeString("x"), MakeString("y")));
  // Incomparable types are unequal, not an error.
  EXPECT_FALSE(DeepEqualItems(MakeString("1"), MakeInteger(1)));
  EXPECT_FALSE(DeepEqualItems(MakeBoolean(true), MakeInteger(1)));
}

TEST(DeepEqualNodes, StructuralEquality) {
  DocumentPtr doc = ParseXml(
      "<r><a x=\"1\" y=\"2\"><b>t</b></a>"
      "<a y=\"2\" x=\"1\"><b>t</b></a>"
      "<a x=\"1\"><b>t</b></a>"
      "<a x=\"1\" y=\"2\"><b>u</b></a></r>");
  Sequence nodes = NodeSeq(doc, {0, 1, 2, 3});
  // Attribute order does not matter.
  EXPECT_TRUE(DeepEqualItems(nodes[0], nodes[1]));
  // Missing attribute matters.
  EXPECT_FALSE(DeepEqualItems(nodes[0], nodes[2]));
  // Text difference matters.
  EXPECT_FALSE(DeepEqualItems(nodes[0], nodes[3]));
}

TEST(DeepEqualNodes, CommentsAndPisIgnored) {
  DocumentPtr a = ParseXml("<e><!-- c --><b>x</b></e>");
  DocumentPtr b = ParseXml("<e><b>x</b><?pi data?></e>");
  EXPECT_TRUE(DeepEqualNodes(a->root()->children()[0], b->root()->children()[0]));
}

TEST(DeepEqualNodes, DifferentNamesUnequal) {
  DocumentPtr doc = ParseXml("<r><a/><b/></r>");
  Sequence nodes = NodeSeq(doc, {0, 1});
  EXPECT_FALSE(DeepEqualItems(nodes[0], nodes[1]));
}

TEST(DeepEqualNodes, TextNodes) {
  DocumentPtr a = ParseXml("<e>same</e>");
  DocumentPtr b = ParseXml("<f>same</f>");
  EXPECT_TRUE(DeepEqualNodes(a->root()->children()[0]->children()[0],
                             b->root()->children()[0]->children()[0]));
}

TEST(DeepEqualSequences, PermutationsDistinct) {
  // Section 3.3 property 1: each permutation is a distinct value.
  DocumentPtr doc = ParseXml("<r><a>Gray</a><a>Reuter</a></r>");
  Sequence forward = NodeSeq(doc, {0, 1});
  Sequence backward = NodeSeq(doc, {1, 0});
  EXPECT_TRUE(DeepEqualSequences(forward, forward));
  EXPECT_FALSE(DeepEqualSequences(forward, backward));
}

TEST(DeepEqualSequences, EmptyIsDistinct) {
  // Section 3.3 property 2: the empty sequence equals only itself.
  EXPECT_TRUE(DeepEqualSequences({}, {}));
  EXPECT_FALSE(DeepEqualSequences({}, {MakeInteger(1)}));
  EXPECT_FALSE(DeepEqualSequences({MakeInteger(1)}, {}));
}

TEST(DeepEqualSequences, LengthMismatch) {
  Sequence one = {MakeInteger(1)};
  Sequence two = {MakeInteger(1), MakeInteger(1)};
  EXPECT_FALSE(DeepEqualSequences(one, two));
}

TEST(DeepHash, ConsistencyWithEquality) {
  DocumentPtr doc = ParseXml(
      "<r><a x=\"1\" y=\"2\"><b>t</b></a><a y=\"2\" x=\"1\"><b>t</b></a></r>");
  Sequence nodes = NodeSeq(doc, {0, 1});
  EXPECT_EQ(DeepHashItem(nodes[0]), DeepHashItem(nodes[1]));
  EXPECT_EQ(DeepHashItem(MakeInteger(5)), DeepHashItem(MakeDouble(5.0)));
  EXPECT_EQ(DeepHashItem(MakeDouble(std::nan(""))),
            DeepHashItem(MakeDouble(std::nan(""))));
}

// Property: for a corpus of value pairs, deep-equal implies equal hashes.
class DeepHashPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DeepHashPropertyTest, EqualImpliesSameHash) {
  int i = GetParam();
  std::string tag = "s";
  tag += std::to_string(i % 5);
  Sequence a = {MakeInteger(i % 7), MakeString(tag),
                MakeDouble((i % 3) * 1.5)};
  Sequence b = {MakeInteger(i % 7), MakeString(tag),
                MakeDouble((i % 3) * 1.5)};
  ASSERT_TRUE(DeepEqualSequences(a, b));
  EXPECT_EQ(DeepHashSequence(a), DeepHashSequence(b));
}

INSTANTIATE_TEST_SUITE_P(Grid, DeepHashPropertyTest, ::testing::Range(0, 40));

// Property sweep: DeepEqualSequences(a, b) ==> DeepHashSequence(a) ==
// DeepHashSequence(b), checked over every pair drawn from a corpus that
// crosses numeric representations (integer / decimal / double), signed
// zeros, NaN, timezone-shifted dateTimes, decimals at and beyond double
// precision, strings vs untypedAtomic, and attribute-order-differing
// elements. Grouping correctness depends on this implication: hash buckets
// prune candidates, so a hash split between equal values silently splits a
// group.
class HashEqualConsistencyTest : public ::testing::Test {
 protected:
  static Item Dec(const std::string& lexical) {
    Decimal d;
    EXPECT_TRUE(Decimal::Parse(lexical, &d)) << lexical;
    return MakeDecimalItem(d);
  }
  static Item Dt(const std::string& lexical) {
    DateTime value;
    EXPECT_TRUE(DateTime::ParseDateTime(lexical, &value)) << lexical;
    return Item(AtomicValue::MakeDateTime(value));
  }

  static std::vector<std::pair<std::string, Sequence>> Corpus() {
    std::vector<std::pair<std::string, Sequence>> corpus;
    auto add = [&](const std::string& label, Item item) {
      corpus.emplace_back(label, Sequence{std::move(item)});
    };
    add("int 5", MakeInteger(5));
    add("dec 5", Dec("5"));
    add("dec 5.0", Dec("5.0"));
    add("dbl 5", MakeDouble(5.0));
    add("int 0", MakeInteger(0));
    add("dec 0", Dec("0"));
    add("dbl +0.0", MakeDouble(0.0));
    add("dbl -0.0", MakeDouble(-0.0));
    add("dec 0.007", Dec("0.007"));
    add("dbl 0.007", MakeDouble(0.007));
    add("dec 2.5", Dec("2.5"));
    add("dbl 2.5", MakeDouble(2.5));
    add("dbl NaN", MakeDouble(std::nan("")));
    add("dbl NaN2", MakeDouble(std::nan("0x123")));
    // Beyond double precision: rounds to the same double as 0.1.
    add("dec 0.1+eps", Dec("0.100000000000000001"));
    add("dec 0.1", Dec("0.1"));
    add("dbl 0.1", MakeDouble(0.1));
    add("str x", MakeString("x"));
    add("untyped x", MakeUntyped("x"));
    // The same instant written in three timezones.
    add("dt Z", Dt("2004-01-31T12:00:00Z"));
    add("dt -05:00", Dt("2004-01-31T07:00:00-05:00"));
    add("dt +03:30", Dt("2004-01-31T15:30:00+03:30"));
    add("dt other", Dt("2004-01-31T12:00:01Z"));
    return corpus;
  }
};

TEST_F(HashEqualConsistencyTest, AtomicPairs) {
  auto corpus = Corpus();
  int equal_pairs = 0;
  for (const auto& [label_a, a] : corpus) {
    for (const auto& [label_b, b] : corpus) {
      if (!DeepEqualSequences(a, b)) continue;
      ++equal_pairs;
      EXPECT_EQ(DeepHashSequence(a), DeepHashSequence(b))
          << label_a << " deep-equals " << label_b
          << " but their hashes differ";
    }
  }
  // The corpus must actually exercise cross-representation equality (e.g.
  // dec 0.007 == dbl 0.007, the Decimal::ToDouble rounding regression), not
  // just reflexive pairs.
  EXPECT_GE(equal_pairs, static_cast<int>(corpus.size()) + 20);
}

TEST_F(HashEqualConsistencyTest, CrossRepresentationEqualityHolds) {
  // These pairs must compare equal in the first place — the sweep above
  // only checks the implication. dec/dbl 0.007 regressed when ToDouble
  // divided by 10 repeatedly, accumulating one ulp of error.
  EXPECT_TRUE(DeepEqualItems(Dec("0.007"), MakeDouble(0.007)));
  EXPECT_TRUE(DeepEqualItems(Dec("2.5"), MakeDouble(2.5)));
  EXPECT_TRUE(DeepEqualItems(Dec("0.1"), MakeDouble(0.1)));
  EXPECT_TRUE(DeepEqualItems(MakeDouble(-0.0), MakeDouble(0.0)));
  EXPECT_TRUE(DeepEqualItems(Dt("2004-01-31T12:00:00Z"),
                             Dt("2004-01-31T07:00:00-05:00")));
}

TEST_F(HashEqualConsistencyTest, ElementPairsAttributeOrder) {
  DocumentPtr doc = ParseXml(
      "<r><a x=\"1\" y=\"2\">t</a><a y=\"2\" x=\"1\">t</a>"
      "<a x=\"1\" y=\"3\">t</a></r>");
  Sequence nodes = NodeSeq(doc, {0, 1, 2});
  for (const Item& left : nodes) {
    for (const Item& right : nodes) {
      if (!DeepEqualItems(left, right)) continue;
      EXPECT_EQ(DeepHashItem(left), DeepHashItem(right));
    }
  }
  EXPECT_TRUE(DeepEqualItems(nodes[0], nodes[1]));
  EXPECT_FALSE(DeepEqualItems(nodes[0], nodes[2]));
}

}  // namespace
}  // namespace xqa

#include "xdm/deep_equal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "xml/xml_parser.h"

namespace xqa {
namespace {

Sequence NodeSeq(const DocumentPtr& doc, std::initializer_list<size_t> indexes) {
  Sequence out;
  const Node* root_elem = doc->root()->children()[0];
  for (size_t i : indexes) {
    out.push_back(Item(root_elem->children()[i], doc));
  }
  return out;
}

TEST(DeepEqualAtomic, NumericCrossType) {
  Decimal d;
  ASSERT_TRUE(Decimal::Parse("5", &d));
  EXPECT_TRUE(DeepEqualItems(MakeInteger(5), MakeDecimalItem(d)));
  EXPECT_TRUE(DeepEqualItems(MakeInteger(5), MakeDouble(5.0)));
  EXPECT_FALSE(DeepEqualItems(MakeInteger(5), MakeInteger(6)));
}

TEST(DeepEqualAtomic, NaNEqualsNaN) {
  // fn:deep-equal's explicit exception to eq semantics.
  EXPECT_TRUE(DeepEqualItems(MakeDouble(std::nan("")), MakeDouble(std::nan(""))));
}

TEST(DeepEqualAtomic, StringsAndUntyped) {
  EXPECT_TRUE(DeepEqualItems(MakeString("x"), MakeUntyped("x")));
  EXPECT_FALSE(DeepEqualItems(MakeString("x"), MakeString("y")));
  // Incomparable types are unequal, not an error.
  EXPECT_FALSE(DeepEqualItems(MakeString("1"), MakeInteger(1)));
  EXPECT_FALSE(DeepEqualItems(MakeBoolean(true), MakeInteger(1)));
}

TEST(DeepEqualNodes, StructuralEquality) {
  DocumentPtr doc = ParseXml(
      "<r><a x=\"1\" y=\"2\"><b>t</b></a>"
      "<a y=\"2\" x=\"1\"><b>t</b></a>"
      "<a x=\"1\"><b>t</b></a>"
      "<a x=\"1\" y=\"2\"><b>u</b></a></r>");
  Sequence nodes = NodeSeq(doc, {0, 1, 2, 3});
  // Attribute order does not matter.
  EXPECT_TRUE(DeepEqualItems(nodes[0], nodes[1]));
  // Missing attribute matters.
  EXPECT_FALSE(DeepEqualItems(nodes[0], nodes[2]));
  // Text difference matters.
  EXPECT_FALSE(DeepEqualItems(nodes[0], nodes[3]));
}

TEST(DeepEqualNodes, CommentsAndPisIgnored) {
  DocumentPtr a = ParseXml("<e><!-- c --><b>x</b></e>");
  DocumentPtr b = ParseXml("<e><b>x</b><?pi data?></e>");
  EXPECT_TRUE(DeepEqualNodes(a->root()->children()[0], b->root()->children()[0]));
}

TEST(DeepEqualNodes, DifferentNamesUnequal) {
  DocumentPtr doc = ParseXml("<r><a/><b/></r>");
  Sequence nodes = NodeSeq(doc, {0, 1});
  EXPECT_FALSE(DeepEqualItems(nodes[0], nodes[1]));
}

TEST(DeepEqualNodes, TextNodes) {
  DocumentPtr a = ParseXml("<e>same</e>");
  DocumentPtr b = ParseXml("<f>same</f>");
  EXPECT_TRUE(DeepEqualNodes(a->root()->children()[0]->children()[0],
                             b->root()->children()[0]->children()[0]));
}

TEST(DeepEqualSequences, PermutationsDistinct) {
  // Section 3.3 property 1: each permutation is a distinct value.
  DocumentPtr doc = ParseXml("<r><a>Gray</a><a>Reuter</a></r>");
  Sequence forward = NodeSeq(doc, {0, 1});
  Sequence backward = NodeSeq(doc, {1, 0});
  EXPECT_TRUE(DeepEqualSequences(forward, forward));
  EXPECT_FALSE(DeepEqualSequences(forward, backward));
}

TEST(DeepEqualSequences, EmptyIsDistinct) {
  // Section 3.3 property 2: the empty sequence equals only itself.
  EXPECT_TRUE(DeepEqualSequences({}, {}));
  EXPECT_FALSE(DeepEqualSequences({}, {MakeInteger(1)}));
  EXPECT_FALSE(DeepEqualSequences({MakeInteger(1)}, {}));
}

TEST(DeepEqualSequences, LengthMismatch) {
  Sequence one = {MakeInteger(1)};
  Sequence two = {MakeInteger(1), MakeInteger(1)};
  EXPECT_FALSE(DeepEqualSequences(one, two));
}

TEST(DeepHash, ConsistencyWithEquality) {
  DocumentPtr doc = ParseXml(
      "<r><a x=\"1\" y=\"2\"><b>t</b></a><a y=\"2\" x=\"1\"><b>t</b></a></r>");
  Sequence nodes = NodeSeq(doc, {0, 1});
  EXPECT_EQ(DeepHashItem(nodes[0]), DeepHashItem(nodes[1]));
  EXPECT_EQ(DeepHashItem(MakeInteger(5)), DeepHashItem(MakeDouble(5.0)));
  EXPECT_EQ(DeepHashItem(MakeDouble(std::nan(""))),
            DeepHashItem(MakeDouble(std::nan(""))));
}

// Property: for a corpus of value pairs, deep-equal implies equal hashes.
class DeepHashPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DeepHashPropertyTest, EqualImpliesSameHash) {
  int i = GetParam();
  std::string tag = "s";
  tag += std::to_string(i % 5);
  Sequence a = {MakeInteger(i % 7), MakeString(tag),
                MakeDouble((i % 3) * 1.5)};
  Sequence b = {MakeInteger(i % 7), MakeString(tag),
                MakeDouble((i % 3) * 1.5)};
  ASSERT_TRUE(DeepEqualSequences(a, b));
  EXPECT_EQ(DeepHashSequence(a), DeepHashSequence(b));
}

INSTANTIATE_TEST_SUITE_P(Grid, DeepHashPropertyTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace xqa

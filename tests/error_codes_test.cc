// Systematic error-code coverage: each engine error code is raised by at
// least one representative query, with the right static/dynamic phase.

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

struct ErrorCase {
  const char* query;
  ErrorCode code;
  bool is_static;  ///< raised at Compile (true) or Execute (false)
};

class ErrorCodes : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(ErrorCodes, RaisedInTheRightPhase) {
  const ErrorCase& c = GetParam();
  Engine engine;
  DocumentPtr doc = Engine::ParseDocument("<r><v>1</v></r>");
  if (c.is_static) {
    try {
      engine.Compile(c.query);
      FAIL() << "expected static error from: " << c.query;
    } catch (const XQueryError& error) {
      EXPECT_EQ(error.code(), c.code) << c.query;
    }
  } else {
    PreparedQuery query = engine.Compile(c.query);  // must compile cleanly
    try {
      query.Execute(doc);
      FAIL() << "expected dynamic error from: " << c.query;
    } catch (const XQueryError& error) {
      EXPECT_EQ(error.code(), c.code) << c.query;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Static, ErrorCodes, ::testing::Values(
    // Grammar
    ErrorCase{"1 +", ErrorCode::kXPST0003, true},
    ErrorCase{"for $x in (1)", ErrorCode::kXPST0003, true},
    ErrorCase{"<a></b>", ErrorCode::kXPST0003, true},
    // Names
    ErrorCase{"$undefined", ErrorCode::kXPST0008, true},
    ErrorCase{"nope(1)", ErrorCode::kXPST0017, true},
    ErrorCase{"avg(1, 2, 3)", ErrorCode::kXPST0017, true},
    // Prolog
    ErrorCase{"declare function local:f($a) {1}; "
              "declare function local:f($b) {2}; 1",
              ErrorCode::kXQST0034, true},
    ErrorCase{"declare function local:f($a, $a) {1}; 1",
              ErrorCode::kXQST0039, true},
    ErrorCase{"declare variable $v := 1; declare variable $v := 2; $v",
              ErrorCode::kXQST0049, true},
    ErrorCase{"for $x at $x in (1) return $x", ErrorCode::kXQST0089, true},
    // Grouping scope rules (the paper's Section 3.2)
    ErrorCase{"for $b in (1) group by $b into $k return $b",
              ErrorCode::kXQAG0001, true},
    ErrorCase{"for $b in (1) group by $b into $k, $k into $j return $j",
              ErrorCode::kXQAG0002, true},
    ErrorCase{"for $b in (1) group by $b into $k, $b into $k return $k",
              ErrorCode::kXQAG0004, true},
    ErrorCase{"for $b in (1) group by $b into $k using local:gone return $k",
              ErrorCode::kXQAG0005, true}));

INSTANTIATE_TEST_SUITE_P(Dynamic, ErrorCodes, ::testing::Values(
    // Arithmetic
    ErrorCase{"1 div 0", ErrorCode::kFOAR0001, false},
    ErrorCase{"1 idiv 0", ErrorCode::kFOAR0001, false},
    ErrorCase{"9223372036854775807 * 2", ErrorCode::kFOAR0002, false},
    // Types
    ErrorCase{"\"a\" + 1", ErrorCode::kXPTY0004, false},
    ErrorCase{"(1, 2) * 2", ErrorCode::kXPTY0004, false},
    ErrorCase{"1 eq \"1\"", ErrorCode::kXPTY0004, false},
    ErrorCase{"(1, 2)/v", ErrorCode::kXPTY0004, false},
    ErrorCase{"() cast as xs:integer", ErrorCode::kXPTY0004, false},
    ErrorCase{"1.5 treat as xs:integer", ErrorCode::kXPDY0050, false},
    // Casting / values
    ErrorCase{"xs:integer(\"abc\")", ErrorCode::kFORG0001, false},
    ErrorCase{"xs:date(\"2004-13-01\")", ErrorCode::kFORG0001, false},
    ErrorCase{"zero-or-one((1, 2))", ErrorCode::kFORG0003, false},
    ErrorCase{"one-or-more(())", ErrorCode::kFORG0004, false},
    ErrorCase{"exactly-one(())", ErrorCode::kFORG0005, false},
    ErrorCase{"sum((\"a\", \"b\"))", ErrorCode::kFORG0006, false},
    ErrorCase{"string((1, 2))", ErrorCode::kFORG0006, false},
    ErrorCase{"boolean((1, 2))", ErrorCode::kFORG0006, false},
    // Constructors
    ErrorCase{"element { \"no space allowed\" } { 1 }",
              ErrorCode::kFORG0001, false},
    // Documents
    ErrorCase{"doc(\"unregistered.xml\")", ErrorCode::kFODC0002, false},
    // Regex
    ErrorCase{"matches(\"x\", \"(\")", ErrorCode::kFORX0002, false},
    ErrorCase{"replace(\"x\", \"a*\", \"y\")", ErrorCode::kFORX0003, false},
    ErrorCase{"tokenize(\"x\", \"b?\")", ErrorCode::kFORX0003, false}));

TEST(ErrorReporting, StaticErrorsCarryLocations) {
  Engine engine;
  try {
    engine.Compile("let $x := 1\nreturn $x +");
    FAIL();
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.location().line, 2u);
    EXPECT_NE(error.FormattedMessage().find("line 2"), std::string::npos);
  }
}

TEST(ErrorReporting, DynamicErrorsNameTheCode) {
  Engine engine;
  DocumentPtr doc = Engine::ParseDocument("<r/>");
  Result<Sequence> result = engine.Compile("1 div 0").TryExecute(doc);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("FOAR0001"), std::string::npos);
  EXPECT_NE(result.status().message().find("division by zero"),
            std::string::npos);
}

TEST(ErrorReporting, XmlParseErrorsUseXmlpCode) {
  try {
    Engine::ParseDocument("<a><b></a>");
    FAIL();
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXMLP0001);
  }
}

}  // namespace
}  // namespace xqa

// fn:doc / fn:doc-available / fn:collection against the document registry.

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

class DocRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    registry_["books.xml"] =
        Engine::ParseDocument("<bib><book><price>10</price></book></bib>");
    registry_["sales.xml"] =
        Engine::ParseDocument("<sales><sale><price>5</price></sale></sales>");
  }

  std::string Run(const std::string& query) {
    return SerializeSequence(
        engine_.Compile(query).Execute(nullptr, registry_));
  }

  Engine engine_;
  DocumentRegistry registry_;
};

TEST_F(DocRegistryTest, DocResolvesRegisteredDocuments) {
  EXPECT_EQ(Run("count(doc(\"books.xml\")//book)"), "1");
  EXPECT_EQ(Run("string(doc(\"sales.xml\")//price)"), "5");
}

TEST_F(DocRegistryTest, DocJoinsAcrossDocuments) {
  EXPECT_EQ(Run("sum((doc(\"books.xml\")//price, doc(\"sales.xml\")//price))"),
            "15");
}

TEST_F(DocRegistryTest, DocEmptyUriYieldsEmpty) {
  EXPECT_EQ(Run("count(doc(()))"), "0");
}

TEST_F(DocRegistryTest, UnknownDocumentThrows) {
  try {
    Run("doc(\"missing.xml\")");
    FAIL() << "expected FODC0002";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kFODC0002);
  }
}

TEST_F(DocRegistryTest, DocAvailable) {
  EXPECT_EQ(Run("doc-available(\"books.xml\")"), "true");
  EXPECT_EQ(Run("doc-available(\"missing.xml\")"), "false");
  EXPECT_EQ(Run("doc-available(())"), "false");
}

TEST_F(DocRegistryTest, CollectionReturnsAllInUriOrder) {
  EXPECT_EQ(Run("count(collection())"), "2");
  EXPECT_EQ(Run("count(collection()//price)"), "2");
  EXPECT_EQ(Run("name(collection()[1]/*)"), "bib");  // "books.xml" < "sales.xml"
}

TEST_F(DocRegistryTest, CollectionEmptyArgResolvesDefaultCollection) {
  // Per F&O, fn:collection(()) is the same call as fn:collection(): both
  // resolve the default collection — never the empty sequence.
  EXPECT_EQ(Run("count(collection(()))"), "2");
  EXPECT_EQ(Run("count(collection(()))"), Run("count(collection())"));
  EXPECT_EQ(Run("name(collection(())[1]/*)"), "bib");
}

TEST_F(DocRegistryTest, NoRegistryMeansNothingAvailable) {
  Engine engine;
  DocumentPtr doc = Engine::ParseDocument("<r/>");
  EXPECT_THROW(engine.Compile("doc(\"x\")").Execute(doc), XQueryError);
  Sequence result = engine.Compile("count(collection())").Execute(doc);
  EXPECT_EQ(result[0].atomic().AsInteger(), 0);
}

TEST_F(DocRegistryTest, ContextDocumentAndRegistryTogether) {
  DocumentPtr context = Engine::ParseDocument("<ctx><v>1</v></ctx>");
  Sequence result = engine_
      .Compile("sum((//v, doc(\"books.xml\")//price))")
      .Execute(context, registry_);
  EXPECT_EQ(result[0].atomic().ToLexical(), "11");
}

}  // namespace
}  // namespace xqa

// Integration tests: every numbered query from "Extending XQuery for
// Analytics" (SIGMOD 2005) runs against the paper's example documents, and
// the results are checked against hand-computed expectations. This is the
// E4/E5 experiment index entry in DESIGN.md.

#include <gtest/gtest.h>

#include <string>

#include "api/engine.h"
#include "workload/books.h"
#include "workload/orders.h"

namespace xqa {
namespace {

class PaperQueriesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    bib_ = new DocumentPtr(Engine::ParseDocument(workload::PaperBibliographyXml()));
    sales_ = new DocumentPtr(Engine::ParseDocument(workload::PaperSalesXml()));
    categorized_ =
        new DocumentPtr(Engine::ParseDocument(workload::PaperCategorizedBooksXml()));
  }
  static void TearDownTestSuite() {
    delete bib_;
    delete sales_;
    delete categorized_;
  }

  std::string Run(const DocumentPtr& doc, const std::string& query) {
    return engine_.Compile(query).ExecuteToString(doc);
  }

  Sequence Eval(const DocumentPtr& doc, const std::string& query) {
    return engine_.Compile(query).Execute(doc);
  }

  static int CountOccurrences(const std::string& text, const std::string& needle) {
    int count = 0;
    size_t pos = 0;
    while ((pos = text.find(needle, pos)) != std::string::npos) {
      ++count;
      pos += needle.size();
    }
    return count;
  }

  Engine engine_;
  static DocumentPtr* bib_;
  static DocumentPtr* sales_;
  static DocumentPtr* categorized_;
};

DocumentPtr* PaperQueriesTest::bib_ = nullptr;
DocumentPtr* PaperQueriesTest::sales_ = nullptr;
DocumentPtr* PaperQueriesTest::categorized_ = nullptr;

// ---------------------------------------------------------------------------
// Q1 — average net price per (publisher, year), explicit group by.
// ---------------------------------------------------------------------------

constexpr char kQ1Explicit[] = R"(
  for $b in //book
  group by $b/publisher into $p, $b/year into $y
  nest $b/price - $b/discount into $netprices
  return
    <group>
      {$p, $y}
      <avg-net-price>{avg($netprices)}</avg-net-price>
    </group>
)";

TEST_F(PaperQueriesTest, Q1ExplicitGroupCount) {
  // Groups: (MK,1993) (MK,1995) (AW,1993) ((),1995) — the empty publisher
  // forms its own group (Section 3.1: empty sequence is a distinct value).
  std::string out = Run(*bib_, kQ1Explicit);
  EXPECT_EQ(CountOccurrences(out, "<group>"), 4);
}

TEST_F(PaperQueriesTest, Q1NetPriceSkipsBooksWithoutDiscount) {
  // (MK,1993): net prices (59.00, 50.00) — the no-discount book contributes
  // an empty sequence which vanishes in the nest (Section 3.1, Q6 remark).
  std::string out = Run(*bib_, kQ1Explicit);
  EXPECT_NE(out.find("<avg-net-price>54.5</avg-net-price>"), std::string::npos);
}

TEST_F(PaperQueriesTest, Q1NaiveMissesBooksWithoutPublisher) {
  // The Section 2 formulation: cross product of distinct publishers/years
  // with an exists() filter. Books with no publisher produce no group.
  std::string naive = Run(*bib_, R"(
    for $p in distinct-values(//book/publisher)
    for $y in distinct-values(//book/year)
    let $b2 := //book[publisher = $p and year = $y]
    where exists($b2)
    return
      <group>
        <publisher>{$p}</publisher><year>{$y}</year>
        <avg-net-price>{avg(for $b in $b2 return $b/price - $b/discount)}</avg-net-price>
      </group>
  )");
  EXPECT_EQ(CountOccurrences(naive, "<group>"), 3);  // the 4th group is lost
  EXPECT_NE(naive.find("<avg-net-price>54.5</avg-net-price>"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Q2 / Q2a — grouping by author (existential vs whole-sequence).
// ---------------------------------------------------------------------------

TEST_F(PaperQueriesTest, Q2PerAuthorExistential) {
  std::string out = Run(*bib_, R"(
    for $a in distinct-values(//book/author)
    let $b := //book[author = $a]
    order by $a
    return <group><a>{$a}</a><avg-price>{avg($b/price)}</avg-price></group>
  )");
  EXPECT_EQ(CountOccurrences(out, "<group>"), 7);
  // Gray co-authored or authored books 65, 34, 120 -> avg 73.
  EXPECT_NE(out.find("<a>Jim Gray</a><avg-price>73</avg-price>"),
            std::string::npos);
}

TEST_F(PaperQueriesTest, Q2aDistinctAuthorSequences) {
  // Permutations are distinct: (Gray,Reuter) and (Reuter,Gray) are separate
  // groups under the default deep-equal comparison (Section 3.3).
  std::string out = Run(*bib_, R"(
    for $b in //book
    group by $b/author into $a
    nest $b/price into $prices
    return <group>{$a}<avg-price>{avg($prices)}</avg-price></group>
  )");
  EXPECT_EQ(CountOccurrences(out, "<group>"), 6);
  EXPECT_NE(out.find("<avg-price>65</avg-price>"), std::string::npos);  // (Gray,Reuter)
  EXPECT_NE(out.find("<avg-price>34</avg-price>"), std::string::npos);  // (Reuter,Gray)
}

TEST_F(PaperQueriesTest, Q2aSetEqualUserFunction) {
  // The Section 3.3 user-defined set-equal function merges permutations.
  std::string out = Run(*bib_, R"(
    declare function local:set-equal
        ($arg1 as item()*, $arg2 as item()*) as xs:boolean
    { every $i1 in $arg1 satisfies
        some $i2 in $arg2 satisfies $i1 eq $i2
      and every $i2 in $arg2 satisfies
        some $i1 in $arg1 satisfies $i1 eq $i2
    };
    for $b in //book
    group by $b/author into $a using local:set-equal
    nest $b/price into $prices
    return <group>{$a}<avg-price>{avg($prices)}</avg-price></group>
  )");
  EXPECT_EQ(CountOccurrences(out, "<group>"), 5);
  EXPECT_NE(out.find("<avg-price>49.5</avg-price>"), std::string::npos);
}

TEST_F(PaperQueriesTest, Q2aBuiltinSetEqual) {
  // Same result with the engine-provided membership function.
  std::string out = Run(*bib_, R"(
    for $b in //book
    group by $b/author into $a using xqa:set-equal
    nest $b/price into $prices
    return <group>{$a}<avg-price>{avg($prices)}</avg-price></group>
  )");
  EXPECT_EQ(CountOccurrences(out, "<group>"), 5);
}

// ---------------------------------------------------------------------------
// Q3 — state vs region yearly sales, both formulations.
// ---------------------------------------------------------------------------

constexpr char kQ3Explicit[] = R"(
  for $s in //sale
  group by $s/region into $region,
           year-from-dateTime($s/timestamp) into $year
  nest $s into $region-sales
  let $region-sum := round-half-to-even(sum( $region-sales/(quantity * price) ), 2)
  order by $year, $region
  return
    for $s in $region-sales
    group by $s/state into $state
    nest $s into $state-sales
    let $state-sum := round-half-to-even(sum( $state-sales/(quantity * price) ), 2)
    order by $state
    return
      <summary>
        <year>{$year}</year>{$region, $state}
        <state-sales>{ $state-sum }</state-sales>
        <region-sales>{ $region-sum }</region-sales>
        <state-percentage>
          { round-half-to-even($state-sum * 100 div $region-sum, 1) }
        </state-percentage>
      </summary>
)";

constexpr char kQ3Naive[] = R"(
  for $year in distinct-values(//sale/year-from-dateTime(timestamp))
  for $region in distinct-values(//sale/region)
  let $region-sales := //sale[region = $region and
                        year-from-dateTime(timestamp) = $year]
  let $region-sum := round-half-to-even(sum( $region-sales/(quantity * price) ), 2)
  for $state in distinct-values($region-sales/state)
  let $state-sales := $region-sales[state = $state]
  let $state-sum := round-half-to-even(sum( $state-sales/(quantity * price) ), 2)
  order by $year, $region, $state
  return <summary>
        <year>{ $year }</year>
        <region>{ $region }</region>
        <state>{ $state }</state>
        <state-sales>{ $state-sum }</state-sales>
        <region-sales>{ $region-sum }</region-sales>
        <state-percentage>
          { round-half-to-even($state-sum * 100 div $region-sum, 1) }
        </state-percentage>
      </summary>
)";

TEST_F(PaperQueriesTest, Q3ExplicitSummaries) {
  std::string out = Run(*sales_, kQ3Explicit);
  EXPECT_EQ(CountOccurrences(out, "<summary>"), 5);
  // 2004 / West / CA: 299.70 of 337.20 = 88.9%.
  EXPECT_NE(out.find("<state-sales>299.7</state-sales>"), std::string::npos);
  EXPECT_NE(out.find("<region-sales>337.2</region-sales>"), std::string::npos);
  EXPECT_NE(out.find("88.9"), std::string::npos);
}

TEST_F(PaperQueriesTest, Q3BothFormulationsAgree) {
  std::string explicit_out = Run(*sales_, kQ3Explicit);
  std::string naive_out = Run(*sales_, kQ3Naive);
  // Same summaries in the same order (year, region, state); the naive text
  // differs only in whitespace-free construction, so compare per-element.
  for (const char* fragment :
       {"<state-sales>299.7</state-sales>", "<state-sales>37.5</state-sales>",
        "<state-sales>96</state-sales>", "<state-sales>29.97</state-sales>",
        "<state-sales>52.5</state-sales>"}) {
    EXPECT_NE(explicit_out.find(fragment), std::string::npos) << fragment;
    EXPECT_NE(naive_out.find(fragment), std::string::npos) << fragment;
  }
  EXPECT_EQ(CountOccurrences(naive_out, "<summary>"), 5);
}

// ---------------------------------------------------------------------------
// Q4 — post-group let and where.
// ---------------------------------------------------------------------------

TEST_F(PaperQueriesTest, Q4PostGroupLetAndWhere) {
  std::string out = Run(*bib_, R"(
    for $b in //book
    group by $b/publisher into $pub nest $b/price into $prices
    let $avgprice := avg($prices)
    where $avgprice > 100
    order by $avgprice descending
    return
      <expensive-publisher>
        { $pub }
        <avg-price> {$avgprice} </avg-price>
      </expensive-publisher>
  )");
  // Only the publisher-less group (the 120.00 self-published book) exceeds 100.
  EXPECT_EQ(CountOccurrences(out, "<expensive-publisher>"), 1);
  EXPECT_NE(out.find("120"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Q5 — grouping with no nest clause (SELECT DISTINCT).
// ---------------------------------------------------------------------------

TEST_F(PaperQueriesTest, Q5DistinctPairs) {
  std::string out = Run(*bib_, R"(
    for $b in //book
    group by $b/publisher into $pub, $b/title into $title
    order by $pub, $title
    return <pair> {$pub, $title} </pair>
  )");
  EXPECT_EQ(CountOccurrences(out, "<pair>"), 7);
}

// ---------------------------------------------------------------------------
// Q6 — count of nested titles per year.
// ---------------------------------------------------------------------------

TEST_F(PaperQueriesTest, Q6YearlyReport) {
  std::string out = Run(*bib_, R"(
    for $b in //book
    group by $b/year into $year
    nest $b/title into $titles
    order by $year
    return
      <yearly-report>
        { $year}
        <book-count> {count($titles)} </book-count>
        <title-list> {$titles} </title-list>
      </yearly-report>
  )");
  EXPECT_EQ(CountOccurrences(out, "<yearly-report>"), 2);
  EXPECT_NE(out.find("<book-count>4</book-count>"), std::string::npos);
  EXPECT_NE(out.find("<book-count>3</book-count>"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Q7 — hierarchy inversion; variable-name rebinding in the nest clause.
// ---------------------------------------------------------------------------

TEST_F(PaperQueriesTest, Q7HierarchyInversion) {
  std::string out = Run(*bib_, R"(
    for $b in //book
    group by $b/publisher into $pub nest $b into $b
    order by $pub
    return
      <publisher>
        <name> {string($pub)} </name>
        <books> {$b} </books>
      </publisher>
  )");
  // Three groups; the publisher-less group's name serializes as <name/>.
  EXPECT_EQ(CountOccurrences(out, "<name"), 3);
  EXPECT_NE(out.find("<name>Morgan Kaufmann</name>"), std::string::npos);
  // The Morgan Kaufmann group nests 5 complete book elements.
  EXPECT_EQ(CountOccurrences(out, "<book>"), 7);
}

// ---------------------------------------------------------------------------
// Q8 — moving window over a nest ordered by timestamp.
// ---------------------------------------------------------------------------

TEST_F(PaperQueriesTest, Q8MovingWindow) {
  std::string out = Run(*sales_, R"(
    for $s in //sale
    group by $s/region into $region
    nest $s order by $s/timestamp into $rs
    order by $region
    return
      <region name="{string($region)}">
        {for $s1 at $i in $rs
         return
           <sale>
             {$s1/timestamp}
             <sale-amount>{$s1/quantity * $s1/price}</sale-amount>
             <previous-ten-sales>
               {sum(for $s2 at $j in $rs
                    where $j >= $i - 10 and $j < $i
                    return $s2/quantity * $s2/price)}
             </previous-ten-sales>
           </sale>}
      </region>
  )");
  EXPECT_EQ(CountOccurrences(out, "<region name="), 2);
  // West in timestamp order: 52.50, 99.90, 37.50, 199.80. The third sale's
  // previous-ten window holds 52.50 + 99.90 = 152.40.
  EXPECT_NE(out.find("<previous-ten-sales>152.4</previous-ten-sales>"),
            std::string::npos);
  // The first sale of each region has an empty window: sum(()) = 0.
  EXPECT_NE(out.find("<previous-ten-sales>0</previous-ten-sales>"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Q9 / Q9a / Q9b — input vs output numbering.
// ---------------------------------------------------------------------------

TEST_F(PaperQueriesTest, Q9InputNumbering) {
  std::string out = Run(*bib_, R"(
    for $b at $i in //book[author = "Jim Melton"]
    return <book><number>{$i}</number>{$b/title}</book>
  )");
  EXPECT_NE(out.find("<number>1</number><title>Understanding the New SQL"),
            std::string::npos);
  EXPECT_NE(
      out.find("<number>2</number><title>Understanding SQL and Java Together"),
      std::string::npos);
}

TEST_F(PaperQueriesTest, Q9aInputNumbersDoNotFollowOutputOrder) {
  Sequence result = Eval(*bib_, R"(
    for $b at $i in //book[author = "Jim Melton"]
    order by $b/price ascending
    return <book><number>{$i}</number>{$b/title, $b/price}</book>
  )");
  ASSERT_EQ(result.size(), 2u);
  // Cheapest book first (49.95) but it carries input number 2.
  std::string first = SerializeSequence({result[0]});
  EXPECT_NE(first.find("<number>2</number>"), std::string::npos);
  EXPECT_NE(first.find("49.95"), std::string::npos);
}

TEST_F(PaperQueriesTest, Q9bOutputNumberingRanks) {
  std::string out = Run(*bib_, R"(
    let $ranked :=
      (for $b in //book[author = "Jim Melton"]
       order by $b/price descending
       return at $i
         <book><rank>{$i}</rank>{$b/title, $b/price}</book>)
    return $ranked[rank <= 3]
  )");
  EXPECT_NE(out.find("<rank>1</rank><title>Understanding the New SQL"),
            std::string::npos);
  EXPECT_NE(
      out.find("<rank>2</rank><title>Understanding SQL and Java Together"),
      std::string::npos);
}

TEST_F(PaperQueriesTest, Q9bOldSyntaxWorkaroundAgrees) {
  // The pre-extension formulation from Section 4 (reorder, renumber with a
  // for-at over the materialized stream).
  std::string workaround = Run(*bib_, R"(
    let $ranked-books :=
      (for $b in //book[author = "Jim Melton"]
       order by $b/price descending
       return $b)
    return
      (for $b at $i in $ranked-books
       where $i <= 3
       return
         <book>
           <rank>{$i}</rank>
           {$b/title, $b/price}
         </book> )
  )");
  std::string extension = Run(*bib_, R"(
    for $b in //book[author = "Jim Melton"]
    order by $b/price descending
    return at $i
      <book><rank>{$i}</rank>{$b/title, $b/price}</book>
  )");
  EXPECT_EQ(workaround, extension);
}

// ---------------------------------------------------------------------------
// Q10 — grouping + output numbering combined.
// ---------------------------------------------------------------------------

TEST_F(PaperQueriesTest, Q10MonthlyRanks) {
  std::string out = Run(*sales_, R"(
    for $s in //sale
    group by year-from-dateTime($s/timestamp) into $year,
             month-from-dateTime($s/timestamp) into $month
    nest $s into $month-sales
    order by $year, $month
    return
      <monthly-report year="{$year}" month="{$month}">
        {for $ms in $month-sales
         group by $ms/region into $region
         nest $ms/quantity * $ms/price into $sales-amounts
         let $sum := sum($sales-amounts)
         order by $sum descending
         return at $rank
           <regional-results>
             <rank> {$rank} </rank>
             { $region }
             <total-sales> {$sum} </total-sales>
           </regional-results>}
      </monthly-report>
  )");
  EXPECT_EQ(CountOccurrences(out, "<monthly-report"), 6);
  EXPECT_EQ(CountOccurrences(out, "<rank>1</rank>"), 6);
  EXPECT_NE(out.find("month=\"11\""), std::string::npos);  // 2003-11
}

// ---------------------------------------------------------------------------
// Q11 — rollup over a ragged hierarchy via a membership function.
// ---------------------------------------------------------------------------

constexpr char kQ11WithUserPaths[] = R"(
  declare function local:paths($es as element()*) as xs:string* {
    for $e in $es
    let $name := string(node-name($e))
    return ($name,
            for $p in local:paths($e/*) return concat($name, "/", $p))
  };
  for $b in //book
  for $c in local:paths($b/categories/*)
  group by $c into $category
  nest $b/price into $prices
  order by $category
  return <result><category>{$category}</category>
          <avg-price>{avg($prices)}</avg-price></result>
)";

TEST_F(PaperQueriesTest, Q11RaggedRollupUserFunction) {
  std::string out = Run(*categorized_, kQ11WithUserPaths);
  EXPECT_NE(out.find("<category>software</category>"), std::string::npos);
  EXPECT_NE(out.find("<category>software/db</category>"), std::string::npos);
  EXPECT_NE(out.find("<category>software/db/concurrency</category>"),
            std::string::npos);
  EXPECT_NE(out.find("<category>software/distributed</category>"),
            std::string::npos);
  EXPECT_NE(out.find("<category>anthology</category>"), std::string::npos);
  // software: both books -> (59 + 65) / 2 = 62 (the paper's example output).
  EXPECT_NE(out.find("<category>software</category><avg-price>62</avg-price>"),
            std::string::npos)
      << out;
}

TEST_F(PaperQueriesTest, Q11BuiltinPathsAgrees) {
  std::string user = Run(*categorized_, kQ11WithUserPaths);
  std::string builtin = Run(*categorized_, R"(
    for $b in //book
    for $c in xqa:paths($b/categories/*)
    group by $c into $category
    nest $b/price into $prices
    order by $category
    return <result><category>{$category}</category>
            <avg-price>{avg($prices)}</avg-price></result>
  )");
  EXPECT_EQ(user, builtin);
}

// ---------------------------------------------------------------------------
// Q12 — datacube via the powerset membership function.
// ---------------------------------------------------------------------------

TEST_F(PaperQueriesTest, Q12Datacube) {
  std::string out = Run(*categorized_, R"(
    for $b in //book
    let $pub := if (exists($b/publisher)) then $b/publisher else <publisher/>
    for $d in xqa:cube(($pub, $b/year))
    group by $d into $key
    nest $b/price into $prices
    return <result>{$key/*}<avg-price>{avg($prices)}</avg-price></result>
  )");
  // Two books, same publisher, years 1993 and 1998. Subsets: {} {pub} {year}
  // {pub,year} -> 1 + 1 + 2 + 2 = 6 cube groups.
  EXPECT_EQ(CountOccurrences(out, "<result>"), 6);
  // Overall average: (59 + 65) / 2 = 62.
  EXPECT_NE(out.find("<result><avg-price>62</avg-price></result>"),
            std::string::npos);
  // by (publisher, year) = (MK, 1998): 65.
  EXPECT_NE(out.find("<publisher>Morgan Kaufmann</publisher><year>1998</year>"
                     "<avg-price>65</avg-price>"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Figure 1 / Figure 2 — post-group variable bindings.
// ---------------------------------------------------------------------------

TEST_F(PaperQueriesTest, Figure1BindingsAfterGroupBy) {
  // Verify the shape of the Q1 tuple stream after group by: grouping vars
  // hold representative elements, the nesting var the merged net prices.
  Sequence result = Eval(*bib_, R"(
    for $b in //book
    group by $b/publisher into $p, $b/year into $y
    nest $b/price into $prices
    where string($p) = "Morgan Kaufmann" and $y = 1993
    return count($prices)
  )");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].atomic().AsInteger(), 3);  // 65.00, 43.00, 54.95
}

TEST_F(PaperQueriesTest, Figure2RegionYearBinding) {
  Sequence result = Eval(*sales_, R"(
    for $s in //sale
    group by $s/region into $region,
             year-from-dateTime($s/timestamp) into $year
    nest $s into $region-sales
    let $region-sum := round-half-to-even(sum( $region-sales/(quantity * price) ), 2)
    where string($region) = "West" and $year = 2004
    return $region-sum
  )");
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].atomic().ToLexical(), "337.2");
}

// ---------------------------------------------------------------------------
// Table 1 — the experiment's query templates agree on results.
// ---------------------------------------------------------------------------

TEST_F(PaperQueriesTest, Table1TemplatesAgreeOneElement) {
  workload::OrderConfig config;
  config.num_orders = 150;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  std::string with_groupby = Run(doc, R"(
    for $litem in //order/lineitem
    group by $litem/shipmode into $a
    nest $litem into $items
    order by $a
    return <r>{string($a), count($items)}</r>
  )");
  std::string without_groupby = Run(doc, R"(
    for $a in distinct-values(//order/lineitem/shipmode)
    let $items := for $i in //order/lineitem
                  where $i/shipmode = $a
                  return $i
    order by $a
    return <r>{string($a), count($items)}</r>
  )");
  EXPECT_EQ(with_groupby, without_groupby);
  EXPECT_EQ(CountOccurrences(with_groupby, "<r>"), 7);  // shipmode cardinality
}

TEST_F(PaperQueriesTest, Table1TemplatesAgreeTwoElements) {
  workload::OrderConfig config;
  config.num_orders = 120;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  std::string with_groupby = Run(doc, R"(
    for $litem in //order/lineitem
    group by $litem/shipinstruct into $a, $litem/shipmode into $b
    nest $litem into $items
    order by $a, $b
    return <r>{string($a), string($b), count($items)}</r>
  )");
  std::string without_groupby = Run(doc, R"(
    for $a in distinct-values(//order/lineitem/shipinstruct),
        $b in distinct-values(//order/lineitem/shipmode)
    let $items := for $i in //order/lineitem
                  where $i/shipinstruct = $a and $i/shipmode = $b
                  return $i
    where exists($items)
    order by $a, $b
    return <r>{string($a), string($b), count($items)}</r>
  )");
  EXPECT_EQ(with_groupby, without_groupby);
}

}  // namespace
}  // namespace xqa

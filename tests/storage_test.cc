// Durable corpus storage (docs/STORAGE.md): checksum vectors, file I/O
// primitives, the document codec, segment/manifest/journal formats, the
// journal torn-tail table, scrub corruption detection, and end-to-end
// recovery through CollectionStore and QueryService. Suites are prefixed
// "Storage" so the TSan CI job's regex picks up the concurrency test.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/crc32c.h"
#include "base/error.h"
#include "base/file_io.h"
#include "base/json_escape.h"
#include "service/query_service.h"
#include "storage/doc_codec.h"
#include "storage/durable_store.h"
#include "storage/format.h"
#include "storage/journal.h"
#include "storage/manifest.h"
#include "storage/segment.h"
#include "xdm/json.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace xqa {
namespace {

using service::CollectionStore;
using service::QueryService;
using service::Request;
using service::Response;
using service::ServiceOptions;

std::string MakeTempDir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "xqa_storage_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string ReadAll(const std::string& path) { return ReadFileToString(path); }

void WriteRaw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

void FlipByte(const std::string& path, size_t offset) {
  std::string bytes = ReadAll(path);
  ASSERT_LT(offset, bytes.size());
  bytes[offset] = static_cast<char>(bytes[offset] ^ 0x40);
  WriteRaw(path, bytes);
}

void TruncateFile(const std::string& path, uint64_t size) {
  std::filesystem::resize_file(path, size);
}

DocumentPtr Doc(const std::string& xml) {
  DocumentPtr document = ParseXml(xml);
  if (!document->sealed()) document->SealOrder();
  return document;
}

// --- CRC32C -----------------------------------------------------------------

TEST(StorageCrc32cTest, KnownVectors) {
  // RFC 3720 appendix test vector for CRC32C (Castagnoli).
  EXPECT_EQ(Crc32c(std::string_view("123456789")), 0xE3069283u);
  EXPECT_EQ(Crc32c(std::string_view("")), 0u);
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(std::string_view(zeros)), 0x8A9136AAu);
}

TEST(StorageCrc32cTest, StreamingMatchesOneShot) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t one_shot = Crc32c(std::string_view(data));
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, one_shot) << "split at " << split;
  }
}

TEST(StorageCrc32cTest, DetectsSingleBitFlips) {
  std::string data = "sixteen bytes!!!";
  uint32_t clean = Crc32c(std::string_view(data));
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = data;
      flipped[i] = static_cast<char>(flipped[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(std::string_view(flipped)), clean);
    }
  }
}

// --- JSON escaping ----------------------------------------------------------

TEST(StorageJsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string_view("\x01", 1)), "\\u0001");
  // Multi-byte UTF-8 passes through untouched.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
}

// --- File I/O ---------------------------------------------------------------

TEST(StorageFileIoTest, WriteFileDurableRoundtripAndOverwrite) {
  std::string dir = MakeTempDir("file_io");
  std::string path = dir + "/blob";
  WriteFileDurable(path, "first", FsyncPolicy::kNever);
  EXPECT_EQ(ReadAll(path), "first");
  WriteFileDurable(path, "second version", FsyncPolicy::kAlways);
  EXPECT_EQ(ReadAll(path), "second version");
  // The temp file never survives a successful commit.
  for (const std::string& name : ListDirectory(dir)) {
    EXPECT_EQ(name.find(".tmp"), std::string::npos) << name;
  }
}

TEST(StorageFileIoTest, AppendFileRoundtripAndTruncatedReopen) {
  std::string dir = MakeTempDir("append");
  std::string path = dir + "/log";
  {
    AppendFile file;
    file.Create(path, "HDR", FsyncPolicy::kNever);
    file.Append("aaaa", FsyncPolicy::kNever);
    file.Append("bbbb", FsyncPolicy::kAlways);
    EXPECT_EQ(file.size(), 11u);
    EXPECT_FALSE(file.broken());
  }
  EXPECT_EQ(ReadAll(path), "HDRaaaabbbb");
  {
    // Reopen truncated to the "valid prefix" — the torn-tail cut.
    AppendFile file;
    file.OpenTruncated(path, 7);
    file.Append("cc", FsyncPolicy::kNever);
    EXPECT_EQ(file.size(), 9u);
  }
  EXPECT_EQ(ReadAll(path), "HDRaaaacc");
}

TEST(StorageFileIoTest, ReadMissingFileThrowsStorageError) {
  try {
    ReadFileToString("/nonexistent/definitely/missing");
    FAIL() << "expected kXQSV0007";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0007);
  }
}

// --- Document codec ---------------------------------------------------------

TEST(StorageDocCodecTest, RoundtripsSerializationByteIdentically) {
  const char* cases[] = {
      "<doc/>",
      "<doc><id>42</id><cat>a</cat></doc>",
      "<o k=\"1\" j=\"two\"><l m=\"AIR\">5</l><l m=\"RAIL\">7</l></o>",
      "<r><!-- note --><?pi data?>text<e/>tail</r>",
      "<a><b><c><d><e>deep</e></d></c></b></a>",
  };
  for (const char* xml : cases) {
    DocumentPtr original = Doc(xml);
    std::string blob;
    storage::EncodeDocument(*original, &blob);
    DocumentPtr decoded = storage::DecodeDocument(blob);
    ASSERT_TRUE(decoded->sealed());
    EXPECT_EQ(SerializeNode(decoded->root()), SerializeNode(original->root()))
        << xml;
    EXPECT_EQ(decoded->node_count(), original->node_count());
  }
}

TEST(StorageDocCodecTest, CorruptBlobsThrowTypedErrorNeverCrash) {
  DocumentPtr original = Doc("<doc><id>42</id><v a=\"x\">7</v></doc>");
  std::string blob;
  storage::EncodeDocument(*original, &blob);
  // Every truncation must fail cleanly (kXQSV0007), never read out of
  // bounds — the hardening ASan verifies in CI.
  for (size_t len = 0; len < blob.size(); ++len) {
    try {
      storage::DecodeDocument(std::string_view(blob.data(), len));
      // Some prefixes may decode if they form a complete blob; that is fine
      // only when the full record count was reached — the codec checks, so
      // reaching here without a throw means the prefix was self-consistent.
    } catch (const XQueryError& error) {
      EXPECT_EQ(error.code(), ErrorCode::kXQSV0007);
    }
  }
  // Flipping each byte either still decodes (a content byte) or throws the
  // typed error; it must never crash.
  for (size_t i = 0; i < blob.size(); ++i) {
    std::string mutated = blob;
    mutated[i] = static_cast<char>(mutated[i] ^ 0xFF);
    try {
      storage::DecodeDocument(mutated);
    } catch (const XQueryError& error) {
      EXPECT_EQ(error.code(), ErrorCode::kXQSV0007);
    }
  }
}

// --- Segments ---------------------------------------------------------------

std::vector<storage::SegmentEntry> SampleEntries() {
  std::vector<storage::SegmentEntry> entries;
  entries.push_back({"books", "b1.xml", Doc("<book><t>A</t></book>")});
  entries.push_back({"books", "b2.xml", Doc("<book><t>B</t></book>")});
  entries.push_back({"orders", "o1.xml", Doc("<order k=\"1\"/>")});
  return entries;
}

TEST(StorageSegmentTest, RoundtripsEntriesInOrder) {
  std::string dir = MakeTempDir("segment");
  std::string path = dir + "/seg";
  WriteFileDurable(path, storage::BuildSegmentBytes(3, SampleEntries()),
                   FsyncPolicy::kNever);

  std::vector<storage::SegmentEntry> read;
  std::function<void(storage::SegmentEntry)> sink =
      [&](storage::SegmentEntry entry) { read.push_back(std::move(entry)); };
  storage::SegmentReadStats stats = storage::ReadSegmentFile(path, 3, &sink);
  EXPECT_TRUE(stats.header_valid);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.blocks_ok, 3u);
  EXPECT_EQ(stats.blocks_corrupt, 0u);
  ASSERT_EQ(read.size(), 3u);
  EXPECT_EQ(read[0].collection, "books");
  EXPECT_EQ(read[0].uri, "b1.xml");
  EXPECT_EQ(SerializeNode(read[2].document->root()), "<order k=\"1\"/>");
}

TEST(StorageSegmentTest, WrongShardOrMagicIsQuarantined) {
  std::string dir = MakeTempDir("segment_hdr");
  std::string path = dir + "/seg";
  WriteFileDurable(path, storage::BuildSegmentBytes(3, SampleEntries()),
                   FsyncPolicy::kNever);
  storage::SegmentReadStats stats =
      storage::ReadSegmentFile(path, /*expected_shard=*/4, nullptr);
  EXPECT_FALSE(stats.header_valid);
  EXPECT_TRUE(stats.truncated);
}

TEST(StorageSegmentTest, FlippedByteSkipsOnlyThatBlock) {
  std::string dir = MakeTempDir("segment_flip");
  std::string path = dir + "/seg";
  std::string bytes = storage::BuildSegmentBytes(0, SampleEntries());
  WriteFileDurable(path, bytes, FsyncPolicy::kNever);
  // Header is 16 bytes, then [len][crc][payload]: flip a byte inside the
  // first block's payload.
  FlipByte(path, 16 + 8 + 4);

  std::vector<storage::SegmentEntry> read;
  std::function<void(storage::SegmentEntry)> sink =
      [&](storage::SegmentEntry entry) { read.push_back(std::move(entry)); };
  storage::SegmentReadStats stats = storage::ReadSegmentFile(path, 0, &sink);
  EXPECT_TRUE(stats.header_valid);
  EXPECT_FALSE(stats.truncated);  // framing intact: only the block is lost
  EXPECT_EQ(stats.blocks_corrupt, 1u);
  EXPECT_EQ(stats.blocks_ok, 2u);
  ASSERT_EQ(read.size(), 2u);
  EXPECT_EQ(read[0].uri, "b2.xml");
}

TEST(StorageSegmentTest, TruncationAbandonsTailOnly) {
  std::string dir = MakeTempDir("segment_trunc");
  std::string path = dir + "/seg";
  std::string bytes = storage::BuildSegmentBytes(0, SampleEntries());
  WriteFileDurable(path, bytes, FsyncPolicy::kNever);
  TruncateFile(path, bytes.size() - 3);  // mid final block

  storage::SegmentReadStats stats = storage::ReadSegmentFile(path, 0, nullptr);
  EXPECT_TRUE(stats.header_valid);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.blocks_ok, 2u);
}

// --- Manifests --------------------------------------------------------------

storage::Manifest SampleManifest(uint64_t seq) {
  storage::Manifest manifest;
  manifest.seq = seq;
  manifest.corpus_version = 40 + seq;
  manifest.shard_count = 4;
  manifest.journal_file = storage::JournalFileName(seq);
  manifest.segments.push_back(
      {2, storage::SegmentFileName(seq, 2), 123, 0xDEADBEEF});
  return manifest;
}

TEST(StorageManifestTest, RoundtripAndNewestWins) {
  std::string dir = MakeTempDir("manifest");
  storage::WriteManifestFile(dir, SampleManifest(1), FsyncPolicy::kNever);
  storage::WriteManifestFile(dir, SampleManifest(2), FsyncPolicy::kAlways);

  size_t quarantined = 0;
  std::optional<storage::Manifest> newest =
      storage::FindNewestValidManifest(dir, &quarantined);
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->seq, 2u);
  EXPECT_EQ(newest->corpus_version, 42u);
  EXPECT_EQ(newest->shard_count, 4u);
  EXPECT_EQ(newest->journal_file, storage::JournalFileName(2));
  ASSERT_EQ(newest->segments.size(), 1u);
  EXPECT_EQ(newest->segments[0].shard, 2u);
  EXPECT_EQ(newest->segments[0].file_crc, 0xDEADBEEFu);
  EXPECT_EQ(quarantined, 0u);
}

TEST(StorageManifestTest, CorruptNewestFallsBackAndCounts) {
  std::string dir = MakeTempDir("manifest_fallback");
  storage::WriteManifestFile(dir, SampleManifest(1), FsyncPolicy::kNever);
  storage::WriteManifestFile(dir, SampleManifest(2), FsyncPolicy::kNever);
  FlipByte(dir + "/" + storage::ManifestFileName(2), 12);

  size_t quarantined = 0;
  std::optional<storage::Manifest> newest =
      storage::FindNewestValidManifest(dir, &quarantined);
  ASSERT_TRUE(newest.has_value());
  EXPECT_EQ(newest->seq, 1u);  // fell back past the corrupt generation
  EXPECT_EQ(quarantined, 1u);
}

// --- Journal torn-tail table ------------------------------------------------

struct JournalFixture {
  std::string path;
  std::vector<size_t> record_offsets;  ///< start offset of each record
  size_t total = 0;
};

JournalFixture BuildJournal(const std::string& dir, int records) {
  JournalFixture fixture;
  fixture.path = dir + "/journal";
  std::string bytes = storage::BuildJournalHeader(7);
  for (int i = 0; i < records; ++i) {
    fixture.record_offsets.push_back(bytes.size());
    DocumentPtr doc = Doc("<d n=\"" + std::to_string(i) + "\"/>");
    bytes += storage::FrameJournalRecord(
        storage::EncodePutRecord("c", "u" + std::to_string(i), *doc));
  }
  fixture.total = bytes.size();
  std::ofstream out(fixture.path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return fixture;
}

TEST(StorageTornTailTest, TruncationTableRecoversLongestValidPrefix) {
  std::string dir = MakeTempDir("torn_tail");
  // Truncation points inside the THIRD record (index 2): the valid prefix
  // must always be exactly the first two records.
  struct Case {
    const char* name;
    // offset into record 2 at which the file ends
    size_t offset_in_record;
  };
  // Record layout: [u32 len][payload][u32 crc].
  const Case cases[] = {
      {"mid_length_prefix", 2},
      {"start_of_payload", 4},
      {"mid_payload", 11},
      {"end_of_payload_no_checksum", 0xFFFF},  // patched below
      {"mid_checksum", 0xFFFE},                // patched below
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    JournalFixture fixture = BuildJournal(dir, 3);
    size_t record_start = fixture.record_offsets[2];
    size_t record_size = fixture.total - record_start;
    size_t cut = c.offset_in_record;
    if (cut == 0xFFFF) cut = record_size - 4;  // all payload, no checksum
    if (cut == 0xFFFE) cut = record_size - 2;  // half the checksum
    TruncateFile(fixture.path, record_start + cut);

    std::vector<std::string> applied;
    std::function<void(storage::JournalRecord)> handler =
        [&](storage::JournalRecord record) {
          ASSERT_EQ(record.documents.size(), 1u);
          applied.push_back(record.documents[0].first);
        };
    storage::JournalScanResult result =
        storage::ScanJournalFile(fixture.path, &handler);
    EXPECT_TRUE(result.header_valid);
    EXPECT_EQ(result.base_version, 7u);
    EXPECT_EQ(result.records_valid, 2u);
    EXPECT_EQ(result.valid_prefix_bytes, record_start);
    EXPECT_EQ(result.dropped_bytes, cut);
    ASSERT_EQ(applied.size(), 2u);
    EXPECT_EQ(applied[0], "u0");
    EXPECT_EQ(applied[1], "u1");
  }
}

TEST(StorageTornTailTest, ChecksumMismatchEndsThePrefix) {
  std::string dir = MakeTempDir("torn_crc");
  JournalFixture fixture = BuildJournal(dir, 3);
  // Corrupt one payload byte of record 1: records 0 is the prefix; record 2
  // is after the violation and must NOT be applied even though it is intact
  // (boundaries past a bad record are not trusted).
  FlipByte(fixture.path, fixture.record_offsets[1] + 6);
  size_t applied = 0;
  std::function<void(storage::JournalRecord)> handler =
      [&](storage::JournalRecord) { ++applied; };
  storage::JournalScanResult result =
      storage::ScanJournalFile(fixture.path, &handler);
  EXPECT_EQ(result.records_valid, 1u);
  EXPECT_EQ(applied, 1u);
  EXPECT_EQ(result.valid_prefix_bytes, fixture.record_offsets[1]);
  EXPECT_GT(result.dropped_bytes, 0u);
}

TEST(StorageTornTailTest, TornHeaderTrustsNothing) {
  std::string dir = MakeTempDir("torn_header");
  JournalFixture fixture = BuildJournal(dir, 2);
  FlipByte(fixture.path, 2);  // inside the magic
  storage::JournalScanResult result =
      storage::ScanJournalFile(fixture.path, nullptr);
  EXPECT_FALSE(result.header_valid);
  EXPECT_EQ(result.records_valid, 0u);
  EXPECT_EQ(result.dropped_bytes, fixture.total);
}

// --- End-to-end recovery ----------------------------------------------------

ServiceOptions DurableOptions(const std::string& dir) {
  ServiceOptions options;
  options.worker_threads = 2;
  options.collection_shards = 4;
  options.data_dir = dir;
  // Clean-exit recovery is what these tests exercise; skipping fsync keeps
  // the suite fast. The chaos suite runs kAlways paths as well.
  options.storage_fsync = FsyncPolicy::kNever;
  return options;
}

std::string QueryCorpus(QueryService& service) {
  Request request;
  request.query =
      "for $d in collection('books') return <t>{$d/book/t/text()}</t>";
  request.provide_collections = true;
  Response response = service.Execute(request);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  return response.result;
}

TEST(StorageRecoveryTest, JournalOnlyRestartIsByteIdentical) {
  std::string dir = MakeTempDir("recover_journal");
  std::string before;
  uint64_t version = 0;
  {
    QueryService service(DurableOptions(dir));
    CollectionStore& store = service.collections();
    store.Put("books", "b1.xml", Doc("<book><t>Analytics</t></book>"));
    store.Put("books", "b2.xml", Doc("<book><t>XQuery</t></book>"));
    store.Put("books", "gone.xml", Doc("<book><t>Doomed</t></book>"));
    store.Remove("books", "gone.xml");
    before = QueryCorpus(service);
    version = store.version();
  }  // no checkpoint: the journal alone must carry the corpus

  QueryService service(DurableOptions(dir));
  EXPECT_TRUE(service.storage_recovery().manifest_found == false);
  EXPECT_EQ(service.storage_recovery().journal_records_applied, 4u);
  EXPECT_EQ(service.collections().version(), version);
  EXPECT_EQ(service.collections().size(), 2u);
  EXPECT_EQ(QueryCorpus(service), before);
}

TEST(StorageRecoveryTest, CheckpointPlusJournalRestartIsByteIdentical) {
  std::string dir = MakeTempDir("recover_checkpoint");
  std::string before;
  uint64_t version = 0;
  {
    QueryService service(DurableOptions(dir));
    CollectionStore& store = service.collections();
    std::vector<CollectionStore::BulkDocument> batch;
    for (int i = 0; i < 20; ++i) {
      batch.push_back({"bulk" + std::to_string(i) + ".xml",
                       "<book><t>v" + std::to_string(i) + "</t></book>"});
    }
    store.BulkLoad("books", batch, /*num_threads=*/2);
    ASSERT_TRUE(service.CheckpointStorage());
    ASSERT_GE(service.storage()->manifest_seq(), 1u);
    // Mutations after the checkpoint land in the new generation's journal.
    store.Put("books", "late.xml", Doc("<book><t>late</t></book>"));
    store.Remove("books", "bulk3.xml");
    before = QueryCorpus(service);
    version = store.version();
  }

  QueryService service(DurableOptions(dir));
  const storage::RecoveryResult& recovery = service.storage_recovery();
  EXPECT_TRUE(recovery.manifest_found);
  EXPECT_EQ(recovery.journal_records_applied, 2u);
  EXPECT_EQ(recovery.segments_quarantined, 0u);
  EXPECT_EQ(recovery.segment_blocks_corrupt, 0u);
  EXPECT_EQ(service.collections().version(), version);
  EXPECT_EQ(service.collections().size(), 20u);
  EXPECT_EQ(QueryCorpus(service), before);
}

TEST(StorageRecoveryTest, CheckpointSupersedesOldGenerationFiles) {
  std::string dir = MakeTempDir("recover_gc");
  QueryService service(DurableOptions(dir));
  CollectionStore& store = service.collections();
  store.Put("books", "b1.xml", Doc("<book><t>A</t></book>"));
  ASSERT_TRUE(service.CheckpointStorage());
  store.Put("books", "b2.xml", Doc("<book><t>B</t></book>"));
  ASSERT_TRUE(service.CheckpointStorage());
  EXPECT_EQ(service.storage()->manifest_seq(), 2u);
  // Generation 1 files (manifest, segments, journal) are gone; only
  // generation 2 remains.
  for (const std::string& name : ListDirectory(dir)) {
    uint64_t seq = 0;
    bool parsed = storage::ParseManifestFileName(name, &seq) ||
                  storage::ParseStorageFileSeq(name, &seq);
    ASSERT_TRUE(parsed) << name;
    EXPECT_EQ(seq, 2u) << name;
  }
}

TEST(StorageRecoveryTest, CorruptSegmentIsQuarantinedNotFatal) {
  std::string dir = MakeTempDir("recover_quarantine");
  {
    QueryService service(DurableOptions(dir));
    for (int i = 0; i < 8; ++i) {
      service.collections().Put(
          "books", "b" + std::to_string(i) + ".xml",
          Doc("<book><t>v" + std::to_string(i) + "</t></book>"));
    }
    ASSERT_TRUE(service.CheckpointStorage());
  }
  // Destroy one segment's header entirely.
  std::string victim;
  for (const std::string& name : ListDirectory(dir)) {
    if (name.rfind("seg-", 0) == 0) {
      victim = name;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  FlipByte(dir + "/" + victim, 1);

  QueryService service(DurableOptions(dir));
  const storage::RecoveryResult& recovery = service.storage_recovery();
  EXPECT_TRUE(recovery.manifest_found);
  EXPECT_EQ(recovery.segments_quarantined, 1u);
  EXPECT_LT(service.collections().size(), 8u);  // the shard's docs are lost
  // The service still serves what survived (the query must succeed even
  // over a partially quarantined corpus).
  QueryCorpus(service);
}

TEST(StorageRecoveryTest, ScrubDetectsSingleFlippedByteInSegment) {
  std::string dir = MakeTempDir("scrub_flip");
  QueryService service(DurableOptions(dir));
  for (int i = 0; i < 6; ++i) {
    service.collections().Put(
        "books", "b" + std::to_string(i) + ".xml",
        Doc("<book><t>v" + std::to_string(i) + "</t></book>"));
  }
  ASSERT_TRUE(service.CheckpointStorage());
  storage::ScrubReport clean = service.ScrubStorage();
  EXPECT_TRUE(clean.clean());
  EXPECT_GT(clean.segments_checked, 0u);
  EXPECT_GT(clean.blocks_checked, 0u);

  // Flip one payload byte in one segment; scrub must notice.
  std::string victim;
  for (const std::string& name : ListDirectory(dir)) {
    if (name.rfind("seg-", 0) == 0) victim = name;
  }
  ASSERT_FALSE(victim.empty());
  FlipByte(dir + "/" + victim, 30);
  storage::ScrubReport dirty = service.ScrubStorage();
  EXPECT_FALSE(dirty.clean());
  EXPECT_GE(dirty.blocks_corrupt + dirty.segments_corrupt, 1u);
}

TEST(StorageRecoveryTest, TornJournalTailRecoversPrefixState) {
  std::string dir = MakeTempDir("recover_torn");
  std::vector<std::string> states;  // corpus query result after each put
  std::vector<uint64_t> versions;
  {
    QueryService service(DurableOptions(dir));
    for (int i = 0; i < 4; ++i) {
      service.collections().Put(
          "books", "b" + std::to_string(i) + ".xml",
          Doc("<book><t>v" + std::to_string(i) + "</t></book>"));
      states.push_back(QueryCorpus(service));
      versions.push_back(service.collections().version());
    }
  }
  // Tear the journal mid-way through its final record.
  std::string journal = dir + "/" + storage::JournalFileName(0);
  TruncateFile(journal, FileSizeOf(journal) - 5);

  QueryService service(DurableOptions(dir));
  const storage::RecoveryResult& recovery = service.storage_recovery();
  EXPECT_TRUE(recovery.journal_tail_torn);
  EXPECT_EQ(recovery.journal_records_applied, 3u);
  // The recovered corpus is exactly the pre-crash state at the last intact
  // record — version and bytes.
  EXPECT_EQ(service.collections().version(), versions[2]);
  EXPECT_EQ(QueryCorpus(service), states[2]);
}

TEST(StorageRecoveryTest, MetricsJsonHasValidStorageSection) {
  std::string dir = MakeTempDir("metrics");
  QueryService service(DurableOptions(dir));
  service.collections().Put("books", "b1.xml", Doc("<book><t>A</t></book>"));
  ASSERT_TRUE(service.CheckpointStorage());
  service.ScrubStorage();

  std::string json = service.MetricsJson();
  for (const char* key :
       {"\"storage\"", "\"data_dir\"", "\"manifest_seq\"", "\"recovery\"",
        "\"last_scrub\"", "\"journal_appends\"", "\"checkpoints\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  // The whole scrape must stay parseable JSON.
  EXPECT_NO_THROW(ParseJsonDocument(json));
}

// --- Concurrency (runs under TSan in CI) ------------------------------------

TEST(StorageConcurrencyTest, ParallelDurablePutsRecoverCompletely) {
  std::string dir = MakeTempDir("concurrent");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 16;
  uint64_t version = 0;
  {
    QueryService service(DurableOptions(dir));
    std::vector<std::thread> writers;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&, t] {
        for (int i = 0; i < kPerThread; ++i) {
          std::string uri =
              "t" + std::to_string(t) + "-" + std::to_string(i) + ".xml";
          service.collections().Put(
              "books", uri, Doc("<book><t>" + uri + "</t></book>"));
        }
      });
    }
    for (std::thread& w : writers) w.join();
    EXPECT_EQ(service.collections().size(),
              static_cast<size_t>(kThreads * kPerThread));
    version = service.collections().version();
  }

  QueryService service(DurableOptions(dir));
  EXPECT_EQ(service.collections().size(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(service.collections().version(), version);
  EXPECT_EQ(service.storage_recovery().journal_records_applied,
            static_cast<size_t>(kThreads * kPerThread));
}

}  // namespace
}  // namespace xqa

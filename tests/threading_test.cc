// Thread-compatibility: one PreparedQuery executed concurrently from many
// threads (each Execute gets its own DynamicContext), and independent
// engines compiling in parallel.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "workload/orders.h"

namespace xqa {
namespace {

TEST(Threading, ConcurrentExecutionsOfOnePreparedQuery) {
  Engine engine;
  workload::OrderConfig config;
  config.num_orders = 100;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  PreparedQuery query = engine.Compile(
      "for $l in //lineitem group by $l/shipmode into $m "
      "nest $l into $ls order by string($m) return count($ls)");
  const std::string expected = query.ExecuteToString(doc);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 20; ++i) {
        if (query.ExecuteToString(doc) != expected) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(Threading, ConcurrentCompilation) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t]() {
      Engine engine;
      for (int i = 0; i < 50; ++i) {
        std::string query = "for $x in (1 to " + std::to_string(t + i + 1) +
                            ") group by $x mod 3 into $k "
                            "nest $x into $xs return count($xs)";
        try {
          (void)engine.Compile(query);
        } catch (...) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(Threading, ConcurrentDocumentParsing) {
  workload::OrderConfig config;
  config.num_orders = 30;
  const std::string xml = workload::GenerateOrdersXml(config);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&]() {
      for (int i = 0; i < 10; ++i) {
        DocumentPtr doc = Engine::ParseDocument(xml);
        if (doc->root()->children().empty()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace xqa

#include "base/string_util.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>


namespace xqa {
namespace {

TEST(TrimWhitespace, Basics) {
  EXPECT_EQ(TrimWhitespace("  abc  "), "abc");
  EXPECT_EQ(TrimWhitespace("\t\r\nabc"), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("a b"), "a b");
}

TEST(IsAllWhitespace, Basics) {
  EXPECT_TRUE(IsAllWhitespace(""));
  EXPECT_TRUE(IsAllWhitespace(" \t\r\n"));
  EXPECT_FALSE(IsAllWhitespace(" x "));
}

TEST(CollapseWhitespace, Basics) {
  EXPECT_EQ(CollapseWhitespace("  a   b  "), "a b");
  EXPECT_EQ(CollapseWhitespace("a\t\nb"), "a b");
  EXPECT_EQ(CollapseWhitespace(""), "");
  EXPECT_EQ(CollapseWhitespace("   "), "");
}

TEST(SplitChar, Basics) {
  auto parts = SplitChar("a/b//c", '/');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
  EXPECT_EQ(SplitChar("", ',').size(), 1u);
}

TEST(IsNCName, Basics) {
  EXPECT_TRUE(IsNCName("book"));
  EXPECT_TRUE(IsNCName("year-from-dateTime"));
  EXPECT_TRUE(IsNCName("_x1.2"));
  EXPECT_FALSE(IsNCName(""));
  EXPECT_FALSE(IsNCName("1abc"));
  EXPECT_FALSE(IsNCName("-abc"));
  EXPECT_FALSE(IsNCName("a:b"));  // NCName excludes ':'
}

TEST(FormatDouble, IntegralValues) {
  EXPECT_EQ(FormatDouble(42), "42");
  EXPECT_EQ(FormatDouble(-7), "-7");
  EXPECT_EQ(FormatDouble(0), "0");
  EXPECT_EQ(FormatDouble(-0.0), "-0");
  EXPECT_EQ(FormatDouble(1e10), "10000000000");
}

TEST(FormatDouble, SpecialValues) {
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::quiet_NaN()), "NaN");
  EXPECT_EQ(FormatDouble(std::numeric_limits<double>::infinity()), "INF");
  EXPECT_EQ(FormatDouble(-std::numeric_limits<double>::infinity()), "-INF");
}

TEST(FormatDouble, Fractions) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(-0.25), "-0.25");
  // Round-trips.
  double parsed;
  ASSERT_TRUE(ParseDouble(FormatDouble(0.1), &parsed));
  EXPECT_EQ(parsed, 0.1);
}

TEST(FormatDouble, ExponentForm) {
  std::string s = FormatDouble(1.5e20);
  EXPECT_NE(s.find('E'), std::string::npos);
  double parsed;
  ASSERT_TRUE(ParseDouble(s, &parsed));
  EXPECT_EQ(parsed, 1.5e20);
}

TEST(ParseInteger, Basics) {
  int64_t v;
  EXPECT_TRUE(ParseInteger("123", &v));
  EXPECT_EQ(v, 123);
  EXPECT_TRUE(ParseInteger("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_TRUE(ParseInteger("+7", &v));
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(ParseInteger("  99  ", &v));
  EXPECT_EQ(v, 99);
}

TEST(ParseInteger, Limits) {
  int64_t v;
  EXPECT_TRUE(ParseInteger("9223372036854775807", &v));
  EXPECT_EQ(v, INT64_MAX);
  EXPECT_TRUE(ParseInteger("-9223372036854775808", &v));
  EXPECT_EQ(v, INT64_MIN);
  EXPECT_FALSE(ParseInteger("9223372036854775808", &v));
  EXPECT_FALSE(ParseInteger("-9223372036854775809", &v));
}

TEST(ParseInteger, Rejects) {
  int64_t v;
  EXPECT_FALSE(ParseInteger("", &v));
  EXPECT_FALSE(ParseInteger("12.5", &v));
  EXPECT_FALSE(ParseInteger("abc", &v));
  EXPECT_FALSE(ParseInteger("-", &v));
}

TEST(ParseDouble, XQueryForms) {
  double v;
  EXPECT_TRUE(ParseDouble("NaN", &v));
  EXPECT_TRUE(std::isnan(v));
  EXPECT_TRUE(ParseDouble("INF", &v));
  EXPECT_TRUE(std::isinf(v) && v > 0);
  EXPECT_TRUE(ParseDouble("-INF", &v));
  EXPECT_TRUE(std::isinf(v) && v < 0);
  EXPECT_TRUE(ParseDouble("1.5e3", &v));
  EXPECT_EQ(v, 1500);
  EXPECT_FALSE(ParseDouble("inf", &v));   // lowercase not XQuery
  EXPECT_FALSE(ParseDouble("nan", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(Escape, TextAndAttribute) {
  EXPECT_EQ(EscapeText("a<b&c>d"), "a&lt;b&amp;c&gt;d");
  EXPECT_EQ(EscapeAttribute("say \"hi\""), "say &quot;hi&quot;");
  EXPECT_EQ(EscapeAttribute("<&>"), "&lt;&amp;&gt;");
}

TEST(Utf8, LengthAndOffsets) {
  EXPECT_EQ(Utf8Length(""), 0u);
  EXPECT_EQ(Utf8Length("abc"), 3u);
  EXPECT_EQ(Utf8Length("héllo"), 5u);
  EXPECT_EQ(Utf8Length("日本語"), 3u);
  EXPECT_EQ(Utf8Length("a\U0001F600b"), 3u);
  EXPECT_EQ(Utf8OffsetOf("héllo", 0), 0u);
  EXPECT_EQ(Utf8OffsetOf("héllo", 1), 1u);
  EXPECT_EQ(Utf8OffsetOf("héllo", 2), 3u);  // é is two bytes
  EXPECT_EQ(Utf8OffsetOf("héllo", 5), 6u);
  EXPECT_EQ(Utf8OffsetOf("héllo", 9), 6u);  // clamped to the byte length
}

TEST(Utf8, DecodeEncodeRoundTrip) {
  const uint32_t codes[] = {0x24, 0xE9, 0x65E5, 0x1F600};
  for (uint32_t code : codes) {
    std::string bytes;
    Utf8Encode(code, &bytes);
    size_t i = 0;
    EXPECT_EQ(Utf8DecodeAt(bytes, &i), code);
    EXPECT_EQ(i, bytes.size());
  }
}

TEST(Utf8, InvalidBytesDecodeAsThemselves) {
  // Lenient policy shared with fn:string-to-codepoints: a truncated lead
  // byte or stray continuation decodes as its own byte value and consumes
  // one byte, so the walk always terminates.
  std::string bad = "a";
  bad.push_back(static_cast<char>(0xC3));  // two-byte lead with no tail
  size_t i = 0;
  EXPECT_EQ(Utf8DecodeAt(bad, &i), static_cast<uint32_t>('a'));
  EXPECT_EQ(Utf8DecodeAt(bad, &i), 0xC3u);
  EXPECT_EQ(i, bad.size());
  EXPECT_EQ(Utf8Length(bad), 2u);
}

}  // namespace
}  // namespace xqa

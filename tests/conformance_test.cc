// Table-driven conformance suite: several hundred (query, expected-result)
// pairs over a fixed document, exercising the full language surface. Each
// case serializes its result (compact form) and compares against the
// expected string. Cases are grouped by area; all run through one
// parameterized harness so failures name the offending query.

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

constexpr char kDoc[] = R"(
<store>
  <inventory>
    <item sku="A1" cat="tea"><name>Green Tea</name><qty>30</qty><price>9.99</price></item>
    <item sku="A2" cat="tea"><name>Black Tea</name><qty>12</qty><price>7.50</price></item>
    <item sku="B1" cat="cup"><name>Mug</name><qty>5</qty><price>4.00</price></item>
    <item sku="B2" cat="cup"><name>Glass</name><qty>0</qty><price>3.25</price></item>
    <item sku="C1"><name>Gift Card</name><qty>100</qty><price>25.00</price></item>
  </inventory>
  <staff>
    <person><name>Ada</name><role>manager</role></person>
    <person><name>Grace</name><role>clerk</role></person>
    <person><name>Edsger</name><role>clerk</role></person>
  </staff>
</store>
)";

struct Case {
  const char* query;
  const char* expected;
};

class Conformance : public ::testing::TestWithParam<Case> {
 protected:
  static void SetUpTestSuite() {
    doc_ = new DocumentPtr(Engine::ParseDocument(kDoc));
  }
  static void TearDownTestSuite() { delete doc_; }
  static DocumentPtr* doc_;
};

DocumentPtr* Conformance::doc_ = nullptr;

TEST_P(Conformance, QueryYieldsExpected) {
  Engine engine;
  EXPECT_EQ(engine.Compile(GetParam().query).ExecuteToString(*doc_),
            GetParam().expected)
      << "query: " << GetParam().query;
}

// --- Arithmetic and numerics --------------------------------------------------

INSTANTIATE_TEST_SUITE_P(Arithmetic, Conformance, ::testing::Values(
    Case{"2 + 3 * 4", "14"},
    Case{"(2 + 3) * 4", "20"},
    Case{"2 - 3 - 4", "-5"},
    Case{"17 idiv 5", "3"},
    Case{"17 mod 5", "2"},
    Case{"-17 idiv 5", "-3"},
    Case{"17 div 5", "3.4"},
    Case{"0.3 - 0.1", "0.2"},
    Case{"2.5 * 2.5", "6.25"},
    Case{"10 div 4", "2.5"},
    Case{"1e2 * 2", "200"},
    Case{"5 + 0.5", "5.5"},
    Case{"-(3 + 4)", "-7"},
    Case{"+5", "5"},
    Case{"abs(-2.5)", "2.5"},
    Case{"floor(-1.1)", "-2"},
    Case{"ceiling(-1.9)", "-1"},
    Case{"round(0.5)", "1"},
    Case{"round(-0.5)", "0"},
    Case{"round-half-to-even(1.5)", "2"},
    Case{"round-half-to-even(0.5)", "0"},
    Case{"number(\"7\") + 1", "8"},
    Case{"string(1 div 0e0)", "INF"},
    Case{"xs:integer(\"010\")", "10"},
    Case{"xs:decimal(2) div 8", "0.25"}));

// --- Comparisons and logic -----------------------------------------------------

INSTANTIATE_TEST_SUITE_P(Comparisons, Conformance, ::testing::Values(
    Case{"1 = 1.0", "true"},
    Case{"1 eq 1.0", "true"},
    Case{"\"a\" < \"b\"", "true"},
    Case{"\"10\" lt \"9\"", "true"},
    Case{"(1, 2) = (2, 3)", "true"},
    Case{"(1, 2) != (1, 2)", "true"},
    Case{"() = ()", "false"},
    Case{"not(() = 1)", "true"},
    Case{"1 < 2 and 2 < 3", "true"},
    Case{"1 > 2 or 2 > 1", "true"},
    Case{"true() and not(false())", "true"},
    Case{"boolean((0))", "false"},
    Case{"boolean(\"false\")", "true"},  // non-empty string EBV
    Case{"(//item)[1] is (//item)[1]", "true"},
    Case{"(//item)[1] is (//item)[2]", "false"},
    Case{"deep-equal(<a><b/></a>, <a><b/></a>)", "true"},
    Case{"deep-equal(<a>1</a>, <a>2</a>)", "false"}));

// --- Paths ----------------------------------------------------------------------

INSTANTIATE_TEST_SUITE_P(Paths, Conformance, ::testing::Values(
    Case{"count(//item)", "5"},
    Case{"count(/store/inventory/item)", "5"},
    Case{"count(//item[@cat])", "4"},
    Case{"count(//item[not(@cat)])", "1"},
    Case{"string(//item[@sku = \"B1\"]/name)", "Mug"},
    Case{"count(//item[qty > 10])", "3"},
    Case{"count(//item[qty = 0])", "1"},
    Case{"string((//item)[2]/@sku)", "A2"},
    Case{"string((//item)[last()]/name)", "Gift Card"},
    Case{"count(//inventory/*)", "5"},
    Case{"count(//*)", "32"},
    Case{"name((//qty)[1]/..)", "item"},
    Case{"count((//qty)[1]/ancestor::*)", "3"},
    Case{"string(//person[role = \"manager\"]/name)", "Ada"},
    Case{"count(//person[role = \"clerk\"])", "2"},
    Case{"string((//item)[1]/following-sibling::item[1]/name)", "Black Tea"},
    Case{"string((//item)[3]/preceding-sibling::item[1]/name)", "Black Tea"},
    Case{"count(//@*)", "9"},
    Case{"count(//text())", "21"},
    Case{"string-join(//item[position() <= 2]/name/text(), \";\")",
         "Green Tea;Black Tea"},
    Case{"sum(//item/(qty * price))", "2909.7"},
    Case{"count(//item/self::item)", "5"},
    Case{"count(//node()) > 40", "true"}));

// --- FLWOR ----------------------------------------------------------------------

INSTANTIATE_TEST_SUITE_P(Flwor, Conformance, ::testing::Values(
    Case{"for $i in 1 to 4 return $i * $i", "1 4 9 16"},
    Case{"for $i in (1, 2), $j in (10, 20) return $i + $j",
         "11 21 12 22"},
    Case{"let $x := (1, 2, 3) return sum($x)", "6"},
    Case{"for $i at $p in (\"a\", \"b\") return $p", "1 2"},
    Case{"for $i in 1 to 10 where $i mod 4 = 1 return $i", "1 5 9"},
    Case{"for $n in //item/name order by string($n) descending "
         "return at $r concat($r, \":\", string($n))",
         "1:Mug 2:Green Tea 3:Glass 4:Gift Card 5:Black Tea"},
    Case{"for $i in //item order by number($i/price) "
         "return string($i/@sku)", "B2 B1 A2 A1 C1"},
    Case{"for $i in //item order by $i/@cat, number($i/price) descending "
         "return string($i/name)",
         "Gift Card Mug Glass Green Tea Black Tea"},  // empty @cat least
    Case{"count(for $x in () return 1)", "0"},
    Case{"for $x in (3, 1, 2) order by $x return at $rank $rank * 10 + $x",
         "11 22 33"},
    Case{"let $a := 1 let $b := $a + 1 let $c := $b + 1 return $c", "3"},
    Case{"for $x in (1, 2, 3) let $y := $x * $x where $y > 2 "
         "order by $y descending return $y", "9 4"}));

// --- Grouping (the paper's extension) -------------------------------------------

INSTANTIATE_TEST_SUITE_P(Grouping, Conformance, ::testing::Values(
    Case{"for $i in //item group by $i/@cat into $c nest $i into $is "
         "order by string($c) return count($is)", "1 2 2"},
    Case{"for $i in //item group by $i/@cat into $c "
         "order by string($c) return string($c)", " cup tea"},
    Case{"for $i in //item group by $i/@cat into $c "
         "nest $i/price into $prices "
         "order by string($c) "
         "return round-half-to-even(avg($prices), 2)",
         "25 3.62 8.75"},
    Case{"for $i in //item group by exists($i/@cat) into $has "
         "nest $i into $is order by $has return count($is)", "1 4"},
    Case{"for $p in //person group by $p/role into $r "
         "nest $p/name into $names order by string($r) "
         "return <g>{string-join(for $n in $names return string($n), \",\")}</g>",
         "<g>Grace,Edsger</g><g>Ada</g>"},
    Case{"for $i in //item group by $i/@cat into $c "
         "nest $i order by number($i/price) into $sorted "
         "order by string($c) "
         "return string-join(for $s in $sorted return string($s/@sku), \",\")",
         "C1 B2,B1 A2,A1"},
    Case{"for $i in //item group by 1 into $k "
         "nest $i/qty into $qs let $total := sum($qs) "
         "where $total > 100 return $total", "147"},
    Case{"count(for $i in //item group by $i/@sku into $s return 1)", "5"},
    Case{"for $x in (1, 2, 2, 3, 3, 3) group by $x into $k "
         "nest $x into $xs order by count($xs) descending, $k "
         "return at $rank concat($rank, \"#\", $k)",
         "1#3 2#2 3#1"}));

// --- Strings --------------------------------------------------------------------

INSTANTIATE_TEST_SUITE_P(Strings, Conformance, ::testing::Values(
    Case{"concat(\"a\", \"b\")", "ab"},
    Case{"upper-case(\"tea\")", "TEA"},
    Case{"lower-case(\"TEA\")", "tea"},
    Case{"substring(\"hello\", 2, 2)", "el"},
    Case{"string-length(\"hello\")", "5"},
    Case{"normalize-space(\"  a  b  \")", "a b"},
    Case{"contains(string(//item[1]/name), \"Tea\")", "true"},
    Case{"starts-with(\"prefix\", \"pre\")", "true"},
    Case{"ends-with(\"suffix\", \"fix\")", "true"},
    Case{"substring-before(\"key=value\", \"=\")", "key"},
    Case{"substring-after(\"key=value\", \"=\")", "value"},
    Case{"translate(\"abcd\", \"bd\", \"BD\")", "aBcD"},
    Case{"string-join((\"x\", \"y\", \"z\"), \"/\")", "x/y/z"},
    Case{"compare(\"a\", \"b\")", "-1"},
    Case{"compare(\"b\", \"a\")", "1"},
    Case{"compare(\"a\", \"a\")", "0"},
    Case{"codepoints-to-string((104, 105))", "hi"},
    Case{"string-to-codepoints(\"hi\")", "104 105"},
    Case{"matches(\"A1\", \"^[A-Z]\\d$\")", "true"},
    Case{"replace(\"2004-01-31\", \"-\", \"/\")", "2004/01/31"},
    Case{"count(tokenize(\"a,b,c\", \",\"))", "3"},
    Case{"string(3.50)", "3.5"},
    Case{"string(())", ""}));

// --- Sequences ------------------------------------------------------------------

INSTANTIATE_TEST_SUITE_P(Sequences, Conformance, ::testing::Values(
    Case{"count(())", "0"},
    Case{"count((1, (2, 3)))", "3"},
    Case{"empty(())", "true"},
    Case{"exists(//item)", "true"},
    Case{"count(distinct-values(//item/@cat))", "2"},
    Case{"distinct-values((1, 1e0, \"1\"))", "1 1"},
    Case{"reverse(1 to 3)", "3 2 1"},
    Case{"subsequence(1 to 10, 8)", "8 9 10"},
    Case{"insert-before((1, 3), 2, 2)", "1 2 3"},
    Case{"remove((1, 9, 2), 2)", "1 2"},
    Case{"index-of((5, 10, 5), 5)", "1 3"},
    Case{"head(1 to 5)", "1"},
    Case{"tail(1 to 5)", "2 3 4 5"},
    Case{"count(head(()))", "0"},
    Case{"count(tail((1)))", "0"},
    Case{"min(//item/price)", "3.25"},
    Case{"max(//item/qty)", "100"},
    Case{"sum(//item/qty)", "147"},
    Case{"avg((2, 4, 6))", "4"},
    Case{"count(//item[1] | //item[2])", "2"},
    Case{"count(//item | //item)", "5"},
    Case{"string-join(for $x in (1 to 3, 2 to 4) return string($x), \"\")",
         "123234"}));

// --- Conditionals, quantifiers, types -------------------------------------------

INSTANTIATE_TEST_SUITE_P(ControlAndTypes, Conformance, ::testing::Values(
    Case{"if (//item[qty = 0]) then \"out-of-stock\" else \"ok\"",
         "out-of-stock"},
    Case{"if (()) then 1 else 2", "2"},
    Case{"some $i in //item satisfies $i/qty > 50", "true"},
    Case{"every $i in //item satisfies $i/price > 3", "true"},
    Case{"every $i in //item satisfies $i/qty > 0", "false"},
    Case{"(5 instance of xs:integer)", "true"},
    Case{"(//item[1] instance of element(item))", "true"},
    Case{"\"12\" cast as xs:integer", "12"},
    Case{"\"x\" castable as xs:integer", "false"},
    Case{"(//item[1]/qty treat as element()) instance of element(qty)",
         "true"},
    Case{"count(//missing) instance of xs:integer", "true"},
    Case{"(1, 2, 3) instance of xs:integer+", "true"}));

// --- Constructors ---------------------------------------------------------------

INSTANTIATE_TEST_SUITE_P(Constructors, Conformance, ::testing::Values(
    Case{"<a/>", "<a/>"},
    Case{"<a b=\"{1+1}\">{2+2}</a>", "<a b=\"2\">4</a>"},
    Case{"<low>{//item[qty < 10]/name}</low>",
         "<low><name>Mug</name><name>Glass</name></low>"},
    Case{"element tally { count(//item) }", "<tally>5</tally>"},
    Case{"element { lower-case(\"OUT\") } { attribute n { 1 + 1 } }",
         "<out n=\"2\"/>"},
    Case{"<r>{for $i in //item[@cat = \"tea\"] "
         "return <t sku=\"{$i/@sku}\"/>}</r>",
         "<r><t sku=\"A1\"/><t sku=\"A2\"/></r>"},
    Case{"string(<x>{1 to 3}</x>)", "1 2 3"},
    Case{"count(document { <a/>, <b/> }/*)", "2"},
    Case{"<a>{text { \"t\" }}</a>", "<a>t</a>"},
    Case{"name(<dyn/>)", "dyn"}));

// --- Functions and prolog -------------------------------------------------------

INSTANTIATE_TEST_SUITE_P(FunctionsAndProlog, Conformance, ::testing::Values(
    Case{"declare function local:tax($p as xs:decimal) { $p * 0.1 }; "
         "local:tax(50)", "5"},
    Case{"declare function local:depth($e as element()) as xs:integer "
         "{ if (empty($e/*)) then 1 "
         "  else 1 + max(for $c in $e/* return local:depth($c)) }; "
         "local:depth(/store/inventory)", "3"},
    Case{"declare variable $threshold := 10; "
         "count(//item[qty >= $threshold])", "3"},
    Case{"declare function local:even($n as xs:integer) as xs:boolean "
         "{ if ($n = 0) then true() else local:odd($n - 1) }; "
         "declare function local:odd($n as xs:integer) as xs:boolean "
         "{ if ($n = 0) then false() else local:even($n - 1) }; "
         "local:even(10)", "true"},
    Case{"declare function local:sum-to($n as xs:integer) as xs:integer "
         "{ if ($n <= 0) then 0 else $n + local:sum-to($n - 1) }; "
         "local:sum-to(100)", "5050"},
    Case{"xqa:set-equal((\"a\", \"b\"), (\"b\", \"a\"))", "true"},
    Case{"count(xqa:cube((1, 2)))", "4"},
    Case{"count(xqa:rollup((1, 2)))", "3"}));

// --- dateTime -------------------------------------------------------------------

INSTANTIATE_TEST_SUITE_P(DateTimes, Conformance, ::testing::Values(
    Case{"year-from-dateTime(xs:dateTime(\"1999-12-31T23:59:59\"))", "1999"},
    Case{"month-from-dateTime(xs:dateTime(\"1999-12-31T23:59:59\"))", "12"},
    Case{"day-from-date(xs:date(\"2004-02-29\"))", "29"},
    Case{"xs:date(\"2004-01-01\") < xs:date(\"2004-06-01\")", "true"},
    Case{"xs:dateTime(\"2004-01-31T11:32:07\") = "
         "xs:dateTime(\"2004-01-31T11:32:07\")", "true"},
    Case{"string(xs:date(\"2004-07-04\"))", "2004-07-04"},
    Case{"hours-from-time(xs:time(\"14:30:00\"))", "14"},
    Case{"min((xs:date(\"2004-01-01\"), xs:date(\"2003-01-01\")))",
         "2003-01-01"}));

}  // namespace
}  // namespace xqa

// Shredded scans through the batched engine (docs/SHREDDING.md): an
// optimizer-marked `collection(...)//rec` domain served from the snapshot's
// column table must be byte-identical to the DOM path at every point of the
// {scalar, batched} x {1, 2, 4, hw} x {shred on, off} grid — including the
// paper's Q1 and Q3 over generated corpora — while the QueryStats counters
// (shredded_scans / shredded_rows / shred_fallbacks) record which path ran.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "api/engine.h"
#include "api/explain.h"
#include "base/cancellation.h"
#include "base/fault_injection.h"
#include "base/memory_tracker.h"
#include "service/collection_store.h"
#include "workload/books.h"
#include "workload/sales.h"

namespace xqa {
namespace {

using service::CollectionSnapshot;
using service::CollectionStore;

class ShreddedScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // "rows": a conforming corpus, several records per document, with a
    // nullable field (maybe), a structured child excluded from the schema
    // (nested), and value collisions across documents for the group keys.
    std::vector<CollectionStore::BulkDocument> rows;
    for (int d = 0; d < 40; ++d) {
      std::string xml = "<batch>";
      for (int i = 0; i < 5; ++i) {
        int n = d * 5 + i;
        xml += "<row><cat>c" + std::to_string(n % 7) + "</cat><v>" +
               std::to_string(n % 53) + "</v><tag>t" +
               std::to_string(n % 3) + "</tag>";
        if (n % 4 != 0) {
          xml += "<maybe>m" + std::to_string(n % 5) + "</maybe>";
        }
        xml += "<nested><x>x" + std::to_string(n) + "</x></nested></row>";
      }
      xml += "</batch>";
      rows.push_back({"rows-" + std::to_string(d) + ".xml", xml});
    }
    store_.BulkLoad("rows", rows, /*num_threads=*/1);

    // "messy": repeated scalar children — schema inference refuses, every
    // marked scan falls back to the DOM path.
    std::vector<CollectionStore::BulkDocument> messy;
    for (int d = 0; d < 10; ++d) {
      messy.push_back({"messy-" + std::to_string(d) + ".xml",
                       "<batch><row><a>1</a><a>2</a><b>b" +
                           std::to_string(d) + "</b></row></batch>"});
    }
    store_.BulkLoad("messy", messy, /*num_threads=*/1);

    // "books"/"sales": the paper's generators, one document per batch, with
    // max_authors=1 so the bibliography conforms (see shred_test.cc for the
    // default corpus refusing on repeated <author>).
    std::vector<CollectionStore::BulkDocument> books;
    for (int d = 0; d < 10; ++d) {
      workload::BooksConfig config;
      config.num_books = 6;
      config.max_authors = 1;
      config.seed = 100 + static_cast<uint64_t>(d);
      books.push_back({"books-" + std::to_string(d) + ".xml",
                       workload::GenerateBooksXml(config)});
    }
    store_.BulkLoad("books", books, /*num_threads=*/1);

    std::vector<CollectionStore::BulkDocument> sales;
    for (int d = 0; d < 6; ++d) {
      workload::SalesConfig config;
      config.num_sales = 25;
      config.seed = 200 + static_cast<uint64_t>(d);
      sales.push_back({"sales-" + std::to_string(d) + ".xml",
                       workload::GenerateSalesXml(config)});
    }
    store_.BulkLoad("sales", sales, /*num_threads=*/1);

    snapshot_ = store_.Snapshot();
  }

  std::string Run(const std::string& query, const ExecutionOptions& exec) {
    return engine_.Compile(query).ExecuteToString(nullptr, nullptr,
                                                  snapshot_.get(), exec);
  }

  /// Asserts every point of the full ablation grid — engine x threads x
  /// shredding — reproduces the serial scalar baseline byte for byte.
  void ExpectGridIdentical(const std::string& query) {
    ExecutionOptions baseline;
    baseline.num_threads = 1;
    baseline.use_batched_execution = false;
    const std::string expected = Run(query, baseline);
    ASSERT_FALSE(expected.empty()) << query;
    for (int threads : {1, 2, 4, 0}) {
      for (bool batched : {false, true}) {
        for (bool shred : {false, true}) {
          ExecutionOptions exec;
          exec.num_threads = threads;
          exec.use_batched_execution = batched;
          exec.use_shredded_scan = shred;
          EXPECT_EQ(Run(query, exec), expected)
              << query << "\nthreads=" << threads << " batched=" << batched
              << " shred=" << shred;
        }
      }
    }
  }

  QueryStats Profile(const std::string& query, bool shred,
                     int threads = 1) {
    ExecutionOptions exec;
    exec.num_threads = threads;
    exec.use_batched_execution = true;
    exec.use_shredded_scan = shred;
    return engine_.Compile(query)
        .ExecuteProfiled(nullptr, nullptr, snapshot_.get(), exec)
        .stats;
  }

  Engine engine_;
  CollectionStore store_{CollectionStore::Options{8}};
  std::shared_ptr<const CollectionSnapshot> snapshot_;
};

// ---------------------------------------------------------------------------
// Byte-identity grid.
// ---------------------------------------------------------------------------

TEST_F(ShreddedScanTest, PlainScanParity) {
  ExpectGridIdentical(
      "for $r in collection('rows')//row return <x>{string($r/v)}</x>");
}

TEST_F(ShreddedScanTest, GroupByShredKeyParity) {
  ExpectGridIdentical(R"(
    for $r in collection('rows')//row
    group by $r/cat into $c
    nest $r/v into $vs
    order by string($c)
    return <g>{$c}<n>{count($vs)}</n><s>{sum($vs)}</s></g>
  )");
}

TEST_F(ShreddedScanTest, NullableGroupKeyParity) {
  // ~1/4 of the rows lack <maybe>: the empty key sequence must form its own
  // group identically whether the key comes from the column (null code) or
  // from a DOM child step.
  ExpectGridIdentical(R"(
    for $r in collection('rows')//row
    group by $r/maybe into $m
    nest $r/v into $vs
    order by string($m)
    return <g>{$m}<n>{count($vs)}</n></g>
  )");
}

TEST_F(ShreddedScanTest, MultiKeyGroupByParity) {
  ExpectGridIdentical(R"(
    for $r in collection('rows')//row
    group by $r/cat into $c, $r/tag into $t
    nest $r into $rs
    order by string($c), string($t)
    return <g>{$c, $t}<n>{count($rs)}</n></g>
  )");
}

TEST_F(ShreddedScanTest, PushedFilterParity) {
  // The [cat = 'c3'] predicate becomes a pushed value filter the shredded
  // scan answers per dictionary code.
  ExpectGridIdentical(R"(
    for $r in collection('rows')//row[cat = 'c3']
    group by $r/tag into $t
    nest $r into $rs
    order by string($t)
    return <g>{$t}<n>{count($rs)}</n></g>
  )");
}

TEST_F(ShreddedScanTest, WhereClauseParity) {
  ExpectGridIdentical(R"(
    for $r in collection('rows')//row
    where number($r/v) > 40
    group by $r/cat into $c
    nest $r into $rs
    order by string($c)
    return <g>{$c}<n>{count($rs)}</n></g>
  )");
}

TEST_F(ShreddedScanTest, RefusalCorpusParity) {
  // The messy corpus is unshreddable; every configuration must agree via the
  // DOM fallback.
  ExpectGridIdentical(R"(
    for $r in collection('messy')//row
    group by $r/b into $b
    nest $r into $rs
    order by string($b)
    return <g>{$b}<n>{count($rs)}</n></g>
  )");
}

TEST_F(ShreddedScanTest, LexicalEdgeValuesStayDistinctGroups) {
  // "-0", "0", and "0.0" atomize to equal numbers but are distinct nodes
  // under the group-by's deep-equal — three groups on both paths.
  std::vector<CollectionStore::BulkDocument> edge = {
      {"e0.xml", "<t><row><v>-0</v></row><row><v>0</v></row></t>"},
      {"e1.xml", "<t><row><v>0.0</v></row><row><v>0</v></row></t>"},
      {"e2.xml", "<t><row><v>1.0</v></row><row><v>1</v></row></t>"}};
  store_.BulkLoad("edge", edge, /*num_threads=*/1);
  snapshot_ = store_.Snapshot();
  const std::string query = R"(
    for $r in collection('edge')//row
    group by $r/v into $v
    nest $r into $rs
    order by string($v)
    return <g>{$v}<n>{count($rs)}</n></g>
  )";
  ExpectGridIdentical(query);
  ExecutionOptions exec;
  std::string out = Run(query, exec);
  EXPECT_EQ(out.find("<g><v>-0</v><n>1</n></g>") != std::string::npos, true)
      << out;
  EXPECT_NE(out.find("<g><v>0.0</v><n>1</n></g>"), std::string::npos) << out;
  EXPECT_NE(out.find("<g><v>1.0</v><n>1</n></g>"), std::string::npos) << out;
}

// ---------------------------------------------------------------------------
// The paper's Q1 / Q3 over collections.
// ---------------------------------------------------------------------------

TEST_F(ShreddedScanTest, PaperQ1OverBooksCollection) {
  ExpectGridIdentical(R"(
    for $b in collection('books')//book
    group by $b/publisher into $p, $b/year into $y
    nest $b/price - $b/discount into $netprices
    return
      <group>
        {$p, $y}
        <avg-net-price>{avg($netprices)}</avg-net-price>
      </group>
  )");
}

TEST_F(ShreddedScanTest, PaperQ3OverSalesCollection) {
  ExpectGridIdentical(R"(
    for $s in collection('sales')//sale
    group by $s/region into $region,
             year-from-dateTime($s/timestamp) into $year
    nest $s into $region-sales
    let $region-sum := round-half-to-even(sum( $region-sales/(quantity * price) ), 2)
    order by $year, $region
    return
      for $s in $region-sales
      group by $s/state into $state
      nest $s into $state-sales
      let $state-sum := round-half-to-even(sum( $state-sales/(quantity * price) ), 2)
      order by $state
      return
        <summary>
          <year>{$year}</year>{$region, $state}
          <state-sales>{ $state-sum }</state-sales>
          <region-sales>{ $region-sum }</region-sales>
          <state-percentage>
            { round-half-to-even($state-sum * 100 div $region-sum, 1) }
          </state-percentage>
        </summary>
  )");
}

// ---------------------------------------------------------------------------
// Counters: which path ran, invariant across thread counts.
// ---------------------------------------------------------------------------

TEST_F(ShreddedScanTest, CountersRecordShreddedScan) {
  const std::string query =
      "for $r in collection('rows')//row return string($r/v)";
  for (int threads : {1, 2, 4, 0}) {
    QueryStats stats = Profile(query, /*shred=*/true, threads);
    EXPECT_EQ(stats.shredded_scans, 1) << "threads=" << threads;
    EXPECT_EQ(stats.shredded_rows, 200) << "threads=" << threads;
    EXPECT_EQ(stats.shred_fallbacks, 0) << "threads=" << threads;
  }
}

TEST_F(ShreddedScanTest, AblationFlagDisablesShredding) {
  const std::string query =
      "for $r in collection('rows')//row return string($r/v)";
  QueryStats stats = Profile(query, /*shred=*/false);
  EXPECT_EQ(stats.shredded_scans, 0);
  EXPECT_EQ(stats.shredded_rows, 0);
  // The flag gates the substitution before the table lookup, so turning it
  // off is not a fallback either.
  EXPECT_EQ(stats.shred_fallbacks, 0);
  // A path-shaped domain does not resolve to the partitioned collection scan
  // (that fast path requires a bare collection() call), so the DOM engine
  // evaluates it generically.
  EXPECT_EQ(stats.collection_scans, 0);
}

TEST_F(ShreddedScanTest, ScalarEngineNeverShreds) {
  ExecutionOptions exec;
  exec.use_batched_execution = false;
  ProfiledResult profiled =
      engine_.Compile("for $r in collection('rows')//row return string($r/v)")
          .ExecuteProfiled(nullptr, nullptr, snapshot_.get(), exec);
  EXPECT_EQ(profiled.stats.shredded_scans, 0);
  EXPECT_EQ(profiled.stats.shred_fallbacks, 0);
}

TEST_F(ShreddedScanTest, RefusalCountsAsFallback) {
  QueryStats stats = Profile(
      "for $r in collection('messy')//row return string($r/b)",
      /*shred=*/true);
  EXPECT_EQ(stats.shredded_scans, 0);
  EXPECT_GE(stats.shred_fallbacks, 1);
}

TEST_F(ShreddedScanTest, PushedFilterEmitsOnlyMatchingRows) {
  // The where clause becomes a PushedValueFilter on the record step (the
  // optimizer's literal pushdown), which the shredded scan answers from the
  // cat column's dictionary — only matching rows are materialized.
  QueryStats stats = Profile(
      "for $r in collection('rows')//row where $r/cat = 'c3' "
      "return string($r/v)",
      /*shred=*/true);
  EXPECT_EQ(stats.shredded_scans, 1);
  EXPECT_GT(stats.shredded_rows, 0);
  EXPECT_LT(stats.shredded_rows, 200);  // the filter pruned during the scan
}

TEST_F(ShreddedScanTest, UncoveredFilterFallsBack) {
  // <nested> is structured everywhere, so it is not a schema field and a
  // pushed filter naming it cannot be answered from the columns.
  QueryStats stats = Profile(
      "for $r in collection('rows')//row where $r/nested = 'x1' "
      "return string($r/v)",
      /*shred=*/true);
  EXPECT_EQ(stats.shredded_scans, 0);
  EXPECT_GE(stats.shred_fallbacks, 1);
}

// ---------------------------------------------------------------------------
// EXPLAIN / EXPLAIN ANALYZE surfaces.
// ---------------------------------------------------------------------------

TEST_F(ShreddedScanTest, ExplainMarksShredCandidates) {
  PreparedQuery prepared = engine_.Compile(
      "for $r in collection('rows')//row return string($r/v)");
  std::string plan = prepared.Explain();
  EXPECT_NE(plan.find("[shred candidate: collection('rows')//row]"),
            std::string::npos)
      << plan;
}

TEST_F(ShreddedScanTest, ExplainAnalyzeFooterReportsShreddedScans) {
  PreparedQuery prepared = engine_.Compile(
      "for $r in collection('rows')//row return string($r/v)");
  ExecutionOptions exec;
  ProfiledResult profiled =
      prepared.ExecuteProfiled(nullptr, nullptr, snapshot_.get(), exec);
  std::string analyzed = ExplainAnalyzeModule(prepared.module(), profiled.stats);
  EXPECT_NE(analyzed.find("shredded scans 1 (200 rows)"), std::string::npos)
      << analyzed;
}

TEST_F(ShreddedScanTest, ExplainAnalyzeFooterReportsFallbacks) {
  PreparedQuery prepared = engine_.Compile(
      "for $r in collection('messy')//row return string($r/b)");
  ExecutionOptions exec;
  ProfiledResult profiled =
      prepared.ExecuteProfiled(nullptr, nullptr, snapshot_.get(), exec);
  std::string analyzed = ExplainAnalyzeModule(prepared.module(), profiled.stats);
  EXPECT_NE(analyzed.find("shred fallbacks 1"), std::string::npos) << analyzed;
}

// ---------------------------------------------------------------------------
// Governance under shredding: typed errors, balanced tracker, fault site.
// ---------------------------------------------------------------------------

TEST_F(ShreddedScanTest, PreCancelledTokenFailsIdenticallyWithAndWithoutShred) {
  for (bool shred : {false, true}) {
    CancellationToken token;
    token.Cancel();
    ExecutionOptions exec;
    exec.use_shredded_scan = shred;
    exec.cancellation = &token;
    try {
      Run("for $r in collection('rows')//row return string($r/v)", exec);
      FAIL() << "expected XQSV0002 (shred=" << shred << ")";
    } catch (const XQueryError& error) {
      EXPECT_EQ(error.code(), ErrorCode::kXQSV0002);
    }
  }
}

TEST_F(ShreddedScanTest, TinyBudgetFailsTypedAndBalancedOnBothPaths) {
  for (bool shred : {false, true}) {
    MemoryTracker tracker("query", /*limit_bytes=*/512);
    ExecutionOptions exec;
    exec.use_shredded_scan = shred;
    exec.memory = &tracker;
    try {
      Run("for $r in collection('rows')//row return string($r/v)", exec);
      FAIL() << "expected XQSV0004 (shred=" << shred << ")";
    } catch (const XQueryError& error) {
      EXPECT_EQ(error.code(), ErrorCode::kXQSV0004);
    }
    EXPECT_EQ(tracker.used(), 0) << "shred=" << shred;
  }
}

TEST_F(ShreddedScanTest, ScanAllocFaultFailsCleanly) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "fault points compiled out; configure -DXQA_FAULTS=ON";
  }
  // Warm the table first so the armed site is the scan's own allocation
  // checkpoint, not the column build.
  ExecutionOptions warm;
  Run("count(collection('rows')//row)", warm);

  fault::Reset();
  fault::ArmSite("shred.scan_alloc", 1);
  MemoryTracker tracker("query");
  ExecutionOptions exec;
  exec.memory = &tracker;
  try {
    Run("for $r in collection('rows')//row return string($r/v)", exec);
    FAIL() << "armed shred.scan_alloc never tripped";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0004);
    EXPECT_NE(std::string(error.what()).find("injected fault"),
              std::string::npos);
  }
  EXPECT_EQ(tracker.used(), 0);
  fault::Reset();
}

}  // namespace
}  // namespace xqa

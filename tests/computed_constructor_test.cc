// Computed constructor tests: element / attribute / text / comment /
// document constructors with literal and computed names.

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

class ComputedConstructorTest : public ::testing::Test {
 protected:
  std::string Run(const std::string& query,
                  const std::string& xml = "<root><a>1</a><b>2</b></root>") {
    DocumentPtr doc = Engine::ParseDocument(xml);
    return engine_.Compile(query).ExecuteToString(doc);
  }

  ErrorCode RunError(const std::string& query) {
    DocumentPtr doc = Engine::ParseDocument("<root/>");
    try {
      engine_.Compile(query).Execute(doc);
    } catch (const XQueryError& error) {
      return error.code();
    }
    return ErrorCode::kOk;
  }

  Engine engine_;
};

TEST_F(ComputedConstructorTest, ElementWithLiteralName) {
  EXPECT_EQ(Run("element result { 1 + 2 }"), "<result>3</result>");
  EXPECT_EQ(Run("element empty {}"), "<empty/>");
  EXPECT_EQ(Run("element wrap { //a }"), "<wrap><a>1</a></wrap>");
}

TEST_F(ComputedConstructorTest, ElementWithComputedName) {
  EXPECT_EQ(Run("element { concat(\"t\", \"ag\") } { \"v\" }"),
            "<tag>v</tag>");
  EXPECT_EQ(Run("for $n in (\"x\", \"y\") return element { $n } { 1 }"),
            "<x>1</x><y>1</y>");
  // Dynamic, data-driven element names — the hierarchy-inversion use case.
  EXPECT_EQ(Run("element { name(//a) } { string(//b) }"), "<a>2</a>");
}

TEST_F(ComputedConstructorTest, BadComputedNames) {
  EXPECT_EQ(RunError("element { \"two words\" } { 1 }"), ErrorCode::kFORG0001);
  EXPECT_EQ(RunError("element { () } { 1 }"), ErrorCode::kXPTY0004);
  EXPECT_EQ(RunError("element { (1, 2) } { 1 }"), ErrorCode::kXPTY0004);
}

TEST_F(ComputedConstructorTest, AttributeConstructor) {
  EXPECT_EQ(Run("element e { attribute id { 7 } }"), "<e id=\"7\"/>");
  EXPECT_EQ(Run("element e { attribute { \"k\" } { \"v\" }, \"text\" }"),
            "<e k=\"v\">text</e>");
  EXPECT_EQ(Run("element e { attribute multi { (1, 2, 3) } }"),
            "<e multi=\"1 2 3\"/>");
}

TEST_F(ComputedConstructorTest, AttributeAfterContentIsError) {
  EXPECT_EQ(RunError("element e { \"text\", attribute id { 1 } }"),
            ErrorCode::kXQDY0025);
}

TEST_F(ComputedConstructorTest, TextConstructor) {
  EXPECT_EQ(Run("element e { text { \"hi\" } }"), "<e>hi</e>");
  EXPECT_EQ(Run("element e { text { (1, 2) } }"), "<e>1 2</e>");
  // text {()} constructs no node at all.
  EXPECT_EQ(Run("count(text { () })"), "0");
}

TEST_F(ComputedConstructorTest, CommentConstructor) {
  EXPECT_EQ(Run("element e { comment { \"note\" } }"), "<e><!--note--></e>");
}

TEST_F(ComputedConstructorTest, DocumentConstructor) {
  EXPECT_EQ(Run("count(document { element a {}, element b {} }/*)"), "2");
  EXPECT_EQ(Run("document { element a { \"x\" } } instance of document-node()"),
            "true");
}

TEST_F(ComputedConstructorTest, MixedWithDirectConstructors) {
  EXPECT_EQ(Run("<out>{element inner { attribute n { 1 }, \"v\" }}</out>"),
            "<out><inner n=\"1\">v</inner></out>");
  EXPECT_EQ(Run("element out { <inner>{2}</inner> }"),
            "<out><inner>2</inner></out>");
}

TEST_F(ComputedConstructorTest, ConstructedNodesNavigate) {
  EXPECT_EQ(Run("let $e := element r { element c { 5 } } return string($e/c)"),
            "5");
  EXPECT_EQ(Run("let $e := element r { attribute a { \"v\" } } "
                "return string($e/@a)"),
            "v");
}

TEST_F(ComputedConstructorTest, GroupingByComputedElements) {
  // Computed constructors in grouping keys (dynamic-hierarchy use).
  EXPECT_EQ(Run("for $x in (1, 2, 1, 1, 2) "
                "let $k := element key { $x } "
                "group by $k into $key nest $x into $xs "
                "order by string($key) return count($xs)"),
            "3 2");
}

TEST_F(ComputedConstructorTest, KeywordsStillUsableAsNames) {
  // "element" and "text" remain valid path steps / element names.
  EXPECT_EQ(Run("count(//element)", "<r><element>x</element></r>"), "1");
  EXPECT_EQ(Run("string(//text)", "<r><text>y</text></r>"), "y");
}

}  // namespace
}  // namespace xqa

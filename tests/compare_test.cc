#include "xdm/compare.h"

#include <gtest/gtest.h>

#include <cmath>

#include "base/error.h"
#include "xml/xml_parser.h"

namespace xqa {
namespace {

AtomicValue Dec(const char* text) {
  Decimal d;
  EXPECT_TRUE(Decimal::Parse(text, &d));
  return AtomicValue::MakeDecimal(d);
}

TEST(ValueCompare, NumericPromotion) {
  EXPECT_TRUE(ValueCompareAtomic(CompareOp::kEq, AtomicValue::Integer(5),
                                 Dec("5.0")));
  EXPECT_TRUE(ValueCompareAtomic(CompareOp::kEq, AtomicValue::Integer(5),
                                 AtomicValue::Double(5.0)));
  EXPECT_TRUE(ValueCompareAtomic(CompareOp::kLt, Dec("1.4"),
                                 AtomicValue::Double(1.5)));
  EXPECT_TRUE(ValueCompareAtomic(CompareOp::kGe, AtomicValue::Integer(2),
                                 Dec("1.999")));
}

TEST(ValueCompare, NaNSemantics) {
  AtomicValue nan = AtomicValue::Double(std::nan(""));
  EXPECT_FALSE(ValueCompareAtomic(CompareOp::kEq, nan, nan));
  EXPECT_FALSE(ValueCompareAtomic(CompareOp::kLt, nan, AtomicValue::Double(1)));
  EXPECT_FALSE(ValueCompareAtomic(CompareOp::kGe, nan, nan));
  EXPECT_TRUE(ValueCompareAtomic(CompareOp::kNe, nan, nan));
}

TEST(ValueCompare, UntypedComparesAsString) {
  // Value comparison treats untypedAtomic as xs:string: "10" lt "9".
  EXPECT_TRUE(ValueCompareAtomic(CompareOp::kLt, AtomicValue::Untyped("10"),
                                 AtomicValue::Untyped("9")));
  EXPECT_TRUE(ValueCompareAtomic(CompareOp::kEq, AtomicValue::Untyped("x"),
                                 AtomicValue::String("x")));
}

TEST(ValueCompare, Strings) {
  EXPECT_TRUE(ValueCompareAtomic(CompareOp::kLt, AtomicValue::String("abc"),
                                 AtomicValue::String("abd")));
  EXPECT_TRUE(ValueCompareAtomic(CompareOp::kEq, AtomicValue::String(""),
                                 AtomicValue::String("")));
}

TEST(ValueCompare, Booleans) {
  EXPECT_TRUE(ValueCompareAtomic(CompareOp::kLt, AtomicValue::Boolean(false),
                                 AtomicValue::Boolean(true)));
}

TEST(ValueCompare, DateTimes) {
  DateTime a, b;
  ASSERT_TRUE(DateTime::ParseDateTime("2004-01-01T00:00:00", &a));
  ASSERT_TRUE(DateTime::ParseDateTime("2004-06-01T00:00:00", &b));
  EXPECT_TRUE(ValueCompareAtomic(CompareOp::kLt, AtomicValue::MakeDateTime(a),
                                 AtomicValue::MakeDateTime(b)));
}

TEST(ValueCompare, IncomparableThrows) {
  EXPECT_THROW(ValueCompareAtomic(CompareOp::kEq, AtomicValue::Integer(1),
                                  AtomicValue::String("1")),
               XQueryError);
  EXPECT_THROW(ValueCompareAtomic(CompareOp::kLt, AtomicValue::Boolean(true),
                                  AtomicValue::Integer(1)),
               XQueryError);
}

TEST(ThreeWayCompare, UntypedAdaptsToOtherOperand) {
  // Against a numeric operand, untyped parses as a number: 10 > 9.
  EXPECT_EQ(*ThreeWayCompareAtomic(AtomicValue::Untyped("10"),
                                   AtomicValue::Integer(9)),
            1);
  // Against a string it compares lexically: "10" < "9".
  EXPECT_EQ(*ThreeWayCompareAtomic(AtomicValue::Untyped("10"),
                                   AtomicValue::String("9")),
            -1);
  // Untyped vs untyped: string comparison.
  EXPECT_EQ(*ThreeWayCompareAtomic(AtomicValue::Untyped("10"),
                                   AtomicValue::Untyped("9")),
            -1);
}

TEST(ThreeWayCompare, NaNIsUnordered) {
  EXPECT_FALSE(ThreeWayCompareAtomic(AtomicValue::Double(std::nan("")),
                                     AtomicValue::Double(1))
                   .has_value());
}

TEST(GeneralCompare, Existential) {
  Sequence lhs = {MakeInteger(1), MakeInteger(5)};
  Sequence rhs = {MakeInteger(5), MakeInteger(9)};
  EXPECT_TRUE(GeneralCompare(CompareOp::kEq, lhs, rhs));
  EXPECT_TRUE(GeneralCompare(CompareOp::kLt, lhs, rhs));   // 1 < 5
  EXPECT_FALSE(GeneralCompare(CompareOp::kGt, lhs, rhs));  // no pair satisfies >
}

TEST(GeneralCompare, ExistentialNegativeCases) {
  Sequence lhs = {MakeInteger(1), MakeInteger(2)};
  Sequence rhs = {MakeInteger(5)};
  EXPECT_FALSE(GeneralCompare(CompareOp::kEq, lhs, rhs));
  EXPECT_FALSE(GeneralCompare(CompareOp::kGt, lhs, rhs));
  EXPECT_TRUE(GeneralCompare(CompareOp::kNe, lhs, rhs));
  // Empty operand: always false.
  EXPECT_FALSE(GeneralCompare(CompareOp::kEq, {}, rhs));
  EXPECT_FALSE(GeneralCompare(CompareOp::kNe, lhs, {}));
}

TEST(GeneralCompare, UntypedVsNumericCastsToDouble) {
  DocumentPtr doc = ParseXml("<q>10</q>");
  Sequence node = {Item(doc->root()->children()[0], doc)};
  EXPECT_TRUE(GeneralCompare(CompareOp::kEq, node, {MakeInteger(10)}));
  EXPECT_TRUE(GeneralCompare(CompareOp::kGt, node, {MakeInteger(9)}));
  // Against a string, compares as string.
  EXPECT_TRUE(GeneralCompare(CompareOp::kEq, node, {MakeString("10")}));
}

TEST(GeneralCompare, AtomizesNodes) {
  DocumentPtr doc = ParseXml("<a><p>x</p><p>y</p></a>");
  const Node* a = doc->root()->children()[0];
  Sequence nodes = {Item(a->children()[0], doc), Item(a->children()[1], doc)};
  EXPECT_TRUE(GeneralCompare(CompareOp::kEq, nodes, {MakeString("y")}));
  EXPECT_FALSE(GeneralCompare(CompareOp::kEq, nodes, {MakeString("z")}));
}

TEST(ValueCompareSequences, Cardinality) {
  bool empty = false;
  EXPECT_TRUE(ValueCompareSequences(CompareOp::kEq, {MakeInteger(1)},
                                    {MakeInteger(1)}, &empty));
  EXPECT_FALSE(empty);
  ValueCompareSequences(CompareOp::kEq, {}, {MakeInteger(1)}, &empty);
  EXPECT_TRUE(empty);
  Sequence two = {MakeInteger(1), MakeInteger(2)};
  EXPECT_THROW(
      ValueCompareSequences(CompareOp::kEq, two, {MakeInteger(1)}, &empty),
      XQueryError);
}

// Parameterized consistency: ValueCompare(op) agrees with ThreeWayCompare for
// comparable numeric pairs.
struct ComparePair {
  double a;
  double b;
};

class CompareConsistencyTest : public ::testing::TestWithParam<ComparePair> {};

TEST_P(CompareConsistencyTest, OpsAgreeWithThreeWay) {
  AtomicValue a = AtomicValue::Double(GetParam().a);
  AtomicValue b = AtomicValue::Double(GetParam().b);
  int cmp = *ThreeWayCompareAtomic(a, b);
  EXPECT_EQ(ValueCompareAtomic(CompareOp::kEq, a, b), cmp == 0);
  EXPECT_EQ(ValueCompareAtomic(CompareOp::kNe, a, b), cmp != 0);
  EXPECT_EQ(ValueCompareAtomic(CompareOp::kLt, a, b), cmp < 0);
  EXPECT_EQ(ValueCompareAtomic(CompareOp::kLe, a, b), cmp <= 0);
  EXPECT_EQ(ValueCompareAtomic(CompareOp::kGt, a, b), cmp > 0);
  EXPECT_EQ(ValueCompareAtomic(CompareOp::kGe, a, b), cmp >= 0);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, CompareConsistencyTest,
    ::testing::Values(ComparePair{0, 0}, ComparePair{1, 2}, ComparePair{2, 1},
                      ComparePair{-1.5, 1.5}, ComparePair{1e10, 1e-10},
                      ComparePair{-0.0, 0.0}));

}  // namespace
}  // namespace xqa

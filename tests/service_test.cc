// Query service layer: plan cache, document store, admission control, and
// cooperative cancellation (src/service/, docs/SERVICE.md).
//
// The concurrency fixtures here (DocumentStoreTest.ConcurrentSnapshotReplace,
// ServiceTest.FourConcurrentClients) are the service subsystem's TSan
// targets — CI runs them under -fsanitize=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "service/document_store.h"
#include "service/plan_cache.h"
#include "service/query_service.h"
#include "workload/books.h"
#include "xdm/json.h"
#include "xml/xml_parser.h"
#include "workload/orders.h"
#include "workload/sales.h"

namespace xqa::service {
namespace {

// A grouping query per workload document, each with an order by so output
// order is total and byte-comparison across runs is meaningful.
constexpr const char* kOrdersQuery = R"(
  for $l in //order/lineitem
  group by $l/shipmode into $m
  nest $l/quantity into $qs
  order by string($m)
  return <r>{$m}<n>{count($qs)}</n><s>{sum($qs)}</s></r>
)";
constexpr const char* kBooksQuery = R"(
  for $b in //book
  group by $b/publisher into $p, $b/year into $y
  nest $b/price into $prices
  order by string($p), string($y)
  return <g>{$p, $y}<avg>{avg($prices)}</avg></g>
)";
constexpr const char* kSalesQuery = R"(
  for $s in //sale
  group by $s/region into $region
  nest $s/(quantity * price) into $amounts
  order by string($region)
  return <r>{$region}<total>{sum($amounts)}</total></r>
)";

DocumentPtr SmallOrders() {
  workload::OrderConfig config;
  config.num_orders = 200;
  return workload::GenerateOrdersDocument(config);
}

// --- PlanCache --------------------------------------------------------------

class PlanCacheTest : public ::testing::Test {
 protected:
  Engine engine_;
  ExecutionOptions exec_;
};

TEST_F(PlanCacheTest, MissThenHitReturnsSameHandle) {
  PlanCache cache;
  bool hit = true;
  PlanHandle first = cache.GetOrCompile(engine_, "1 + 1", exec_, &hit);
  EXPECT_FALSE(hit);
  PlanHandle second = cache.GetOrCompile(engine_, "1 + 1", exec_, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());

  PlanCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.hits, 1u);
  EXPECT_EQ(counters.misses, 1u);
  EXPECT_EQ(counters.entries, 1u);
  EXPECT_EQ(counters.evictions, 0u);
}

TEST_F(PlanCacheTest, ExecutionOptionsArePartOfTheKey) {
  PlanCache cache;
  ExecutionOptions indexed;
  indexed.use_structural_index = !exec_.use_structural_index;
  PlanHandle a = cache.GetOrCompile(engine_, "1 + 1", exec_);
  PlanHandle b = cache.GetOrCompile(engine_, "1 + 1", indexed);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(cache.counters().entries, 2u);

  ExecutionOptions threaded;
  threaded.num_threads = 4;
  cache.GetOrCompile(engine_, "1 + 1", threaded);
  EXPECT_EQ(cache.counters().entries, 3u);
}

TEST_F(PlanCacheTest, CancellationTokenIsNotPartOfTheKey) {
  CancellationToken token;
  ExecutionOptions with_token = exec_;
  with_token.cancellation = &token;
  EXPECT_EQ(PlanCache::MakeKey("1", Engine::Options{}, exec_),
            PlanCache::MakeKey("1", Engine::Options{}, with_token));
}

TEST_F(PlanCacheTest, CompileDialectIsPartOfTheKey) {
  Engine::Options rewriting;
  rewriting.optimizer.detect_groupby_patterns = false;
  EXPECT_NE(PlanCache::MakeKey("1", Engine::Options{}, exec_),
            PlanCache::MakeKey("1", rewriting, exec_));
}

TEST_F(PlanCacheTest, LruEvictsOldestWithinShard) {
  PlanCache::Config config;
  config.capacity = 2;
  config.shards = 1;  // single shard makes the LRU order global
  PlanCache cache(config);
  cache.GetOrCompile(engine_, "1", exec_);
  cache.GetOrCompile(engine_, "2", exec_);
  cache.GetOrCompile(engine_, "1", exec_);  // hit: "1" becomes most recent
  cache.GetOrCompile(engine_, "3", exec_);  // evicts "2"

  EXPECT_NE(cache.Lookup(engine_, "1", exec_), nullptr);
  EXPECT_EQ(cache.Lookup(engine_, "2", exec_), nullptr);
  EXPECT_NE(cache.Lookup(engine_, "3", exec_), nullptr);
  PlanCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.evictions, 1u);
  EXPECT_EQ(counters.entries, 2u);
}

TEST_F(PlanCacheTest, FailedCompilesAreNotCached) {
  PlanCache cache;
  EXPECT_THROW(cache.GetOrCompile(engine_, "for $x in", exec_), XQueryError);
  EXPECT_THROW(cache.GetOrCompile(engine_, "for $x in", exec_), XQueryError);
  PlanCache::Counters counters = cache.counters();
  EXPECT_EQ(counters.entries, 0u);
  EXPECT_EQ(counters.misses, 2u);
}

TEST_F(PlanCacheTest, ClearKeepsInFlightHandlesValid) {
  PlanCache cache;
  PlanHandle plan = cache.GetOrCompile(engine_, "2 + 3", exec_);
  cache.Clear();
  EXPECT_EQ(cache.counters().entries, 0u);
  EXPECT_EQ(SerializeSequence(plan->Execute()), "5");
}

/// A cached plan must be indistinguishable from a fresh compile: identical
/// serialized bytes and identical execution counters, across all three
/// workload generators.
TEST_F(PlanCacheTest, CachedPlanMatchesFreshCompile) {
  struct Case {
    DocumentPtr doc;
    const char* query;
  };
  workload::BooksConfig books;
  books.num_books = 120;
  workload::SalesConfig sales;
  sales.num_sales = 500;
  const Case cases[] = {
      {SmallOrders(), kOrdersQuery},
      {workload::GenerateBooksDocument(books), kBooksQuery},
      {workload::GenerateSalesDocument(sales), kSalesQuery},
  };

  PlanCache cache;
  for (const Case& c : cases) {
    ProfiledResult fresh = engine_.Compile(c.query).ExecuteProfiled(c.doc);
    cache.GetOrCompile(engine_, c.query, exec_);  // warm
    bool hit = false;
    PlanHandle cached = cache.GetOrCompile(engine_, c.query, exec_, &hit);
    ASSERT_TRUE(hit);
    ProfiledResult reused = cached->ExecuteProfiled(c.doc, exec_);

    EXPECT_EQ(SerializeSequence(reused.sequence),
              SerializeSequence(fresh.sequence))
        << c.query;
    // Compare the deterministic counters (wall times naturally differ).
    EXPECT_EQ(reused.stats.tuples_flowed, fresh.stats.tuples_flowed);
    EXPECT_EQ(reused.stats.path_steps, fresh.stats.path_steps);
    EXPECT_EQ(reused.stats.nodes_constructed, fresh.stats.nodes_constructed);
    EXPECT_EQ(reused.stats.deep_equal_calls, fresh.stats.deep_equal_calls);
    EXPECT_EQ(reused.stats.deep_hash_calls, fresh.stats.deep_hash_calls);
    EXPECT_EQ(reused.stats.TotalGroupsFormed(),
              fresh.stats.TotalGroupsFormed());
    EXPECT_EQ(reused.stats.TotalHashProbes(), fresh.stats.TotalHashProbes());
  }
}

TEST_F(PlanCacheTest, ConcurrentGetOrCompileSingleEntry) {
  PlanCache cache;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<PlanHandle> handles(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      handles[static_cast<size_t>(t)] =
          cache.GetOrCompile(engine_, "sum((1, 2, 3))", exec_);
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Race losers may each compile, but exactly one entry is resident and
  // every caller got a working plan.
  EXPECT_EQ(cache.counters().entries, 1u);
  for (const PlanHandle& handle : handles) {
    ASSERT_NE(handle, nullptr);
    EXPECT_EQ(SerializeSequence(handle->Execute()), "6");
  }
}

// --- DocumentStore ----------------------------------------------------------

TEST(DocumentStoreTest, PutGetRemove) {
  DocumentStore store;
  EXPECT_EQ(store.Get("orders"), nullptr);
  EXPECT_EQ(store.size(), 0u);

  DocumentPtr doc = SmallOrders();
  EXPECT_FALSE(store.Put("orders", doc));  // insert, not replace
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Get("orders").get(), doc.get());
  EXPECT_TRUE(store.Get("orders")->sealed());

  EXPECT_TRUE(store.Put("orders", SmallOrders()));  // replace
  EXPECT_NE(store.Get("orders").get(), doc.get());

  EXPECT_TRUE(store.Remove("orders"));
  EXPECT_FALSE(store.Remove("orders"));
  EXPECT_EQ(store.Get("orders"), nullptr);
}

TEST(DocumentStoreTest, NullDocumentRejected) {
  DocumentStore store;
  try {
    store.Put("orders", nullptr);
    FAIL() << "expected XQSV0006";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0006);
  }
}

TEST(DocumentStoreTest, VersionBumpsOnEveryMutation) {
  DocumentStore store;
  uint64_t v0 = store.version();
  store.Put("a", Engine::ParseDocument("<a/>"));
  EXPECT_GT(store.version(), v0);
  uint64_t v1 = store.version();
  store.Remove("a");
  EXPECT_GT(store.version(), v1);
}

/// Regression: Remove on an absent name must be a pure no-op — in
/// particular it must NOT bump version(), or every miss would invalidate
/// the version-keyed snapshot caches downstream for nothing.
TEST(DocumentStoreTest, RemoveOfAbsentNameDoesNotBumpVersion) {
  DocumentStore store;
  store.Put("a", Engine::ParseDocument("<a/>"));
  uint64_t v = store.version();

  EXPECT_FALSE(store.Remove("never-stored"));
  EXPECT_EQ(store.version(), v);
  EXPECT_FALSE(store.Remove("never-stored"));  // still absent, still no bump
  EXPECT_EQ(store.version(), v);

  EXPECT_TRUE(store.Remove("a"));
  EXPECT_GT(store.version(), v);
}

/// A request that resolved its registry snapshot before a Remove keeps
/// resolving the removed document: the snapshot's DocumentPtr pins the tree
/// through the intrusive refcount, and the store dropping its reference
/// leaves the snapshot as the sole owner (refs() == held handles).
TEST(DocumentStoreTest, SnapshotPinsDocumentAcrossRemove) {
  DocumentStore store;
  DocumentPtr doc = Engine::ParseDocument("<bib><book/></bib>");
  const Document* raw = doc.get();
  store.Put("bib.xml", doc);
  EXPECT_EQ(raw->refs(), 2u);  // local handle + store

  DocumentRegistry snapshot = store.Snapshot();
  EXPECT_EQ(raw->refs(), 3u);  // + snapshot

  ASSERT_TRUE(store.Remove("bib.xml"));
  EXPECT_EQ(store.Get("bib.xml"), nullptr);

  // The in-flight "request" still resolves and reads the removed document.
  ASSERT_EQ(snapshot.count("bib.xml"), 1u);
  DocumentPtr pinned = snapshot.at("bib.xml");
  ASSERT_EQ(pinned.get(), raw);
  EXPECT_TRUE(pinned->sealed());
  EXPECT_EQ(pinned->root()->children()[0]->name(), "bib");

  // The store's reference is gone; only the readers keep the tree alive.
  EXPECT_EQ(raw->refs(), 3u);  // local + snapshot + pinned
  pinned = nullptr;
  snapshot.clear();
  EXPECT_EQ(raw->refs(), 1u);  // the tree is freed when `doc` drops
}

TEST(DocumentStoreTest, SnapshotIsolatedFromLaterMutations) {
  DocumentStore store;
  store.Put("a", Engine::ParseDocument("<a/>"));
  DocumentRegistry snapshot = store.Snapshot();
  store.Put("b", Engine::ParseDocument("<b/>"));
  store.Remove("a");

  EXPECT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot.count("a"), 1u);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.Get("b")->root()->children()[0]->name(), "b");
}

/// The tentpole's snapshot-replace guarantee: a writer atomically replacing
/// the published document never perturbs concurrent readers — each request
/// pins one sealed version and serializes to one of the two expected byte
/// strings, never a mix. Run under TSan in CI.
TEST(DocumentStoreTest, ConcurrentSnapshotReplace) {
  Engine engine;
  DocumentPtr v1 = Engine::ParseDocument(
      "<bib><book><price>10</price></book><book><price>20</price></book>"
      "</bib>");
  DocumentPtr v2 = Engine::ParseDocument(
      "<bib><book><price>7</price></book><book><price>7</price></book>"
      "<book><price>7</price></book></bib>");

  const std::string query =
      "for $b in //book group by true() into $g nest $b/price into $p "
      "return <r><n>{count($p)}</n><s>{sum($p)}</s></r>";
  PreparedQuery prepared = engine.Compile(query);
  const std::string expect1 = prepared.ExecuteToString(v1);
  const std::string expect2 = prepared.ExecuteToString(v2);
  ASSERT_NE(expect1, expect2);

  DocumentStore store;
  store.Put("bib", v1);

  constexpr int kReaders = 4;
  constexpr int kWriterFlips = 50;
  std::atomic<bool> stop{false};
  std::atomic<int> mixed{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        DocumentPtr doc = store.Get("bib");
        ASSERT_NE(doc, nullptr);
        std::string got = prepared.ExecuteToString(doc);
        if (got != expect1 && got != expect2) {
          mixed.fetch_add(1, std::memory_order_relaxed);
          return;
        }
      }
    });
  }

  for (int flip = 0; flip < kWriterFlips; ++flip) {
    store.Put("bib", flip % 2 == 0 ? v2 : v1);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(mixed.load(), 0) << "a reader observed a torn document";
}

// --- QueryService -----------------------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  static ServiceOptions SmallService() {
    ServiceOptions options;
    options.worker_threads = 2;
    return options;
  }
};

TEST_F(ServiceTest, ExecutesAgainstStoredDocument) {
  QueryService service(SmallService());
  service.documents().Put("orders", SmallOrders());

  Request request;
  request.query = kOrdersQuery;
  request.document = "orders";
  Response response = service.Execute(request);

  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.executed);
  EXPECT_FALSE(response.cache_hit);

  // Cross-check against a direct engine run.
  Engine engine;
  EXPECT_EQ(response.result, engine.Compile(kOrdersQuery)
                                 .ExecuteToString(service.documents().Get(
                                     "orders")));

  // Second submission of the same text hits the plan cache.
  Response again = service.Execute(request);
  ASSERT_TRUE(again.status.ok());
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.result, response.result);

  PlanCache::Counters cache = service.plan_cache_counters();
  EXPECT_EQ(cache.hits, 1u);
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(service.metrics().completed.load(), 2u);
  EXPECT_EQ(service.metrics().latency.count(), 2);
}

TEST_F(ServiceTest, CacheDisabledCompilesEveryRequest) {
  ServiceOptions options = SmallService();
  options.enable_plan_cache = false;
  QueryService service(options);
  service.documents().Put("orders", SmallOrders());

  Request request;
  request.query = kOrdersQuery;
  request.document = "orders";
  Response first = service.Execute(request);
  Response second = service.Execute(request);
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(first.cache_hit);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(first.result, second.result);
  PlanCache::Counters cache = service.plan_cache_counters();
  EXPECT_EQ(cache.hits + cache.misses, 0u);
}

TEST_F(ServiceTest, UnknownDocumentIsADedicatedError) {
  QueryService service(SmallService());
  Request request;
  request.query = "1 + 1";
  request.document = "nope";
  Response response = service.Execute(request);

  EXPECT_EQ(response.status.code(), ErrorCode::kXQSV0006);
  EXPECT_FALSE(response.executed);
  EXPECT_FALSE(response.retryable);
  EXPECT_TRUE(response.result.empty());
  EXPECT_EQ(service.metrics().failed.load(), 1u);
  EXPECT_EQ(service.metrics().documents_missing.load(), 1u);
}

TEST_F(ServiceTest, StaticErrorCountsAsFailed) {
  QueryService service(SmallService());
  Request request;
  request.query = "for $x in";
  Response response = service.Execute(request);
  EXPECT_EQ(response.status.code(), ErrorCode::kXPST0003);
  EXPECT_TRUE(response.result.empty());
  EXPECT_EQ(service.metrics().failed.load(), 1u);
}

TEST_F(ServiceTest, CancelledRequestNeverExecutes) {
  QueryService service(SmallService());
  service.documents().Put("orders", SmallOrders());

  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  Request request;
  request.query = kOrdersQuery;
  request.document = "orders";
  Response response = service.Execute(request, token);

  EXPECT_EQ(response.status.code(), ErrorCode::kXQSV0002);
  EXPECT_FALSE(response.executed);
  EXPECT_TRUE(response.result.empty());
  EXPECT_EQ(service.metrics().cancelled.load(), 1u);
}

/// Acceptance criterion: a deadline-exceeded request resolves with the
/// dedicated timeout code and an empty result — never a partial one. The
/// checkpoints in the FLWOR loop fire mid-execution; whether the deadline
/// trips in the queue or in the loop, the response is identical.
TEST_F(ServiceTest, DeadlineExceededIsTimeoutWithNoPartialResult) {
  QueryService service(SmallService());
  workload::OrderConfig big;
  big.num_orders = 3000;  // thousands of tuples: many checkpoint polls
  service.documents().Put("orders", workload::GenerateOrdersDocument(big));

  Request request;
  request.query = kOrdersQuery;
  request.document = "orders";
  request.deadline_seconds = 1e-6;
  Response response = service.Execute(request);

  EXPECT_EQ(response.status.code(), ErrorCode::kXQSV0001);
  EXPECT_FALSE(response.executed);
  EXPECT_TRUE(response.result.empty());
  EXPECT_EQ(service.metrics().timed_out.load(), 1u);
  EXPECT_EQ(service.metrics().completed.load(), 0u);
}

TEST_F(ServiceTest, DefaultDeadlineApplies) {
  ServiceOptions options = SmallService();
  options.default_deadline_seconds = 1e-6;
  QueryService service(options);
  workload::OrderConfig big;
  big.num_orders = 3000;
  service.documents().Put("orders", workload::GenerateOrdersDocument(big));

  Request request;
  request.query = kOrdersQuery;
  request.document = "orders";
  EXPECT_EQ(service.Execute(request).status.code(), ErrorCode::kXQSV0001);

  // An explicit 0 opts the request out of the service default.
  request.deadline_seconds = 0.0;
  Response response = service.Execute(request);
  EXPECT_TRUE(response.status.ok()) << response.status.ToString();
}

TEST_F(ServiceTest, AdmissionRejectsWhenPendingQueueFull) {
  ServiceOptions options;
  options.worker_threads = 1;
  options.max_pending_requests = 2;
  QueryService service(options);
  workload::OrderConfig big;
  big.num_orders = 3000;  // tens of milliseconds per request
  service.documents().Put("orders", workload::GenerateOrdersDocument(big));

  // Occupy the single worker and the one remaining pending slot with slow
  // requests (cancellable, so the test never waits for full executions),
  // then overflow. Pending slots are held until a request *finishes*, so
  // the third submission must bounce.
  auto blocker_token = std::make_shared<CancellationToken>();
  Request slow;
  slow.query = kOrdersQuery;
  slow.document = "orders";
  std::future<Response> blocked = service.Submit(slow, blocker_token);

  auto queued_token = std::make_shared<CancellationToken>();
  std::future<Response> queued = service.Submit(slow, queued_token);
  std::future<Response> rejected = service.Submit(slow);  // over capacity

  Response rejection = rejected.get();
  EXPECT_EQ(rejection.status.code(), ErrorCode::kXQSV0003);
  EXPECT_EQ(service.metrics().rejected.load(), 1u);

  blocker_token->Cancel();
  queued_token->Cancel();
  blocked.get();
  queued.get();
  EXPECT_EQ(service.metrics().submitted.load(),
            service.metrics().rejected.load() +
                service.metrics().admitted.load());
}

TEST_F(ServiceTest, ShutdownRejectsNewRequests) {
  QueryService service(SmallService());
  service.Shutdown();
  Request request;
  request.query = "1 + 1";
  Response response = service.Execute(request);
  EXPECT_EQ(response.status.code(), ErrorCode::kXQSV0003);
}

TEST_F(ServiceTest, RegistrySnapshotServesDocQueries) {
  QueryService service(SmallService());
  service.documents().Put(
      "books.xml",
      Engine::ParseDocument("<bib><book><price>10</price></book></bib>"));
  service.documents().Put(
      "sales.xml",
      Engine::ParseDocument("<sales><sale><price>5</price></sale></sales>"));

  Request request;
  request.query =
      "sum((doc(\"books.xml\")//price, doc(\"sales.xml\")//price))";
  request.provide_registry = true;
  Response response = service.Execute(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.result, "15");
}

/// End-to-end corpus request: bulk-load a collection, execute a partitioned
/// fn:collection scan through the service, and verify both the result and
/// the per-shard gauges in the metrics scrape.
TEST_F(ServiceTest, CollectionSnapshotServesPartitionedScan) {
  ServiceOptions options = SmallService();
  options.collection_shards = 4;
  QueryService service(options);

  std::vector<CollectionStore::BulkDocument> batch;
  for (int i = 0; i < 60; ++i) {
    char uri[32];
    std::snprintf(uri, sizeof(uri), "doc-%03d.xml", i);
    batch.push_back({uri, "<doc><v>" + std::to_string(i % 7) + "</v></doc>"});
  }
  ASSERT_EQ(service.collections().BulkLoad("corpus", batch), 60u);

  Request request;
  request.query = R"(
    for $d in collection("corpus")
    group by $d/doc/v into $v
    nest $d into $ds
    order by number($v)
    return <g>{$v}<n>{count($ds)}</n></g>
  )";
  request.provide_collections = true;
  request.collect_stats = true;
  Response response = service.Execute(request);
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_TRUE(response.executed);
  EXPECT_EQ(response.stats.collection_scans, 1);
  EXPECT_EQ(response.stats.collection_partitions, 4);
  EXPECT_EQ(response.stats.collection_docs, 60);

  // Cross-check against a direct engine run over the same snapshot.
  Engine engine;
  auto snapshot = service.collections().Snapshot();
  EXPECT_EQ(response.result,
            engine.Compile(request.query)
                .ExecuteToString(nullptr, nullptr, snapshot.get(),
                                 ExecutionOptions{}));

  // Without provide_collections the same query has no corpus to resolve.
  Request detached = request;
  detached.provide_collections = false;
  EXPECT_EQ(service.Execute(detached).status.code(), ErrorCode::kFODC0002);

  std::string json = service.MetricsJson();
  for (const char* key : {"\"collections\"", "\"shards\"", "\"per_shard\"",
                          "\"nodes\"", "\"indexed_documents\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

TEST_F(ServiceTest, PerRequestExecOptionsOverrideDefaults) {
  ServiceOptions options = SmallService();
  options.default_exec.num_threads = 1;
  QueryService service(options);
  service.documents().Put("orders", SmallOrders());

  Request serial;
  serial.query = kOrdersQuery;
  serial.document = "orders";
  Response serial_response = service.Execute(serial);

  Request parallel = serial;
  ExecutionOptions exec;
  exec.num_threads = 4;
  parallel.exec = exec;
  Response parallel_response = service.Execute(parallel);

  ASSERT_TRUE(serial_response.status.ok());
  ASSERT_TRUE(parallel_response.status.ok());
  // Deterministic parallelism: identical bytes regardless of lanes.
  EXPECT_EQ(parallel_response.result, serial_response.result);
  // Different ExecutionOptions fingerprints occupy distinct cache slots.
  EXPECT_EQ(service.plan_cache_counters().entries, 2u);
}

TEST_F(ServiceTest, MetricsJsonIsWellFormed) {
  QueryService service(SmallService());
  service.documents().Put("orders", SmallOrders());
  Request request;
  request.query = kOrdersQuery;
  request.document = "orders";
  service.Execute(request);

  std::string json = service.MetricsJson();
  for (const char* key :
       {"\"service\"", "\"plan_cache\"", "\"documents\"", "\"submitted\"",
        "\"completed\"", "\"latency\"", "\"queue_latency\"",
        "\"query_stats\"", "\"hits\"", "\"misses\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
}

/// Regression: document and collection names land in MetricsJson as JSON
/// string values, so a quote or backslash in a URI must come out escaped —
/// before the JsonEscape fix this scrape was unparseable JSON.
TEST_F(ServiceTest, MetricsJsonEscapesHostileNames) {
  QueryService service(SmallService());
  service.documents().Put("orders \"prod\"", SmallOrders());
  service.documents().Put("back\\slash", SmallOrders());
  DocumentPtr doc = ParseXml("<book><t>x</t></book>");
  doc->SealOrder();
  service.collections().Put("shelf \"a\"\x01", "uri.xml", doc);

  std::string json = service.MetricsJson();
  // Parseable despite the hostile names...
  EXPECT_NO_THROW(ParseJsonDocument(json)) << json;
  // ...because they were escaped, not emitted raw.
  EXPECT_NE(json.find("orders \\\"prod\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("back\\\\slash"), std::string::npos) << json;
  EXPECT_NE(json.find("shelf \\\"a\\\""), std::string::npos) << json;
  EXPECT_NE(json.find("\\u0001"), std::string::npos) << json;
  // The raw control byte must not appear anywhere in the scrape.
  EXPECT_EQ(json.find('\x01'), std::string::npos);
}

/// The tentpole's end-to-end concurrency scenario, run under TSan in CI:
/// four closed-loop clients against one service while a writer replaces the
/// shared document. Every response must be exactly one of the two versions'
/// results, and the terminal counters must reconcile.
TEST_F(ServiceTest, FourConcurrentClients) {
  ServiceOptions options;
  options.worker_threads = 4;
  options.max_pending_requests = 256;
  QueryService service(options);

  workload::OrderConfig small;
  small.num_orders = 60;
  workload::OrderConfig tiny;
  tiny.num_orders = 30;
  tiny.seed = 99;
  DocumentPtr v1 = workload::GenerateOrdersDocument(small);
  DocumentPtr v2 = workload::GenerateOrdersDocument(tiny);
  service.documents().Put("orders", v1);

  Engine engine;
  PreparedQuery prepared = engine.Compile(kOrdersQuery);
  const std::string expect1 = prepared.ExecuteToString(v1);
  const std::string expect2 = prepared.ExecuteToString(v2);
  ASSERT_NE(expect1, expect2);

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> wrong{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        Request request;
        request.query = kOrdersQuery;
        request.document = "orders";
        Response response = service.Execute(request);
        if (!response.status.ok() ||
            (response.result != expect1 && response.result != expect2)) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread writer([&] {
    for (int flip = 0; flip < 40; ++flip) {
      service.documents().Put("orders", flip % 2 == 0 ? v2 : v1);
      std::this_thread::yield();
    }
  });
  for (std::thread& client : clients) client.join();
  writer.join();
  service.Shutdown();

  EXPECT_EQ(wrong.load(), 0);
  const ServiceMetrics& metrics = service.metrics();
  uint64_t total = kClients * kRequestsPerClient;
  EXPECT_EQ(metrics.submitted.load(), total);
  EXPECT_EQ(metrics.admitted.load() + metrics.rejected.load(), total);
  EXPECT_EQ(metrics.completed.load() + metrics.failed.load() +
                metrics.timed_out.load() + metrics.cancelled.load(),
            metrics.admitted.load());
  EXPECT_EQ(metrics.completed.load(), total);  // nothing should have failed
  EXPECT_EQ(metrics.latency.count(), static_cast<int64_t>(total));
  // One compile, everything else cache hits.
  PlanCache::Counters cache = service.plan_cache_counters();
  EXPECT_EQ(cache.entries, 1u);
  EXPECT_EQ(cache.hits + cache.misses, total);
  EXPECT_GE(cache.hits, total - static_cast<uint64_t>(kClients));
}

/// Destroying a service with requests still queued must resolve every
/// future (ThreadPool's destructor drains its queue).
TEST_F(ServiceTest, DestructorDrainsQueuedRequests) {
  std::vector<std::future<Response>> futures;
  {
    ServiceOptions options;
    options.worker_threads = 1;
    options.max_pending_requests = 16;
    QueryService service(options);
    service.documents().Put("orders", SmallOrders());
    for (int i = 0; i < 8; ++i) {
      Request request;
      request.query = kOrdersQuery;
      request.document = "orders";
      futures.push_back(service.Submit(request));
    }
  }  // ~QueryService: Shutdown + drain
  for (std::future<Response>& future : futures) {
    Response response = future.get();  // must not hang or throw broken_promise
    EXPECT_TRUE(response.status.ok()) << response.status.ToString();
  }
}

}  // namespace
}  // namespace xqa::service

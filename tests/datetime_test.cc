#include "xdm/datetime.h"

#include <gtest/gtest.h>

namespace xqa {
namespace {

DateTime DT(const std::string& text) {
  DateTime value;
  EXPECT_TRUE(DateTime::ParseDateTime(text, &value)) << text;
  return value;
}

TEST(DateTimeParse, Basic) {
  DateTime value = DT("2004-01-31T11:32:07");
  EXPECT_EQ(value.year(), 2004);
  EXPECT_EQ(value.month(), 1);
  EXPECT_EQ(value.day(), 31);
  EXPECT_EQ(value.hour(), 11);
  EXPECT_EQ(value.minute(), 32);
  EXPECT_EQ(value.second(), 7);
  EXPECT_FALSE(value.has_timezone());
}

TEST(DateTimeParse, FractionalSeconds) {
  DateTime value = DT("2004-01-31T11:32:07.250");
  EXPECT_EQ(value.millisecond(), 250);
  // Sub-millisecond digits are truncated.
  EXPECT_EQ(DT("2004-01-31T11:32:07.1239").millisecond(), 123);
}

TEST(DateTimeParse, Timezones) {
  DateTime utc = DT("2004-01-31T11:32:07Z");
  EXPECT_TRUE(utc.has_timezone());
  EXPECT_EQ(utc.timezone_offset_minutes(), 0);
  DateTime pst = DT("2004-01-31T11:32:07-08:00");
  EXPECT_EQ(pst.timezone_offset_minutes(), -480);
  DateTime ist = DT("2004-01-31T11:32:07+05:30");
  EXPECT_EQ(ist.timezone_offset_minutes(), 330);
}

TEST(DateTimeParse, Rejects) {
  DateTime value;
  EXPECT_FALSE(DateTime::ParseDateTime("2004-13-01T00:00:00", &value));
  EXPECT_FALSE(DateTime::ParseDateTime("2004-02-30T00:00:00", &value));
  EXPECT_FALSE(DateTime::ParseDateTime("2004-01-31", &value));  // no time
  EXPECT_FALSE(DateTime::ParseDateTime("2004-01-31T25:00:00", &value));
  EXPECT_FALSE(DateTime::ParseDateTime("2004-01-31T10:61:00", &value));
  EXPECT_FALSE(DateTime::ParseDateTime("garbage", &value));
  EXPECT_FALSE(DateTime::ParseDateTime("2004-01-31T11:32:07X", &value));
}

TEST(DateParse, Basics) {
  DateTime value;
  ASSERT_TRUE(DateTime::ParseDate("2004-02-29", &value));  // leap year
  EXPECT_EQ(value.day(), 29);
  EXPECT_TRUE(value.has_date());
  EXPECT_FALSE(value.has_time());
  EXPECT_FALSE(DateTime::ParseDate("2003-02-29", &value));  // not leap
  EXPECT_FALSE(DateTime::ParseDate("2004-02-29T00:00:00", &value));
}

TEST(TimeParse, Basics) {
  DateTime value;
  ASSERT_TRUE(DateTime::ParseTime("11:32:07", &value));
  EXPECT_EQ(value.hour(), 11);
  EXPECT_FALSE(value.has_date());
  EXPECT_FALSE(DateTime::ParseTime("2004-01-01", &value));
}

TEST(DateTimeToString, RoundTrips) {
  for (const char* text :
       {"2004-01-31T11:32:07", "2004-01-31T11:32:07.250",
        "2004-01-31T11:32:07Z", "2004-01-31T11:32:07-08:00",
        "0001-01-01T00:00:00"}) {
    EXPECT_EQ(DT(text).ToString(), text);
  }
  DateTime date;
  ASSERT_TRUE(DateTime::ParseDate("2004-12-25", &date));
  EXPECT_EQ(date.ToString(), "2004-12-25");
  DateTime time;
  ASSERT_TRUE(DateTime::ParseTime("23:59:59", &time));
  EXPECT_EQ(time.ToString(), "23:59:59");
}

TEST(DateTimeCompare, FieldOrder) {
  EXPECT_LT(DT("2004-01-31T11:32:07").Compare(DT("2004-01-31T11:32:08")), 0);
  EXPECT_LT(DT("2004-01-31T23:59:59").Compare(DT("2004-02-01T00:00:00")), 0);
  EXPECT_LT(DT("2003-12-31T23:59:59").Compare(DT("2004-01-01T00:00:00")), 0);
  EXPECT_EQ(DT("2004-01-31T11:32:07").Compare(DT("2004-01-31T11:32:07")), 0);
}

TEST(DateTimeCompare, TimezoneNormalization) {
  // 11:32:07-08:00 == 19:32:07Z.
  EXPECT_EQ(DT("2004-01-31T11:32:07-08:00").Compare(DT("2004-01-31T19:32:07Z")),
            0);
  EXPECT_LT(DT("2004-01-31T11:32:07Z").Compare(DT("2004-01-31T11:32:07-01:00")),
            0);
}

TEST(DateTimeLeapYears, Rules) {
  EXPECT_TRUE(DateTime::IsLeapYear(2004));
  EXPECT_TRUE(DateTime::IsLeapYear(2000));
  EXPECT_FALSE(DateTime::IsLeapYear(1900));
  EXPECT_FALSE(DateTime::IsLeapYear(2003));
  EXPECT_EQ(DateTime::DaysInMonth(2004, 2), 29);
  EXPECT_EQ(DateTime::DaysInMonth(2003, 2), 28);
  EXPECT_EQ(DateTime::DaysInMonth(2004, 4), 30);
  EXPECT_EQ(DateTime::DaysInMonth(2004, 12), 31);
}

TEST(DateTimeHash, EqualInstantsHashEqual) {
  EXPECT_EQ(DT("2004-01-31T11:32:07-08:00").Hash(),
            DT("2004-01-31T19:32:07Z").Hash());
}

// Property: epoch millis is strictly monotone over a day-by-day sweep.
class DateTimeMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(DateTimeMonotoneTest, EpochIncreasesAcrossDays) {
  int day_offset = GetParam();
  int month = 1 + day_offset / 28;
  int day = 1 + day_offset % 28;
  DateTime a = DateTime::FromComponents(2004, month, day, 12, 0, 0);
  DateTime b = DateTime::FromComponents(2004, month, day, 12, 0, 1);
  EXPECT_LT(a.ToEpochMillis(), b.ToEpochMillis());
  if (day < 28) {
    DateTime next = DateTime::FromComponents(2004, month, day + 1, 12, 0, 0);
    EXPECT_LT(a.ToEpochMillis(), next.ToEpochMillis());
  }
}

INSTANTIATE_TEST_SUITE_P(Days, DateTimeMonotoneTest, ::testing::Range(0, 336));

}  // namespace
}  // namespace xqa

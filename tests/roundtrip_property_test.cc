// Round-trip and robustness properties:
//
//  R1  serialize(parse(x)) == x for canonical documents, and
//      deep-equal(parse(serialize(t)), t) for random generated trees.
//  R2  randomly truncating or mutating valid queries never crashes the
//      parser — it either parses or throws XQueryError.
//  R3  a constructed copy of any element deep-equals its source.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "base/error.h"
#include "workload/random.h"
#include "xdm/deep_equal.h"
#include "xml/serializer.h"

namespace xqa {
namespace {

// --- R1: random tree generation and round-trip --------------------------------

void BuildRandomTree(Document* doc, Node* parent, workload::Random* random,
                     int depth) {
  int children = static_cast<int>(random->NextInt(0, depth > 0 ? 4 : 0));
  for (int i = 0; i < children; ++i) {
    switch (random->NextInt(0, 3)) {
      case 0:
      case 1: {
        Node* element = doc->CreateElement(
            "e" + std::to_string(random->NextInt(0, 5)));
        if (random->NextBool(0.4)) {
          doc->AppendAttribute(
              element,
              doc->CreateAttribute(
                  "a" + std::to_string(random->NextInt(0, 2)),
                  "value-" + std::to_string(random->NextInt(0, 99))));
        }
        doc->AppendChild(parent, element);
        BuildRandomTree(doc, element, random, depth - 1);
        break;
      }
      case 2:
        doc->AppendChild(
            parent,
            doc->CreateText("text " + std::to_string(random->NextInt(0, 99)) +
                            " <&> "));
        break;
      case 3:
        doc->AppendChild(parent, doc->CreateComment("note"));
        break;
    }
  }
}

class XmlRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XmlRoundTripProperty, SerializeParseIsDeepEqual) {
  workload::Random random(GetParam());
  auto doc = MakeDocument();
  Node* root = doc->CreateElement("root");
  doc->AppendChild(doc->root(), root);
  BuildRandomTree(doc.get(), root, &random, 4);
  doc->SealOrder();

  std::string xml = SerializeNode(root);
  XmlParseOptions options;
  options.strip_whitespace_text = false;  // preserve generated text exactly
  DocumentPtr reparsed = ParseXml(xml, options);
  EXPECT_TRUE(DeepEqualNodes(root, reparsed->root()->children()[0]))
      << xml;
  // Serialization is a fixpoint.
  EXPECT_EQ(SerializeNode(reparsed->root()->children()[0]), xml);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

// --- R2: parser robustness under mutation --------------------------------------

class ParserRobustnessProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserRobustnessProperty, MutatedQueriesNeverCrash) {
  static const char* kSeeds[] = {
      "for $b in //book group by $b/publisher into $p "
      "nest $b/price into $prices order by $p return <g>{avg($prices)}</g>",
      "declare function local:f($x as xs:integer) { $x * 2 }; local:f(21)",
      "<a x=\"{1 + 2}\">{for $i in 1 to 3 return <b>{$i}</b>}</a>",
      "some $x in (1, 2) satisfies $x = 2 and every $y in () satisfies $y",
      "//sale[region = \"West\"]/(quantity * price)",
  };
  workload::Random random(GetParam());
  Engine engine;
  for (const char* seed : kSeeds) {
    std::string query = seed;
    int mutations = static_cast<int>(random.NextInt(1, 4));
    for (int m = 0; m < mutations; ++m) {
      switch (random.NextInt(0, 2)) {
        case 0:  // truncate
          query = query.substr(
              0, static_cast<size_t>(random.NextInt(
                     0, static_cast<int64_t>(query.size()))));
          break;
        case 1: {  // flip one character
          if (query.empty()) break;
          size_t at = static_cast<size_t>(
              random.NextInt(0, static_cast<int64_t>(query.size()) - 1));
          query[at] = static_cast<char>(random.NextInt(32, 126));
          break;
        }
        case 2: {  // duplicate a slice
          if (query.size() < 4) break;
          size_t at = static_cast<size_t>(
              random.NextInt(0, static_cast<int64_t>(query.size()) - 3));
          query.insert(at, query.substr(at, 3));
          break;
        }
      }
    }
    // Must either compile or throw a well-formed XQueryError; anything else
    // (crash, non-XQueryError exception) fails the test.
    try {
      (void)engine.Compile(query);
    } catch (const XQueryError&) {
      // expected for most mutations
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{40}));

// --- R3: constructor copies are deep-equal -------------------------------------

class CopyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CopyProperty, ConstructedCopyDeepEqualsSource) {
  workload::Random random(GetParam());
  auto doc = MakeDocument();
  Node* root = doc->CreateElement("r");
  doc->AppendChild(doc->root(), root);
  BuildRandomTree(doc.get(), root, &random, 3);
  doc->SealOrder();

  Engine engine;
  // <copy>{/r/node()}</copy> copies all content.
  DocumentPtr parsed = Engine::ParseDocument(SerializeNode(root));
  Sequence result =
      engine.Compile("<r>{/r/(node() | @*)}</r>").Execute(parsed);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(
      DeepEqualNodes(result[0].node(), parsed->root()->children()[0]));
  // Identity differs: it is a copy.
  EXPECT_NE(result[0].node(), parsed->root()->children()[0]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CopyProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{15}));

}  // namespace
}  // namespace xqa

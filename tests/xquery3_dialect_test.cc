// XQuery 3.0 dialect features: "group by $k := expr" with implicit
// rebinding of non-grouping variables, and the "count $v" clause. The paper
// proposed explicit nest + strict scoping; XQuery 3.0 (which this paper
// influenced) standardized implicit rebinding instead — both dialects
// coexist here so the designs can be compared directly.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "workload/books.h"

namespace xqa {
namespace {

class XQuery3DialectTest : public ::testing::Test {
 protected:
  std::string Run(const std::string& query,
                  const std::string& xml = "<root/>") {
    DocumentPtr doc = Engine::ParseDocument(xml);
    return engine_.Compile(query).ExecuteToString(doc);
  }

  ErrorCode Error(const std::string& query) {
    DocumentPtr doc = Engine::ParseDocument("<root/>");
    try {
      engine_.Compile(query).Execute(doc);
    } catch (const XQueryError& error) {
      return error.code();
    }
    return ErrorCode::kOk;
  }

  Engine engine_;
};

TEST_F(XQuery3DialectTest, GroupByAssignsKey) {
  EXPECT_EQ(Run("for $x in (1, 2, 4, 5) "
                "group by $parity := $x mod 2 "
                "order by $parity return ($parity, sum($x))"),
            "0 6 1 6");
}

TEST_F(XQuery3DialectTest, ImplicitRebindingOfNonGroupingVariables) {
  // $x remains in scope after group by, rebound to the group's sequence —
  // the Section 3.2 "alternative design" that the paper rejected and
  // XQuery 3.0 adopted.
  EXPECT_EQ(Run("for $x in (1, 2, 3, 4, 5, 6) "
                "group by $k := $x mod 3 "
                "order by $k "
                "return count($x)"),
            "2 2 2");
  EXPECT_EQ(Run("for $x in (1, 2, 3, 4) "
                "group by $k := $x mod 2 "
                "order by $k "
                "return string-join(for $v in $x return string($v), \",\")"),
            "2,4 1,3");
}

TEST_F(XQuery3DialectTest, BareVariableGroupsByItsValue) {
  EXPECT_EQ(Run("for $x in (\"b\", \"a\", \"b\") "
                "let $k := $x "
                "group by $k "
                "order by $k return concat($k, \":\", count($x))"),
            "a:1 b:2");
}

TEST_F(XQuery3DialectTest, BareVariableKeyVisibleToPostGroupWhere) {
  // Regression: `group by $x` over a for-bound $x rebinds $x to the key in
  // its original slot. The binder used to declare a shadow slot while the
  // evaluator also materialized a dead merged sequence for the old one; a
  // post-group where must read the singleton key, not the merged sequence.
  EXPECT_EQ(Run("for $x in (1, 2, 2, 3, 3, 3) "
                "group by $x "
                "where $x > 1 "
                "order by $x return concat($x, \":\", count($x))"),
            "2:1 3:1");
  // Same shape over node-derived keys, with another grouped variable along
  // for the ride to check the non-key rebinding still happens.
  EXPECT_EQ(Run("for $b in //b let $v := string($b) "
                "group by $x := number($b/@k) "
                "where $x >= 2 "
                "order by $x return concat($x, \"=\", string-join($v, \"+\"))",
                "<r><b k=\"1\">p</b><b k=\"2\">q</b><b k=\"2\">r</b>"
                "<b k=\"3\">s</b></r>"),
            "2=q+r 3=s");
}

TEST_F(XQuery3DialectTest, LetBindingsAlsoRebound) {
  EXPECT_EQ(Run("for $x in (1, 2, 3, 4) "
                "let $double := $x * 2 "
                "group by $k := $x mod 2 "
                "order by $k "
                "return sum($double)"),
            "12 8");
}

TEST_F(XQuery3DialectTest, KeysAreAtomizedSingletons) {
  const char* doc = "<r><e><k>a</k></e><e><k>a</k></e><e/></r>";
  // Node keys atomize; the element-less key is the empty sequence (its own
  // group).
  EXPECT_EQ(Run("for $e in //e group by $g := $e/k "
                "order by string($g) return count($e)", doc),
            "1 2");
  // Multi-item keys are a type error in the 3.0 dialect.
  EXPECT_EQ(Error("for $x in (1, 2) group by $k := (1, 2) return $k"),
            ErrorCode::kXPTY0004);
}

TEST_F(XQuery3DialectTest, NumericCrossTypeKeysGroupTogether) {
  EXPECT_EQ(Run("for $x in (1, 1e0, 2) group by $k := $x "
                "order by $k return count($x)"),
            "2 1");
}

TEST_F(XQuery3DialectTest, NestRejectedInXQuery3Style) {
  EXPECT_EQ(Error("for $x in (1) group by $k := $x nest $x into $xs "
                  "return $xs"),
            ErrorCode::kXPST0003);
}

TEST_F(XQuery3DialectTest, PaperDialectStillStrict) {
  // The same query in the paper dialect: $x dies at the group boundary.
  EXPECT_EQ(Error("for $x in (1, 2) group by $x mod 2 into $k return $x"),
            ErrorCode::kXQAG0001);
}

TEST_F(XQuery3DialectTest, DialectsAgreeOnGroupContents) {
  DocumentPtr doc = Engine::ParseDocument(workload::PaperBibliographyXml());
  std::string paper = engine_.Compile(
      "for $b in //book "
      "group by string($b/publisher) into $p nest $b/price into $prices "
      "order by $p return <g>{$p, round-half-to-even(avg(for $x in $prices "
      "return number($x)), 2)}</g>").ExecuteToString(doc);
  std::string xquery3 = engine_.Compile(
      "for $b in //book "
      "group by $p := string($b/publisher) "
      "order by $p return <g>{$p, round-half-to-even(avg(for $x in $b/price "
      "return number($x)), 2)}</g>").ExecuteToString(doc);
  EXPECT_EQ(paper, xquery3);
}

// --- count clause -------------------------------------------------------------

TEST_F(XQuery3DialectTest, CountClauseNumbersTuples) {
  EXPECT_EQ(Run("for $x in (\"a\", \"b\", \"c\") count $n "
                "return concat($n, $x)"),
            "1a 2b 3c");
}

TEST_F(XQuery3DialectTest, CountAfterWhereReflectsFiltering) {
  EXPECT_EQ(Run("for $x in 1 to 10 where $x mod 3 = 0 count $n "
                "return concat($n, \":\", $x)"),
            "1:3 2:6 3:9");
}

TEST_F(XQuery3DialectTest, CountAfterGroupByNumbersGroups) {
  EXPECT_EQ(Run("for $x in (10, 20, 10, 30) "
                "group by $k := $x "
                "count $n "
                "order by $k return concat($n, \"->\", $k)"),
            "1->10 2->20 3->30");  // count before order by: first-seen order
}

TEST_F(XQuery3DialectTest, CountUsableInWhere) {
  EXPECT_EQ(Run("for $x in (\"p\", \"q\", \"r\", \"s\") count $n "
                "where $n mod 2 = 0 return $x"),
            "q s");
}

TEST_F(XQuery3DialectTest, CountVsReturnAt) {
  // count numbers the stream where it appears; return at numbers the output
  // (after order by). They differ under reordering.
  EXPECT_EQ(Run("for $x in (30, 10, 20) count $before "
                "order by $x "
                "return at $after concat($before, \"/\", $after)"),
            "2/1 3/2 1/3");
}

}  // namespace
}  // namespace xqa

#include "parser/parser.h"

#include <gtest/gtest.h>

#include "base/error.h"

namespace xqa {
namespace {

std::string Dump(const std::string& query) {
  ModulePtr module = ParseQuery(query);
  return DumpExpr(module->body.get());
}

TEST(Parser, Literals) {
  EXPECT_EQ(Dump("42"), "42");
  EXPECT_EQ(Dump("3.5"), "3.5");
  EXPECT_EQ(Dump("\"hi\""), "\"hi\"");
  EXPECT_EQ(Dump("1e3"), "1000");
}

TEST(Parser, ArithmeticPrecedence) {
  EXPECT_EQ(Dump("1 + 2 * 3"), "(+ 1 (* 2 3))");
  EXPECT_EQ(Dump("(1 + 2) * 3"), "(* (+ 1 2) 3)");
  EXPECT_EQ(Dump("10 div 2 - 3"), "(- (div 10 2) 3)");
  EXPECT_EQ(Dump("7 idiv 2 mod 3"), "(mod (idiv 7 2) 3)");
  EXPECT_EQ(Dump("-$x + 1"), "(+ (neg $x) 1)");
}

TEST(Parser, ComparisonKinds) {
  EXPECT_EQ(Dump("$a = $b"), "(general-eq $a $b)");
  EXPECT_EQ(Dump("$a != $b"), "(general-ne $a $b)");
  EXPECT_EQ(Dump("$a eq $b"), "(eq $a $b)");
  EXPECT_EQ(Dump("$a lt $b"), "(lt $a $b)");
  EXPECT_EQ(Dump("$a is $b"), "(is $a $b)");
  EXPECT_EQ(Dump("$a <= 3"), "(general-le $a 3)");
}

TEST(Parser, LogicalPrecedence) {
  EXPECT_EQ(Dump("$a or $b and $c"), "(or $a (and $b $c))");
  EXPECT_EQ(Dump("$a = 1 and $b = 2"),
            "(and (general-eq $a 1) (general-eq $b 2))");
}

TEST(Parser, Range) {
  EXPECT_EQ(Dump("1 to 5"), "(to 1 5)");
  EXPECT_EQ(Dump("1 to $n + 1"), "(to 1 (+ $n 1))");
}

TEST(Parser, SequenceExpr) {
  EXPECT_EQ(Dump("(1, 2, 3)"), "(seq 1 2 3)");
  EXPECT_EQ(Dump("()"), "(seq)");
  EXPECT_EQ(Dump("(1)"), "1");
}

TEST(Parser, Paths) {
  EXPECT_EQ(Dump("//book"),
            "(path / descendant-or-self::node() child::book)");
  EXPECT_EQ(Dump("/bib/book"), "(path / child::bib child::book)");
  EXPECT_EQ(Dump("$b/price"), "(path $b child::price)");
  EXPECT_EQ(Dump("$b/@id"), "(path $b attribute::id)");
  EXPECT_EQ(Dump("$b/*"), "(path $b child::*)");
  EXPECT_EQ(Dump("$b/.."), "(path $b parent::node())");
  EXPECT_EQ(Dump("$b//text()"),
            "(path $b descendant-or-self::node() child::text())");
}

TEST(Parser, ExplicitAxes) {
  EXPECT_EQ(Dump("$b/ancestor::order"), "(path $b ancestor::order)");
  EXPECT_EQ(Dump("$b/self::book"), "(path $b self::book)");
  EXPECT_EQ(Dump("$b/following-sibling::*"),
            "(path $b following-sibling::*)");
}

TEST(Parser, Predicates) {
  EXPECT_EQ(Dump("//book[author = \"X\"]"),
            "(path / descendant-or-self::node() "
            "child::book[(general-eq (path child::author) \"X\")])");
  EXPECT_EQ(Dump("$seq[3]"), "(filter $seq[3])");
  EXPECT_EQ(Dump("$seq[rank <= 3]"),
            "(filter $seq[(general-le (path child::rank) 3)])");
}

TEST(Parser, FilterExpressionSegments) {
  // The paper's Q3 uses both of these step shapes.
  EXPECT_EQ(Dump("$sales/(quantity * price)"),
            "(path $sales (step (* (path child::quantity) "
            "(path child::price))))");
  EXPECT_EQ(Dump("//sale/year-from-dateTime(timestamp)"),
            "(path / descendant-or-self::node() child::sale "
            "(step (year-from-dateTime (path child::timestamp))))");
}

TEST(Parser, FunctionCalls) {
  EXPECT_EQ(Dump("count(//book)"),
            "(count (path / descendant-or-self::node() child::book))");
  EXPECT_EQ(Dump("concat(\"a\", \"b\", \"c\")"),
            "(concat \"a\" \"b\" \"c\")");
  EXPECT_EQ(Dump("true()"), "(true)");
}

TEST(Parser, IfAndQuantified) {
  EXPECT_EQ(Dump("if ($a) then 1 else 2"), "(if $a 1 2)");
  EXPECT_EQ(Dump("some $x in $s satisfies $x > 3"),
            "(some ($x in $s) satisfies (general-gt $x 3))");
  EXPECT_EQ(Dump("every $x in $s, $y in $t satisfies $x = $y"),
            "(every ($x in $s) ($y in $t) satisfies (general-eq $x $y))");
}

TEST(Parser, BasicFlwor) {
  EXPECT_EQ(Dump("for $x in $s return $x"),
            "(flwor (for $x in $s) (return $x))");
  EXPECT_EQ(Dump("for $x at $i in $s return $i"),
            "(flwor (for $x at $i in $s) (return $i))");
  EXPECT_EQ(Dump("let $x := 1 return $x"),
            "(flwor (let $x := 1) (return $x))");
  EXPECT_EQ(Dump("for $x in $s where $x > 2 order by $x descending return $x"),
            "(flwor (for $x in $s) (where (general-gt $x 2)) "
            "(order-by ($x desc)) (return $x))");
}

TEST(Parser, FlworMultipleBindings) {
  EXPECT_EQ(Dump("for $x in $s, $y in $t return 1"),
            "(flwor (for $x in $s) (for $y in $t) (return 1))");
  EXPECT_EQ(Dump("let $x := 1, $y := 2 return $y"),
            "(flwor (let $x := 1) (let $y := 2) (return $y))");
}

TEST(Parser, GroupByClause) {
  EXPECT_EQ(Dump("for $b in $s group by $b/p into $p return $p"),
            "(flwor (for $b in $s) (group-by ((path $b child::p) into $p)) "
            "(return $p))");
  EXPECT_EQ(
      Dump("for $b in $s group by $b/p into $p, $b/y into $y "
           "nest $b/price into $prices, $b into $books return $p"),
      "(flwor (for $b in $s) (group-by ((path $b child::p) into $p) "
      "((path $b child::y) into $y) (nest (path $b child::price) into "
      "$prices) (nest $b into $books)) (return $p))");
}

TEST(Parser, GroupByUsingFunction) {
  EXPECT_EQ(Dump("for $b in $s group by $b/a into $a using local:set-equal "
                 "return $a"),
            "(flwor (for $b in $s) (group-by ((path $b child::a) into $a "
            "using local:set-equal)) (return $a))");
}

TEST(Parser, NestWithOrderBy) {
  EXPECT_EQ(Dump("for $s in $in group by $s/r into $r "
                 "nest $s order by $s/ts into $rs return $rs"),
            "(flwor (for $s in $in) (group-by ((path $s child::r) into $r) "
            "(nest $s (order-by ((path $s child::ts) asc)) into $rs)) "
            "(return $rs))");
}

TEST(Parser, PostGroupLetAndWhere) {
  EXPECT_EQ(Dump("for $b in $s group by $b/p into $p nest $b into $bs "
                 "let $n := count($bs) where $n > 1 return $p"),
            "(flwor (for $b in $s) (group-by ((path $b child::p) into $p) "
            "(nest $b into $bs)) (let $n := (count $bs)) "
            "(where (general-gt $n 1)) (return $p))");
}

TEST(Parser, ReturnAtVariable) {
  EXPECT_EQ(Dump("for $x in $s order by $x return at $rank $rank"),
            "(flwor (for $x in $s) (order-by ($x asc)) "
            "(return at $rank $rank))");
}

TEST(Parser, StableOrderByAndEmptyModifiers) {
  EXPECT_EQ(
      Dump("for $x in $s stable order by $x empty greatest return $x"),
      "(flwor (for $x in $s) (order-by stable ($x asc empty-greatest)) "
      "(return $x))");
}

TEST(Parser, DirectConstructors) {
  EXPECT_EQ(Dump("<a/>"), "(elem a)");
  EXPECT_EQ(Dump("<a>text</a>"), "(elem a \"text\")");
  EXPECT_EQ(Dump("<a x=\"1\">{$v}</a>"), "(elem a (@x \"1\") {$v})");
  EXPECT_EQ(Dump("<a><b>{1 + 2}</b></a>"),
            "(elem a {(elem b {(+ 1 2)})})");
  EXPECT_EQ(Dump("<a x=\"{$v}-suffix\"/>"),
            "(elem a (@x {$v} \"-suffix\"))");
}

TEST(Parser, ConstructorEscapes) {
  EXPECT_EQ(Dump("<a>{{literal}}</a>"), "(elem a \"{literal}\")");
  EXPECT_EQ(Dump("<a>&lt;tag&gt;</a>"), "(elem a \"<tag>\")");
  EXPECT_EQ(Dump("<a><![CDATA[x < y]]></a>"), "(elem a \"x < y\")");
  EXPECT_EQ(Dump("<a><!-- note --></a>"), "(elem a (comment \" note \"))");
}

TEST(Parser, ConstructorBoundaryWhitespaceStripped) {
  EXPECT_EQ(Dump("<a>\n  <b/>\n</a>"), "(elem a {(elem b)})");
  EXPECT_EQ(Dump("<a> {1} </a>"), "(elem a {1})");
  EXPECT_EQ(Dump("<a> x </a>"), "(elem a \" x \")");
}

TEST(Parser, PrologDeclarations) {
  ModulePtr module = ParseQuery(
      "declare ordering unordered; "
      "declare variable $size := 10; "
      "declare function local:double($x as xs:integer) as xs:integer "
      "{ $x * 2 }; "
      "local:double($size)");
  EXPECT_FALSE(module->ordered);
  ASSERT_EQ(module->variables.size(), 1u);
  EXPECT_EQ(module->variables[0].name, "size");
  ASSERT_EQ(module->functions.size(), 1u);
  EXPECT_EQ(module->functions[0].name, "local:double");
  ASSERT_EQ(module->functions[0].params.size(), 1u);
  EXPECT_EQ(module->functions[0].params[0].type.atomic_type,
            AtomicType::kInteger);
}

TEST(Parser, SequenceTypes) {
  ModulePtr module = ParseQuery(
      "declare function local:f($a as item()*, $b as element(book), "
      "$c as xs:string?, $d as node()+) as xs:boolean { true() }; 1");
  const auto& params = module->functions[0].params;
  EXPECT_EQ(params[0].type.item_kind, SeqType::ItemKind::kItem);
  EXPECT_EQ(params[0].type.occurrence, SeqType::Occurrence::kStar);
  EXPECT_EQ(params[1].type.item_kind, SeqType::ItemKind::kElement);
  EXPECT_EQ(params[1].type.name, "book");
  EXPECT_EQ(params[2].type.occurrence, SeqType::Occurrence::kOptional);
  EXPECT_EQ(params[3].type.occurrence, SeqType::Occurrence::kPlus);
}

TEST(Parser, UnionExpression) {
  EXPECT_EQ(Dump("$a | $b"), "(xqa:union $a $b)");
  EXPECT_EQ(Dump("$a union $b"), "(xqa:union $a $b)");
}

TEST(Parser, KeywordsAsElementNames) {
  // Operator keywords are contextual: valid as path steps.
  EXPECT_EQ(Dump("$x/div"), "(path $x child::div)");
  EXPECT_EQ(Dump("$x/for"), "(path $x child::for)");
  EXPECT_EQ(Dump("//group"), "(path / descendant-or-self::node() child::group)");
}

TEST(Parser, SyntaxErrors) {
  EXPECT_THROW(ParseQuery("for $x in"), XQueryError);
  EXPECT_THROW(ParseQuery("1 +"), XQueryError);
  EXPECT_THROW(ParseQuery("(1, 2"), XQueryError);
  EXPECT_THROW(ParseQuery("<a><b></a>"), XQueryError);
  EXPECT_THROW(ParseQuery("<a x=1/>"), XQueryError);
  EXPECT_THROW(ParseQuery("for $x in $s"), XQueryError);   // missing return
  EXPECT_THROW(ParseQuery("group by $x into $y"), XQueryError);
  EXPECT_THROW(ParseQuery("for $b in $s group by $b into return 1"),
               XQueryError);
  EXPECT_THROW(ParseQuery("1 2"), XQueryError);  // trailing junk
  EXPECT_THROW(ParseQuery(""), XQueryError);
}

TEST(Parser, ErrorLocationReported) {
  try {
    ParseQuery("for $x in $s\nreturn <a></b>");
    FAIL() << "expected error";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXPST0003);
    EXPECT_EQ(error.location().line, 2u);
  }
}

TEST(Parser, DuplicateConstructorAttribute) {
  try {
    ParseQuery("<a x=\"1\" x=\"2\"/>");
    FAIL() << "expected error";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQDY0025);
  }
}

}  // namespace
}  // namespace xqa

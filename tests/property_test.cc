// Property-based invariants over randomized workloads, parameterized by
// generator seed/size. These exercise cross-cutting guarantees:
//
//  P1  group by partitions the input: groups are disjoint and cover it.
//  P2  group by agrees with distinct-values on atomized single-occurrence keys.
//  P3  nest without order by preserves input order; with order by, sorted.
//  P4  order by produces a sorted permutation of its input.
//  P5  return-at numbering is 1..n in output order.
//  P6  explicit group by and the naive distinct-values/self-join formulation
//      return the same aggregate rows (the Table 1 equivalence).
//  P7  deep-equal grouping keys: items land in the same group iff deep-equal.

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "api/engine.h"
#include "workload/orders.h"
#include "workload/sales.h"

namespace xqa {
namespace {

struct PropertyCase {
  uint64_t seed;
  int num_orders;
};

class GroupPartitionProperty : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    workload::OrderConfig config;
    config.seed = GetParam().seed;
    config.num_orders = GetParam().num_orders;
    doc_ = workload::GenerateOrdersDocument(config);
  }

  std::string Run(const std::string& query) {
    return engine_.Compile(query).ExecuteToString(doc_);
  }

  Engine engine_;
  DocumentPtr doc_;
};

TEST_P(GroupPartitionProperty, P1GroupSizesSumToInputSize) {
  std::string total = Run("count(//lineitem)");
  std::string summed = Run(
      "sum(for $l in //lineitem "
      "    group by $l/shipmode into $m nest $l into $ls "
      "    return count($ls))");
  EXPECT_EQ(total, summed);
}

TEST_P(GroupPartitionProperty, P1EveryItemInExactlyOneGroup) {
  // Union of all groups, deduplicated by node identity, equals the input.
  std::string rejoined = Run(
      "count(for $l in //lineitem "
      "      group by $l/shipmode into $m nest $l into $ls "
      "      return $ls)");
  std::string total = Run("count(//lineitem)");
  EXPECT_EQ(rejoined, total);
}

TEST_P(GroupPartitionProperty, P2GroupCountMatchesDistinctValues) {
  std::string groups = Run(
      "count(for $l in //lineitem group by $l/shipinstruct into $k return 1)");
  std::string distinct =
      Run("count(distinct-values(//lineitem/shipinstruct))");
  EXPECT_EQ(groups, distinct);
}

TEST_P(GroupPartitionProperty, P3NestPreservesInputOrder) {
  // The nested linenumbers of one order appear in document order.
  std::string violations = Run(
      "count(for $o in //order "
      "      for $l at $i in $o/lineitem "
      "      where $i > 1 and "
      "            number($l/linenumber) <= "
      "            number($o/lineitem[$i - 1]/linenumber) "
      "      return 1)");
  EXPECT_EQ(violations, "0");
  // And nest keeps that order.
  std::string first = Run(
      "for $l in (//lineitem)[position() <= 5] "
      "group by 1 into $k nest string($l/linenumber) into $ns "
      "return string-join($ns, \",\")");
  std::string direct = Run(
      "string-join(for $l in (//lineitem)[position() <= 5] "
      "return string($l/linenumber), \",\")");
  EXPECT_EQ(first, direct);
}

TEST_P(GroupPartitionProperty, P4OrderBySorts) {
  std::string prices = Run(
      "string-join(for $l in //lineitem "
      "order by number($l/extendedprice) "
      "return string($l/extendedprice), \",\")");
  std::istringstream stream(prices);
  std::string token;
  double previous = -1;
  int count = 0;
  while (std::getline(stream, token, ',')) {
    double value = std::stod(token);
    EXPECT_GE(value, previous);
    previous = value;
    ++count;
  }
  EXPECT_EQ(std::to_string(count), Run("count(//lineitem)"));
}

TEST_P(GroupPartitionProperty, P5ReturnAtIsDenseAscending) {
  std::string ranks = Run(
      "string-join(for $l in //lineitem "
      "order by number($l/extendedprice) descending "
      "return at $r string($r), \",\")");
  std::istringstream stream(ranks);
  std::string token;
  int expected = 1;
  while (std::getline(stream, token, ',')) {
    EXPECT_EQ(token, std::to_string(expected++));
  }
}

TEST_P(GroupPartitionProperty, P6NaiveAndExplicitAgree) {
  std::string explicit_rows = Run(
      "for $l in //lineitem "
      "group by $l/quantity into $q nest $l into $ls "
      "order by number($q) "
      "return <r>{string($q), count($ls)}</r>");
  std::string naive_rows = Run(
      "for $q in distinct-values(//lineitem/quantity) "
      "let $ls := for $l in //lineitem where $l/quantity = $q return $l "
      "order by number($q) "
      "return <r>{string($q), count($ls)}</r>");
  EXPECT_EQ(explicit_rows, naive_rows);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GroupPartitionProperty,
    ::testing::Values(PropertyCase{1, 40}, PropertyCase{2, 80},
                      PropertyCase{3, 120}, PropertyCase{7, 60},
                      PropertyCase{11, 100}, PropertyCase{13, 30},
                      PropertyCase{42, 150}, PropertyCase{99, 50}));

// --- P7 on sales data: deep-equal consistency of grouping -------------------

class SalesGroupingProperty : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    workload::SalesConfig config;
    config.seed = GetParam();
    config.num_sales = 300;
    doc_ = workload::GenerateSalesDocument(config);
  }

  std::string Run(const std::string& query) {
    return engine_.Compile(query).ExecuteToString(doc_);
  }

  Engine engine_;
  DocumentPtr doc_;
};

TEST_P(SalesGroupingProperty, P7SameGroupIffDeepEqualKey) {
  // Every pair of sales in one state-group has deep-equal state keys; the
  // count of cross-group deep-equal key pairs is zero.
  EXPECT_EQ(Run("count(for $s in //sale "
                "group by string($s/state) into $state "
                "nest $s into $ss "
                "where count(distinct-values($ss/state)) != 1 "
                "return 1)"),
            "0");
  // Number of groups equals the number of distinct states.
  EXPECT_EQ(Run("count(for $s in //sale group by $s/state into $k return 1)"),
            Run("count(distinct-values(//sale/state))"));
}

TEST_P(SalesGroupingProperty, TwoLevelGroupingConsistent) {
  // Sum over (region, year) groups equals the global sum.
  std::string global =
      Run("round-half-to-even(sum(//sale/(quantity * price)), 2)");
  std::string grouped = Run(
      "round-half-to-even(sum(for $s in //sale "
      "group by $s/region into $r, "
      "         year-from-dateTime($s/timestamp) into $y "
      "nest $s into $ss "
      "return sum($ss/(quantity * price))), 2)");
  EXPECT_EQ(global, grouped);
}

TEST_P(SalesGroupingProperty, MovingWindowCoversPrefixSums) {
  // Q8-style window of size 10^9 equals the full prefix sum: the last
  // sale's window total = total - its own amount.
  std::string check = Run(
      "for $s in //sale group by $s/region into $region "
      "nest $s order by $s/timestamp into $rs "
      "order by string($region) "
      "return round-half-to-even( "
      "  sum(for $s2 at $j in $rs where $j < count($rs) "
      "      return $s2/quantity * $s2/price) "
      "  + ($rs[last()]/quantity * $rs[last()]/price) "
      "  - sum($rs/(quantity * price)), 2)");
  std::istringstream stream(check);
  std::string token;
  while (stream >> token) {
    EXPECT_EQ(token, "0");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SalesGroupingProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace xqa

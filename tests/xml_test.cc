#include <gtest/gtest.h>

#include "base/error.h"
#include "xml/serializer.h"
#include "xml/xml_parser.h"

namespace xqa {
namespace {

TEST(XmlParser, SimpleDocument) {
  DocumentPtr doc = ParseXml("<a><b>hello</b><c/></a>");
  const Node* root = doc->root();
  ASSERT_EQ(root->kind(), NodeKind::kDocument);
  ASSERT_EQ(root->children().size(), 1u);
  const Node* a = root->children()[0];
  EXPECT_EQ(a->name(), "a");
  ASSERT_EQ(a->children().size(), 2u);
  EXPECT_EQ(a->children()[0]->name(), "b");
  EXPECT_EQ(a->children()[0]->StringValue(), "hello");
  EXPECT_EQ(a->children()[1]->name(), "c");
  EXPECT_TRUE(a->children()[1]->children().empty());
}

TEST(XmlParser, Attributes) {
  DocumentPtr doc = ParseXml(R"(<e a="1" b='two &amp; three'/>)");
  const Node* e = doc->root()->children()[0];
  ASSERT_EQ(e->attributes().size(), 2u);
  EXPECT_EQ(e->FindAttribute("a")->content(), "1");
  EXPECT_EQ(e->FindAttribute("b")->content(), "two & three");
  EXPECT_EQ(e->FindAttribute("missing"), nullptr);
}

TEST(XmlParser, EntityAndCharReferences) {
  DocumentPtr doc = ParseXml("<e>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</e>");
  EXPECT_EQ(doc->root()->children()[0]->StringValue(), "<>&\"'AB");
}

TEST(XmlParser, CDataSection) {
  DocumentPtr doc = ParseXml("<e><![CDATA[a <raw> & b]]></e>");
  EXPECT_EQ(doc->root()->children()[0]->StringValue(), "a <raw> & b");
}

TEST(XmlParser, CommentsAndPis) {
  DocumentPtr doc = ParseXml("<e><!-- note --><?target data?>x</e>");
  const Node* e = doc->root()->children()[0];
  ASSERT_EQ(e->children().size(), 3u);
  EXPECT_EQ(e->children()[0]->kind(), NodeKind::kComment);
  EXPECT_EQ(e->children()[0]->content(), " note ");
  EXPECT_EQ(e->children()[1]->kind(), NodeKind::kProcessingInstruction);
  EXPECT_EQ(e->children()[1]->name(), "target");
  // Comments do not contribute to element string value.
  EXPECT_EQ(e->StringValue(), "x");
}

TEST(XmlParser, DropsCommentsWhenConfigured) {
  XmlParseOptions options;
  options.keep_comments = false;
  DocumentPtr doc = ParseXml("<e><!-- note -->x</e>", options);
  EXPECT_EQ(doc->root()->children()[0]->children().size(), 1u);
}

TEST(XmlParser, WhitespaceStripping) {
  DocumentPtr doc = ParseXml("<a>\n  <b>x</b>\n  <c>y</c>\n</a>");
  EXPECT_EQ(doc->root()->children()[0]->children().size(), 2u);
  XmlParseOptions keep;
  keep.strip_whitespace_text = false;
  DocumentPtr doc2 = ParseXml("<a>\n  <b>x</b>\n</a>", keep);
  EXPECT_EQ(doc2->root()->children()[0]->children().size(), 3u);
}

TEST(XmlParser, MixedContentMergesAdjacentText) {
  DocumentPtr doc = ParseXml("<e>a<![CDATA[b]]>c</e>");
  const Node* e = doc->root()->children()[0];
  ASSERT_EQ(e->children().size(), 1u);  // one merged text node
  EXPECT_EQ(e->children()[0]->content(), "abc");
}

TEST(XmlParser, PrologAndDoctypeSkipped) {
  DocumentPtr doc = ParseXml(
      "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a>x</a>");
  EXPECT_EQ(doc->root()->children().back()->StringValue(), "x");
}

TEST(XmlParser, Errors) {
  EXPECT_THROW(ParseXml("<a><b></a>"), XQueryError);         // mismatched tag
  EXPECT_THROW(ParseXml("<a>"), XQueryError);                // unterminated
  EXPECT_THROW(ParseXml("<a/><b/>"), XQueryError);           // two roots
  EXPECT_THROW(ParseXml("plain text"), XQueryError);         // no element
  EXPECT_THROW(ParseXml("<a x=\"1\" x=\"2\"/>"), XQueryError);  // dup attr
  EXPECT_THROW(ParseXml("<a>&unknown;</a>"), XQueryError);
  EXPECT_THROW(ParseXml("<a b=<></a>"), XQueryError);
  EXPECT_THROW(ParseXml(""), XQueryError);
}

TEST(XmlParser, DepthLimitGuardsStack) {
  // Nesting past the default limit must raise a clean XMLP0001, not
  // overflow the recursive parser's stack. Sanitizer builds scale the
  // depths down with the tighter default limit (their frames are bigger;
  // see base/sanitizer.h).
#if defined(XQA_UNDER_ASAN)
  constexpr int kOverLimit = 500, kRaisedLimit = 200, kDeep = 150;
#else
  constexpr int kOverLimit = 5000, kRaisedLimit = 6000, kDeep = 2000;
#endif
  std::string deep;
  for (int i = 0; i < kOverLimit; ++i) deep += "<d>";
  EXPECT_THROW(ParseXml(deep), XQueryError);
  // A configurable limit admits deeper documents.
  XmlParseOptions options;
  options.max_depth = kRaisedLimit;
  std::string balanced;
  for (int i = 0; i < kDeep; ++i) balanced += "<d>";
  balanced += "x";
  for (int i = 0; i < kDeep; ++i) balanced += "</d>";
  DocumentPtr doc = ParseXml(balanced, options);
  EXPECT_EQ(doc->root()->StringValue(), "x");
}

TEST(XmlParser, SiblingsDoNotAccumulateDepth) {
  std::string wide = "<r>";
  for (int i = 0; i < 3000; ++i) wide += "<c/>";
  wide += "</r>";
  DocumentPtr doc = ParseXml(wide);
  EXPECT_EQ(doc->root()->children()[0]->children().size(), 3000u);
}

TEST(XmlParser, ErrorCarriesLocation) {
  try {
    ParseXml("<a>\n<b></c>\n</a>");
    FAIL() << "expected XQueryError";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXMLP0001);
    EXPECT_EQ(error.location().line, 2u);
  }
}

TEST(DocumentOrder, PreorderWithAttributes) {
  DocumentPtr doc = ParseXml(R"(<a x="1"><b y="2">t</b><c/></a>)");
  const Node* a = doc->root()->children()[0];
  const Node* x = a->attributes()[0];
  const Node* b = a->children()[0];
  const Node* y = b->attributes()[0];
  const Node* t = b->children()[0];
  const Node* c = a->children()[1];
  EXPECT_LT(CompareDocumentOrder(a, x), 0);
  EXPECT_LT(CompareDocumentOrder(x, b), 0);
  EXPECT_LT(CompareDocumentOrder(b, y), 0);
  EXPECT_LT(CompareDocumentOrder(y, t), 0);
  EXPECT_LT(CompareDocumentOrder(t, c), 0);
  EXPECT_EQ(CompareDocumentOrder(b, b), 0);
  EXPECT_GT(CompareDocumentOrder(c, a), 0);
}

TEST(DocumentOrder, CrossDocumentStable) {
  DocumentPtr d1 = ParseXml("<a/>");
  DocumentPtr d2 = ParseXml("<b/>");
  const Node* a = d1->root()->children()[0];
  const Node* b = d2->root()->children()[0];
  int cmp = CompareDocumentOrder(a, b);
  EXPECT_NE(cmp, 0);
  EXPECT_EQ(cmp, -CompareDocumentOrder(b, a));
}

TEST(NodeApi, StringValueConcatenatesDescendants) {
  DocumentPtr doc = ParseXml("<a>x<b>y<c>z</c></b>w</a>");
  EXPECT_EQ(doc->root()->children()[0]->StringValue(), "xyzw");
  EXPECT_EQ(doc->root()->StringValue(), "xyzw");
}

TEST(NodeApi, IsDescendantOrSelfOf) {
  DocumentPtr doc = ParseXml("<a><b><c/></b><d/></a>");
  const Node* a = doc->root()->children()[0];
  const Node* b = a->children()[0];
  const Node* c = b->children()[0];
  const Node* d = a->children()[1];
  EXPECT_TRUE(c->IsDescendantOrSelfOf(a));
  EXPECT_TRUE(c->IsDescendantOrSelfOf(c));
  EXPECT_FALSE(d->IsDescendantOrSelfOf(b));
}

TEST(DocumentApi, ImportNodeDeepCopies) {
  DocumentPtr source = ParseXml(R"(<a x="1"><b>t</b></a>)");
  auto target = MakeDocument();
  Node* copy = target->ImportNode(source->root()->children()[0]);
  target->AppendChild(target->root(), copy);
  target->SealOrder();
  EXPECT_EQ(copy->document(), target.get());
  EXPECT_EQ(copy->name(), "a");
  EXPECT_EQ(copy->FindAttribute("x")->content(), "1");
  EXPECT_EQ(copy->StringValue(), "t");
  EXPECT_NE(copy, source->root()->children()[0]);
}

TEST(Serializer, RoundTrip) {
  const char* xml = R"(<order id="7"><item>tea</item><item>cup &amp; saucer</item></order>)";
  DocumentPtr doc = ParseXml(xml);
  EXPECT_EQ(SerializeNode(doc->root()->children()[0]), xml);
}

TEST(Serializer, EscapesSpecialCharacters) {
  auto doc = MakeDocument();
  Node* e = doc->CreateElement("e");
  doc->AppendChild(doc->root(), e);
  doc->AppendAttribute(e, doc->CreateAttribute("a", "x\"<y"));
  doc->AppendChild(e, doc->CreateText("a<b&c"));
  doc->SealOrder();
  EXPECT_EQ(SerializeNode(e), R"(<e a="x&quot;&lt;y">a&lt;b&amp;c</e>)");
}

TEST(Serializer, PrettyPrint) {
  DocumentPtr doc = ParseXml("<a><b>x</b><c/></a>");
  SerializeOptions options;
  options.indent = 2;
  std::string out = SerializeNode(doc->root()->children()[0], options);
  EXPECT_EQ(out, "<a>\n  <b>x</b>\n  <c/>\n</a>");
}

TEST(Serializer, EmptyElementShortForm) {
  DocumentPtr doc = ParseXml("<a><empty/></a>");
  EXPECT_EQ(SerializeNode(doc->root()->children()[0]), "<a><empty/></a>");
}

}  // namespace
}  // namespace xqa

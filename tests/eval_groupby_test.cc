// In-depth tests of the paper's group by / nest extension semantics
// (Section 3): group formation, deep-equal keys, empty-sequence groups,
// custom equality, nest ordering, post-group clauses, group output order.

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

class GroupByTest : public ::testing::Test {
 protected:
  std::string Run(const std::string& query,
                  const std::string& xml = "<root/>") {
    DocumentPtr doc = Engine::ParseDocument(xml);
    return engine_.Compile(query).ExecuteToString(doc);
  }

  Engine engine_;
};

TEST_F(GroupByTest, BasicGroupingByAtomicValue) {
  EXPECT_EQ(Run("for $x in (1, 2, 1, 3, 2, 1) "
                "group by $x into $k nest $x into $xs "
                "order by $k return count($xs)"),
            "3 2 1");
}

TEST_F(GroupByTest, GroupsFormInFirstSeenOrderWithoutOrderBy) {
  // Implementation-defined but deterministic: first-seen order.
  EXPECT_EQ(Run("for $x in (5, 3, 5, 9, 3) group by $x into $k return $k"),
            "5 3 9");
}

TEST_F(GroupByTest, EmptySequenceIsADistinctGroup) {
  const char* doc = "<r><e><k>1</k></e><e/><e><k>1</k></e><e/></r>";
  EXPECT_EQ(Run("for $e in //e group by $e/k into $k nest $e into $es "
                "return count($es)", doc),
            "2 2");
}

TEST_F(GroupByTest, MultiKeyGrouping) {
  const char* doc =
      "<r><e><a>1</a><b>x</b></e><e><a>1</a><b>y</b></e>"
      "<e><a>1</a><b>x</b></e><e><a>2</a><b>x</b></e></r>";
  EXPECT_EQ(Run("for $e in //e group by $e/a into $a, $e/b into $b "
                "nest $e into $es order by $a, $b return count($es)", doc),
            "2 1 1");
}

TEST_F(GroupByTest, GroupingKeySequencePermutationsDistinct) {
  const char* doc =
      "<r><e><t>p</t><t>q</t></e><e><t>q</t><t>p</t></e>"
      "<e><t>p</t><t>q</t></e></r>";
  EXPECT_EQ(Run("for $e in //e group by $e/t into $k nest $e into $es "
                "return count($es)", doc),
            "2 1");
}

TEST_F(GroupByTest, NumericCrossTypeKeysGroupTogether) {
  // deep-equal: integer 1 and double 1.0e0 are the same key.
  EXPECT_EQ(Run("for $x in (1, 1e0, 2) group by $x into $k "
                "nest $x into $xs return count($xs)"),
            "2 1");
}

TEST_F(GroupByTest, RepresentativeIsFromFirstTuple) {
  // The grouping variable is bound to a representative of its group — ours
  // is the first occurrence's key value (documented).
  const char* doc =
      "<r><e id=\"first\"><k>a</k></e><e id=\"second\"><k>a</k></e></r>";
  EXPECT_EQ(Run("for $e in //e group by $e/k into $k "
                "return string($k/../@id)", doc),
            "first");
}

TEST_F(GroupByTest, NestMergesSequencesLosingBoundaries) {
  // Two tuples with 2-element nest expressions merge into one 4-sequence.
  const char* doc = "<r><e><v>1</v><v>2</v></e><e><v>3</v><v>4</v></e></r>";
  EXPECT_EQ(Run("for $e in //e group by 1 into $k nest $e/v into $vs "
                "return count($vs)", doc),
            "4");
}

TEST_F(GroupByTest, EmptyNestContributionsVanish) {
  // Section 3.1 / Q6 remark: empty nesting values leave no trace, so the
  // nesting sequences of one group can have different cardinalities.
  const char* doc =
      "<r><e><k>g</k><v>1</v></e><e><k>g</k></e><e><k>g</k><v>2</v></e></r>";
  EXPECT_EQ(Run("for $e in //e group by $e/k into $k "
                "nest $e/v into $vs, $e into $es "
                "return (count($vs), count($es))", doc),
            "2 3");
}

TEST_F(GroupByTest, MultipleNestVariables) {
  const char* doc =
      "<r><s><p>10</p><q>1</q></s><s><p>20</p><q>2</q></s></r>";
  EXPECT_EQ(Run("for $s in //s group by 1 into $k "
                "nest $s/p into $ps, $s/q into $qs "
                "return (sum($ps), sum($qs))", doc),
            "30 3");
}

TEST_F(GroupByTest, NestPreservesInputTupleOrder) {
  EXPECT_EQ(Run("for $x in (3, 1, 2) group by 1 into $k nest $x into $xs "
                "return string-join(for $v in $xs return string($v), \",\")"),
            "3,1,2");
}

TEST_F(GroupByTest, NestWithOrderByReorders) {
  EXPECT_EQ(Run("for $x in (3, 1, 2) group by 1 into $k "
                "nest $x order by $x into $xs "
                "return string-join(for $v in $xs return string($v), \",\")"),
            "1,2,3");
  EXPECT_EQ(Run("for $x in (3, 1, 2) group by 1 into $k "
                "nest $x order by $x descending into $xs "
                "return string-join(for $v in $xs return string($v), \",\")"),
            "3,2,1");
}

TEST_F(GroupByTest, NestOrderByUsesInputScopeVariables) {
  // Order the nested values by a derived pre-group binding.
  EXPECT_EQ(Run("for $x in (1, 2, 3) let $neg := -$x "
                "group by 1 into $k nest $x order by $neg into $xs "
                "return string-join(for $v in $xs return string($v), \",\")"),
            "3,2,1");
}

TEST_F(GroupByTest, PerNestIndependentOrdering) {
  EXPECT_EQ(Run("for $x in (2, 1, 3) group by 1 into $k "
                "nest $x order by $x into $asc, "
                "     $x order by $x descending into $desc "
                "return (string-join(for $v in $asc return string($v), \",\"), "
                "        string-join(for $v in $desc return string($v), \",\"))"),
            "1,2,3 3,2,1");
}

TEST_F(GroupByTest, GroupByWithNoNest) {
  // SELECT DISTINCT (Q5 pattern).
  EXPECT_EQ(Run("for $x in (2, 1, 2, 3, 1) group by $x into $k "
                "order by $k return $k"),
            "1 2 3");
}

TEST_F(GroupByTest, PostGroupLetWhereOrder) {
  EXPECT_EQ(Run("for $x in (1, 1, 2, 2, 2, 3) "
                "group by $x into $k nest $x into $xs "
                "let $n := count($xs) "
                "where $n >= 2 "
                "order by $n descending "
                "return ($k, $n)"),
            "2 3 1 2");
}

TEST_F(GroupByTest, MultiplePostGroupLets) {
  EXPECT_EQ(Run("for $x in (1, 2, 3, 4) "
                "group by $x mod 2 into $parity nest $x into $xs "
                "let $n := count($xs), $s := sum($xs) "
                "order by $parity return ($parity, $n, $s)"),
            "0 2 6 1 2 4");
}

TEST_F(GroupByTest, UsingCustomEqualityMergesGroups) {
  EXPECT_EQ(Run("declare function local:mod3($a as item()*, $b as item()*) "
                "as xs:boolean { $a mod 3 = $b mod 3 }; "
                "for $x in (1, 4, 2, 7, 9) "
                "group by $x into $k using local:mod3 "
                "nest $x into $xs return count($xs)"),
            "3 1 1");  // {1,4,7}, {2}, {9}
}

TEST_F(GroupByTest, UsingDeepEqualExplicitlyMatchesDefault) {
  std::string default_eq = Run(
      "for $x in (1, 2, 1) group by $x into $k nest $x into $xs "
      "order by $k return count($xs)");
  std::string using_eq = Run(
      "for $x in (1, 2, 1) group by $x into $k using deep-equal "
      "nest $x into $xs order by $k return count($xs)");
  EXPECT_EQ(default_eq, using_eq);
}

TEST_F(GroupByTest, MixedUsingAndDefaultKeys) {
  const char* doc =
      "<r><e><a>1</a><b>x</b></e><e><a>4</a><b>x</b></e>"
      "<e><a>1</a><b>y</b></e></r>";
  EXPECT_EQ(Run("declare function local:mod3($p as item()*, $q as item()*) "
                "as xs:boolean { number($p) mod 3 = number($q) mod 3 }; "
                "for $e in //e "
                "group by $e/a into $a using local:mod3, $e/b into $b "
                "nest $e into $es return count($es)",
                doc),
            "2 1");  // (1~4, x) together; (1, y) separate
}

TEST_F(GroupByTest, GroupingByConstructedElements) {
  // Grouping keys may be freshly constructed nodes; deep-equal compares
  // structure, not identity.
  EXPECT_EQ(Run("for $x in (1, 2, 1) "
                "let $e := <wrap>{$x}</wrap> "
                "group by $e into $k nest $x into $xs "
                "order by string($k) return count($xs)"),
            "2 1");
}

TEST_F(GroupByTest, NestedFlworGroupBys) {
  // A FLWOR may contain only one group by; nesting provides more levels
  // (Section 3.5). Two-level aggregation:
  EXPECT_EQ(Run("for $x in (11, 12, 21, 22, 23) "
                "group by $x idiv 10 into $tens nest $x into $xs "
                "order by $tens "
                "return <t n=\"{$tens}\">{ "
                "  for $y in $xs group by $y mod 2 into $p nest $y into $ys "
                "  order by $p return <p>{count($ys)}</p> "
                "}</t>"),
            "<t n=\"1\"><p>1</p><p>1</p></t><t n=\"2\"><p>1</p><p>2</p></t>");
}

TEST_F(GroupByTest, GroupByOverEmptyInput) {
  EXPECT_EQ(Run("count(for $x in () group by $x into $k return $k)"), "0");
}

TEST_F(GroupByTest, SingleGroupConstantKey) {
  EXPECT_EQ(Run("for $x in 1 to 100 group by 1 into $k nest $x into $xs "
                "return (count($xs), sum($xs))"),
            "100 5050");
}

TEST_F(GroupByTest, GroupingVariableHoldsKeyNotTuple) {
  // When the key expression returns multiple items, the grouping variable
  // holds the whole sequence.
  const char* doc = "<r><e><t>a</t><t>b</t></e><e><t>a</t><t>b</t></e></r>";
  EXPECT_EQ(Run("for $e in //e group by $e/t into $k nest $e into $es "
                "return count($k)", doc),
            "2");
}

TEST_F(GroupByTest, NegativeZeroSharesGroupWithPositiveZero) {
  // -0.0 eq +0.0, so the hash table must not split them into two groups
  // (the hash normalizes the zero sign before mixing).
  EXPECT_EQ(Run("for $v in (-0.0e0, 0.0e0, 0.0e0) "
                "group by $v into $k nest $v into $vs return count($vs)"),
            "3");
  // Cross-type numeric keys that compare eq-equal also share a group.
  EXPECT_EQ(Run("for $v in (0.5e0, 0.5, 1) "
                "group by $v into $k nest $v into $vs "
                "order by number($k) return count($vs)"),
            "2 1");
}

TEST_F(GroupByTest, OrderByAfterGroupOrdersGroups) {
  EXPECT_EQ(Run("for $x in (30, 10, 30, 20, 10, 10) "
                "group by $x into $k nest $x into $xs "
                "order by count($xs) descending, $k "
                "return ($k, count($xs))"),
            "10 3 30 2 20 1");
}

}  // namespace
}  // namespace xqa

// Cost-gated logical rewrite layer: predicate pushdown, order-by
// elimination, and guarded group-by extraction. Every firing case asserts
// byte-identical results against the rewrite-off plan across the
// {scalar, batched} x {1, 4 threads} execution grid; every refusal case
// asserts the rule stayed silent AND that results are still identical (a
// refusal must never be load-bearing for correctness in only one engine).

#include <gtest/gtest.h>

#include <string>

#include "api/engine.h"
#include "optimizer/rewriter.h"
#include "parser/parser.h"
#include "workload/orders.h"

namespace xqa {
namespace {

Engine::Options AllRulesOff() {
  Engine::Options options;
  options.optimizer.detect_groupby_patterns = false;
  options.optimizer.push_predicates = false;
  options.optimizer.eliminate_order_by = false;
  options.optimizer.fold_constants = false;
  return options;
}

/// Compiles `query` with and without the rewrite layer and asserts
/// byte-identical serialized results across the execution grid. Returns the
/// optimized query's rewrite counters for rule-specific assertions.
RewriteCounts ExpectGridIdentity(const std::string& query,
                                 const DocumentPtr& doc) {
  PreparedQuery baseline = Engine(AllRulesOff()).Compile(query);
  PreparedQuery optimized = Engine().Compile(query);
  for (bool batched : {false, true}) {
    for (int threads : {1, 4}) {
      ExecutionOptions exec;
      exec.use_batched_execution = batched;
      exec.num_threads = threads;
      EXPECT_EQ(baseline.ExecuteToString(doc, exec),
                optimized.ExecuteToString(doc, exec))
          << query << "\n[batched=" << batched << " threads=" << threads
          << "]";
    }
  }
  return optimized.rewrite_counts();
}

bool FiredRuleContains(const PreparedQuery& query, const std::string& text) {
  for (const std::string& rule : query.fired_rules()) {
    if (rule.find(text) != std::string::npos) return true;
  }
  return false;
}

DocumentPtr LineitemDoc() {
  return Engine::ParseDocument(
      "<r>"
      "<lineitem><quantity>5</quantity><discount>3</discount>"
      "<shipmode>AIR</shipmode></lineitem>"
      "<lineitem><quantity>3</quantity><discount>7</discount>"
      "<shipmode>RAIL</shipmode></lineitem>"
      "<lineitem><quantity>5</quantity><discount>1</discount>"
      "<shipmode>MAIL</shipmode></lineitem>"
      "<lineitem><quantity>9</quantity><discount>9</discount>"
      "<shipmode>SHIP</shipmode></lineitem>"
      "</r>");
}

// ---------------------------------------------------------------------------
// Predicate pushdown.

TEST(OptimizerRewrite, LiteralComparisonPushesIntoIndexScan) {
  const char* query =
      "for $i in //lineitem where $i/quantity = 5 return $i/shipmode";
  DocumentPtr doc = LineitemDoc();
  RewriteCounts counts = ExpectGridIdentity(query, doc);
  EXPECT_EQ(counts.predicates_pushed, 1);
  EXPECT_EQ(counts.total(), 1);

  PreparedQuery optimized = Engine().Compile(query);
  EXPECT_TRUE(FiredRuleContains(optimized, "predicate pushdown"));
  EXPECT_TRUE(FiredRuleContains(optimized, "index value filter"));
  // Not just "same as baseline": the filtered scan selects the right rows.
  EXPECT_EQ(optimized.ExecuteToString(doc),
            "<shipmode>AIR</shipmode><shipmode>MAIL</shipmode>");
}

TEST(OptimizerRewrite, GeneralWhereBecomesDomainPredicate) {
  const char* query =
      "for $i in //lineitem where $i/quantity > $i/discount "
      "return $i/shipmode";
  RewriteCounts counts = ExpectGridIdentity(query, LineitemDoc());
  EXPECT_EQ(counts.predicates_pushed, 1);
  PreparedQuery optimized = Engine().Compile(query);
  EXPECT_TRUE(FiredRuleContains(optimized, "predicate pushdown"));
  EXPECT_FALSE(FiredRuleContains(optimized, "index value filter"));
}

TEST(OptimizerRewrite, NoPushdownWhenWhereReferencesTwoVariables) {
  // The where correlates both iteration variables; hoisting it into either
  // domain would capture the other variable out of scope.
  RewriteCounts counts = ExpectGridIdentity(
      "for $i in //lineitem for $j in //lineitem "
      "where $i/quantity = $j/discount return $i/shipmode",
      LineitemDoc());
  EXPECT_EQ(counts.predicates_pushed, 0);
}

TEST(OptimizerRewrite, NoPushdownPastPositionalBinding) {
  // `at $p` numbers the unfiltered stream; filtering the domain would
  // renumber it, so the rule must refuse.
  RewriteCounts counts = ExpectGridIdentity(
      "for $i at $p in //lineitem where $i/quantity = 5 return $p",
      LineitemDoc());
  EXPECT_EQ(counts.predicates_pushed, 0);
}

TEST(OptimizerRewrite, NoPushdownOfUserFunctionCalls) {
  // A user function body may read the focus or globals; the hoist is only
  // sound for self-contained expressions over the bound variable.
  RewriteCounts counts = ExpectGridIdentity(
      "declare function local:big($q) { number($q) > 4 }; "
      "for $i in //lineitem where local:big($i/quantity) "
      "return $i/shipmode",
      LineitemDoc());
  EXPECT_EQ(counts.predicates_pushed, 0);
}

// ---------------------------------------------------------------------------
// Order-by elimination.

TEST(OptimizerRewrite, PositionalOrderByIsEliminated) {
  workload::OrderConfig config;
  config.num_orders = 60;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  const char* query =
      "for $l at $p in //order/lineitem order by $p return $l/shipmode";
  RewriteCounts counts = ExpectGridIdentity(query, doc);
  EXPECT_EQ(counts.order_by_eliminated, 1);

  PreparedQuery optimized = Engine().Compile(query);
  EXPECT_TRUE(FiredRuleContains(optimized, "order-by elimination"));
  ProfiledResult profiled = optimized.ExecuteProfiled(doc);
  EXPECT_EQ(profiled.stats.order_by_elided, 1);
}

TEST(OptimizerRewrite, CountVarOrderByIsEliminated) {
  RewriteCounts counts = ExpectGridIdentity(
      "for $i in //lineitem count $c order by $c return $i/shipmode",
      LineitemDoc());
  EXPECT_EQ(counts.order_by_eliminated, 1);
}

TEST(OptimizerRewrite, KeySortedRangeDomainOrderByIsEliminated) {
  // `1 to n` is derived key-sorted on the item itself, so ordering by the
  // range variable is a no-op the property layer can prove.
  RewriteCounts counts = ExpectGridIdentity(
      "for $x in 1 to 50 order by $x return $x", LineitemDoc());
  EXPECT_EQ(counts.order_by_eliminated, 1);
}

TEST(OptimizerRewrite, DescendingOrderByIsKept) {
  // The positional key is ascending in stream order; a descending sort is a
  // real reversal and must survive.
  RewriteCounts counts = ExpectGridIdentity(
      "for $l at $p in //lineitem order by $p descending "
      "return $l/shipmode",
      LineitemDoc());
  EXPECT_EQ(counts.order_by_eliminated, 0);
}

TEST(OptimizerRewrite, PartiallyImpliedOrderKeysAreKept) {
  // Only the first key is implied by the input ordering; the second is not,
  // so the clause must stay (partial elimination would change tie-breaks).
  RewriteCounts counts = ExpectGridIdentity(
      "for $l at $p in //lineitem "
      "order by string($l/shipmode), $p return $l/quantity",
      LineitemDoc());
  EXPECT_EQ(counts.order_by_eliminated, 0);
}

// ---------------------------------------------------------------------------
// Group-by extraction: runtime guard and cost gate.

TEST(OptimizerRewrite, GroupByGuardFallsBackOnRepeatedChildren) {
  // Section 7 hazard: an item with two <k> children joins two groups under
  // the naive self-join but only one under group by. The compile-time
  // rewrite still fires; the runtime guard detects the repetition and takes
  // the original plan, keeping results identical.
  DocumentPtr doc = Engine::ParseDocument(
      "<r><i><k>a</k><k>b</k></i><i><k>b</k></i><i><k>a</k></i></r>");
  const char* query = R"(
    for $a in distinct-values(//i/k)
    let $items := for $i in //i where $i/k = $a return $i
    return <g>{string($a), count($items)}</g>
  )";
  RewriteCounts counts = ExpectGridIdentity(query, doc);
  EXPECT_EQ(counts.groupby_extracted, 1);

  // Same query over single-occurrence data takes the grouped branch; the
  // grid identity there is covered by optimizer_test.cc. Here also check the
  // compile-time counter reaches profiled stats.
  ProfiledResult profiled = Engine().Compile(query).ExecuteProfiled(doc);
  EXPECT_EQ(profiled.stats.rewrites_groupby, 1);
}

TEST(OptimizerRewrite, GroupByExtractionIsCostGated) {
  // exactly-one(...) has derived cardinality 1: below the default threshold
  // the extraction refuses (the hash table would cost more than the tiny
  // self-join), while threshold 1 lets it fire.
  const char* query = R"(
    for $a in distinct-values(exactly-one(//r)/k)
    let $items := for $i in exactly-one(//r) where $i/k = $a return $i
    return count($items)
  )";
  ModulePtr gated = ParseQuery(query);
  EXPECT_EQ(OptimizeModule(gated.get(), OptimizerOptions()).groupby_extracted,
            0);

  ModulePtr lowered = ParseQuery(query);
  OptimizerOptions low_threshold;
  low_threshold.groupby_cardinality_threshold = 1;
  EXPECT_EQ(OptimizeModule(lowered.get(), low_threshold).groupby_extracted, 1);

  // Engine-level: the lowered threshold still produces identical results.
  DocumentPtr doc =
      Engine::ParseDocument("<r><k>a</k><k>b</k><k>a</k></r>");
  Engine::Options options;
  options.optimizer.groupby_cardinality_threshold = 1;
  EXPECT_EQ(Engine(AllRulesOff()).Compile(query).ExecuteToString(doc),
            Engine(options).Compile(query).ExecuteToString(doc));
}

// ---------------------------------------------------------------------------
// Observability: EXPLAIN header and QueryStats JSON.

TEST(OptimizerRewrite, ExplainShowsFiredRulesAndBothPlans) {
  PreparedQuery optimized = Engine().Compile(
      "for $i in //lineitem where $i/quantity = 5 return $i/shipmode");
  std::string plan = optimized.Explain();
  EXPECT_NE(plan.find("optimizer:"), std::string::npos);
  EXPECT_NE(plan.find("pushdown=1"), std::string::npos);
  EXPECT_NE(plan.find("plan before rewrite"), std::string::npos);
  EXPECT_NE(plan.find("plan after rewrite"), std::string::npos);
  EXPECT_NE(plan.find("predicate pushdown"), std::string::npos);
  // The rewritten plan renders the pushed index value filter on the step.
  EXPECT_NE(plan.find("pushed:"), std::string::npos);

  // Queries the optimizer leaves alone get the plain single-plan rendering.
  std::string untouched = Engine().Compile("1 + count(//a)").Explain();
  EXPECT_EQ(untouched.find("optimizer:"), std::string::npos);
  EXPECT_EQ(untouched.find("plan before rewrite"), std::string::npos);
}

TEST(OptimizerRewrite, RewriteCountersSurfaceInStatsJson) {
  DocumentPtr doc = LineitemDoc();
  PreparedQuery optimized = Engine().Compile(
      "for $l at $p in //lineitem order by $p return $l/quantity");
  EXPECT_EQ(optimized.rewrite_counts().order_by_eliminated, 1);
  ProfiledResult profiled = optimized.ExecuteProfiled(doc);
  std::string json = profiled.stats.ToJson();
  EXPECT_NE(json.find("\"rewrites_orderby_elim\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"order_by_elided\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"rewrites_groupby\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"rewrites_pushdown\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"rewrites_const_fold\": 0"), std::string::npos);
}

}  // namespace
}  // namespace xqa

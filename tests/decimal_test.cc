#include "xdm/decimal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>


#include "base/error.h"

namespace xqa {
namespace {

Decimal D(const std::string& text) {
  Decimal d;
  EXPECT_TRUE(Decimal::Parse(text, &d)) << text;
  return d;
}

TEST(DecimalParse, Basics) {
  EXPECT_EQ(D("12.34").ToString(), "12.34");
  EXPECT_EQ(D("-0.5").ToString(), "-0.5");
  EXPECT_EQ(D("7").ToString(), "7");
  EXPECT_EQ(D("+3.25").ToString(), "3.25");
  EXPECT_EQ(D(".5").ToString(), "0.5");
  EXPECT_EQ(D("5.").ToString(), "5");
}

TEST(DecimalParse, NormalizesTrailingZeros) {
  EXPECT_EQ(D("1.500").ToString(), "1.5");
  EXPECT_EQ(D("0.000").ToString(), "0");
  EXPECT_EQ(D("10.0").ToString(), "10");
}

TEST(DecimalParse, Rejects) {
  Decimal d;
  EXPECT_FALSE(Decimal::Parse("", &d));
  EXPECT_FALSE(Decimal::Parse("abc", &d));
  EXPECT_FALSE(Decimal::Parse("1.2.3", &d));
  EXPECT_FALSE(Decimal::Parse(".", &d));
  EXPECT_FALSE(Decimal::Parse("1e5", &d));  // exponent is xs:double
}

TEST(DecimalArithmetic, AddSubtract) {
  EXPECT_EQ(D("1.25").Add(D("2.75")).ToString(), "4");
  EXPECT_EQ(D("0.1").Add(D("0.2")).ToString(), "0.3");  // exact, unlike double
  EXPECT_EQ(D("5").Subtract(D("7.5")).ToString(), "-2.5");
  EXPECT_EQ(D("65.00").Subtract(D("6.00")).ToString(), "59");
}

TEST(DecimalArithmetic, Multiply) {
  EXPECT_EQ(D("1.5").Multiply(D("2")).ToString(), "3");
  EXPECT_EQ(D("0.01").Multiply(D("0.01")).ToString(), "0.0001");
  EXPECT_EQ(D("-3.3").Multiply(D("3")).ToString(), "-9.9");
}

TEST(DecimalArithmetic, Divide) {
  EXPECT_EQ(D("1").Divide(D("4")).ToString(), "0.25");
  EXPECT_EQ(D("109.5").Divide(D("2")).ToString(), "54.75");
  EXPECT_EQ(D("1").Divide(D("3")).ToString(), "0.333333333333333333");
  EXPECT_EQ(D("-9").Divide(D("2")).ToString(), "-4.5");
}

TEST(DecimalArithmetic, DivisionByZeroThrows) {
  EXPECT_THROW(D("1").Divide(D("0")), XQueryError);
  EXPECT_THROW(D("1").IntegerDivide(D("0")), XQueryError);
  EXPECT_THROW(D("1").Mod(D("0")), XQueryError);
}

TEST(DecimalArithmetic, IntegerDivideAndMod) {
  EXPECT_EQ(D("7").IntegerDivide(D("2")), 3);
  EXPECT_EQ(D("-7").IntegerDivide(D("2")), -3);  // truncates toward zero
  EXPECT_EQ(D("7.5").IntegerDivide(D("2.5")), 3);
  EXPECT_EQ(D("7").Mod(D("2")).ToString(), "1");
  EXPECT_EQ(D("-7").Mod(D("2")).ToString(), "-1");  // sign of dividend
  EXPECT_EQ(D("7.5").Mod(D("2")).ToString(), "1.5");
}

TEST(DecimalArithmetic, OverflowThrows) {
  Decimal big(INT64_MAX);
  EXPECT_THROW(big.Add(Decimal(1)), XQueryError);
  EXPECT_THROW(Decimal(INT64_MIN).Negate(), XQueryError);
}

TEST(DecimalCompare, Basics) {
  EXPECT_EQ(D("1.5").Compare(D("1.50")), 0);
  EXPECT_LT(D("1.4").Compare(D("1.5")), 0);
  EXPECT_GT(D("2").Compare(D("1.999")), 0);
  EXPECT_LT(D("-1").Compare(D("0.001")), 0);
  // Different scales, same value.
  EXPECT_EQ(Decimal::FromUnscaled(1500, 3).Compare(D("1.5")), 0);
}

TEST(DecimalRounding, FloorCeilingRound) {
  EXPECT_EQ(D("2.7").Floor().ToString(), "2");
  EXPECT_EQ(D("-2.1").Floor().ToString(), "-3");
  EXPECT_EQ(D("2.1").Ceiling().ToString(), "3");
  EXPECT_EQ(D("-2.7").Ceiling().ToString(), "-2");
  EXPECT_EQ(D("2.5").Round().ToString(), "3");    // half toward +inf
  EXPECT_EQ(D("-2.5").Round().ToString(), "-2");  // half toward +inf
  EXPECT_EQ(D("2.4").Round().ToString(), "2");
}

TEST(DecimalRounding, HalfToEven) {
  EXPECT_EQ(D("2.5").RoundHalfToEven(0).ToString(), "2");
  EXPECT_EQ(D("3.5").RoundHalfToEven(0).ToString(), "4");
  EXPECT_EQ(D("2.125").RoundHalfToEven(2).ToString(), "2.12");
  EXPECT_EQ(D("2.135").RoundHalfToEven(2).ToString(), "2.14");
  EXPECT_EQ(D("-2.5").RoundHalfToEven(0).ToString(), "-2");
  EXPECT_EQ(D("2.44").RoundHalfToEven(1).ToString(), "2.4");
}

TEST(DecimalConvert, ToIntegerAndDouble) {
  EXPECT_EQ(D("42.9").ToInteger(), 42);   // truncation
  EXPECT_EQ(D("-42.9").ToInteger(), -42);
  EXPECT_DOUBLE_EQ(D("1.25").ToDouble(), 1.25);
  EXPECT_EQ(Decimal::FromDouble(2.5).ToString(), "2.5");
  EXPECT_THROW(Decimal::FromDouble(std::numeric_limits<double>::quiet_NaN()),
               XQueryError);
}

TEST(DecimalConvert, ToDoubleIsCorrectlyRounded) {
  // Regression: repeated division by 10 accumulated one ulp of error, so
  // D("0.007").ToDouble() != 0.007 and deep-equal split decimal/double
  // groups. A single division by the exact power of ten is correctly
  // rounded for every scale we support.
  EXPECT_EQ(D("0.007").ToDouble(), 0.007);
  EXPECT_EQ(D("0.1").ToDouble(), 0.1);
  EXPECT_EQ(D("2.5").ToDouble(), 2.5);
  EXPECT_EQ(D("123456.789").ToDouble(), 123456.789);
  EXPECT_EQ(D("-0.007").ToDouble(), -0.007);
  // Max supported scale: 18 fractional digits.
  EXPECT_EQ(D("0.000000000000000001").ToDouble(), 1e-18);
  EXPECT_EQ(D("9.007199254740993").ToDouble(),
            9007199254740993.0 / 1e15);
}

TEST(DecimalHash, EqualValuesHashEqual) {
  EXPECT_EQ(D("1.50").Hash(), D("1.5").Hash());
  EXPECT_EQ(Decimal::FromUnscaled(1500, 3).Hash(), D("1.5").Hash());
}

// Property sweep: a + b - b == a, (a * b) compare consistency, over a grid.
class DecimalPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(DecimalPropertyTest, AddSubtractRoundTrip) {
  int i = GetParam();
  Decimal a = Decimal::FromUnscaled(i * 37 - 500, i % 4);
  Decimal b = Decimal::FromUnscaled(i * 11 + 3, (i + 1) % 4);
  EXPECT_EQ(a.Add(b).Subtract(b).Compare(a), 0) << a.ToString();
  EXPECT_EQ(a.Add(b).Compare(b.Add(a)), 0);
  EXPECT_EQ(a.Subtract(a).ToString(), "0");
}

TEST_P(DecimalPropertyTest, CompareAntisymmetric) {
  int i = GetParam();
  Decimal a = Decimal::FromUnscaled(i * 37 - 500, i % 4);
  Decimal b = Decimal::FromUnscaled(i * 11 + 3, (i + 1) % 4);
  EXPECT_EQ(a.Compare(b), -b.Compare(a));
  // ToString round-trips through Parse.
  Decimal reparsed;
  ASSERT_TRUE(Decimal::Parse(a.ToString(), &reparsed));
  EXPECT_EQ(a.Compare(reparsed), 0);
}

INSTANTIATE_TEST_SUITE_P(Grid, DecimalPropertyTest, ::testing::Range(0, 64));

}  // namespace
}  // namespace xqa

// Deterministic fault injection (docs/ROBUSTNESS.md): unit tests of the
// injector itself (always runnable — the registry is compiled into the
// library unconditionally) plus the engine-level chaos sweep, which needs
// the call sites compiled in (-DXQA_FAULTS=ON) and skips otherwise. The
// sweep is the acceptance check: discover every reachable fault site by
// running a workload once in record mode, then re-run the workload once per
// site with that site armed, asserting a typed error propagates and the
// memory-tracker balance returns to zero after the unwind.

#include "base/fault_injection.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.h"
#include "base/error.h"
#include "base/memory_tracker.h"
#include "service/collection_store.h"
#include "workload/orders.h"

namespace xqa {
namespace {

class FaultRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { fault::Reset(); }
  void TearDown() override { fault::Reset(); }
};

TEST_F(FaultRegistryTest, DisarmedHitsOnlyCount) {
  fault::Hit("unit.a", ErrorCode::kXQSV0004);
  fault::Hit("unit.a", ErrorCode::kXQSV0004);
  fault::Hit("unit.b", ErrorCode::kXPST0003);
  EXPECT_EQ(fault::TotalHits(), 3u);
  EXPECT_EQ(fault::TotalTrips(), 0u);
  std::vector<fault::SiteInfo> sites = fault::Sites();
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0].name, "unit.a");
  EXPECT_EQ(sites[0].hits, 2u);
  EXPECT_EQ(sites[1].name, "unit.b");
  EXPECT_EQ(sites[1].code, ErrorCode::kXPST0003);
}

TEST_F(FaultRegistryTest, ArmSiteTripsOnNthHit) {
  fault::ArmSite("unit.a", 3);
  fault::Hit("unit.a", ErrorCode::kXQSV0004);
  fault::Hit("unit.a", ErrorCode::kXQSV0004);
  fault::Hit("unit.b", ErrorCode::kXPST0003);  // different site: no trip
  try {
    fault::Hit("unit.a", ErrorCode::kXQSV0004);
    FAIL() << "expected the third hit to trip";
  } catch (const XQueryError& error) {
    EXPECT_EQ(error.code(), ErrorCode::kXQSV0004);
    EXPECT_NE(std::string(error.what()).find("injected fault at unit.a"),
              std::string::npos);
  }
  EXPECT_EQ(fault::TotalTrips(), 1u);
  // The countdown is consumed: further hits pass.
  fault::Hit("unit.a", ErrorCode::kXQSV0004);
  EXPECT_EQ(fault::TotalTrips(), 1u);
}

TEST_F(FaultRegistryTest, ArmNthTripsAcrossSites) {
  fault::ArmNth(2);
  fault::Hit("unit.a", ErrorCode::kXQSV0004);
  EXPECT_THROW(fault::Hit("unit.b", ErrorCode::kXPST0003), XQueryError);
  EXPECT_EQ(fault::TotalTrips(), 1u);
}

TEST_F(FaultRegistryTest, DisarmKeepsCountersArmsOff) {
  fault::ArmSite("unit.a", 1);
  fault::Disarm();
  fault::Hit("unit.a", ErrorCode::kXQSV0004);  // no throw
  EXPECT_EQ(fault::TotalHits(), 1u);
  EXPECT_EQ(fault::TotalTrips(), 0u);
}

TEST_F(FaultRegistryTest, ResetClearsEverything) {
  fault::ArmSite("unit.a", 5);
  fault::Hit("unit.a", ErrorCode::kXQSV0004);
  fault::Reset();
  EXPECT_EQ(fault::TotalHits(), 0u);
  EXPECT_TRUE(fault::Sites().empty());
  fault::Hit("unit.a", ErrorCode::kXQSV0004);  // previous arming is gone
}

// --- Engine-level chaos sweep ----------------------------------------------

/// One pass over a workload that reaches every engine fault point: compile
/// (parse + bind), FLWOR tuple materialization, order-by keys, group-by
/// table, node construction, doc load, serialization. Executes with a
/// per-query child of `root` so allocation-path faults are reachable, and
/// serializes each result under the same tracker. `batched` selects the
/// FLWOR engine (docs/VECTORIZATION.md): the sweep below runs every site
/// under both, so fault points inside batch loops keep the same failure
/// contract as their scalar counterparts.
void RunEngineWorkload(const DocumentPtr& doc, MemoryTracker* root,
                       bool batched) {
  Engine engine;
  DocumentRegistry registry;
  registry["orders.xml"] = doc;
  const std::vector<std::string> queries = {
      "for $o in /orders/order order by $o/orderkey descending "
      "return <o>{$o/orderkey/text()}</o>",
      "for $l in /orders/order/lineitem "
      "group by $l/shipmode into $m nest $l into $ls "
      "return <g mode=\"{$m}\">{count($ls)}</g>",
      "count(doc('orders.xml')/orders/order)",
  };
  for (const std::string& query : queries) {
    MemoryTracker tracker("query", 0, root);
    ExecutionOptions exec;
    exec.memory = &tracker;
    exec.use_batched_execution = batched;
    PreparedQuery prepared = engine.Compile(query);
    Sequence result = prepared.Execute(doc, registry, exec);
    SerializeOptions serialize;
    serialize.memory = &tracker;
    SerializeSequence(result, serialize);
  }

  // Provider-backed partitioned collection scan, so the sweep covers the
  // per-partition doc.load hits under both engines. The corpus is built
  // serially (no fault sites on the ingest path) and executed through the
  // full-environment overload, the same shape the query service uses.
  service::CollectionStore corpus(service::CollectionStore::Options{4});
  std::vector<service::CollectionStore::BulkDocument> batch;
  for (int i = 0; i < 12; ++i) {
    batch.push_back({"u" + std::to_string(i) + ".xml",
                     "<d><v>" + std::to_string(i % 3) + "</v></d>"});
  }
  corpus.BulkLoad("c", batch, /*num_threads=*/1);
  auto snapshot = corpus.Snapshot();
  {
    MemoryTracker tracker("query", 0, root);
    ExecutionOptions exec;
    exec.memory = &tracker;
    exec.use_batched_execution = batched;
    PreparedQuery prepared = engine.Compile(
        "for $d in collection('c') group by $d/d/v into $v "
        "order by string($v) return <g>{$v}</g>");
    Sequence result = prepared.Execute(nullptr, nullptr, snapshot.get(), exec);
    SerializeOptions serialize;
    serialize.memory = &tracker;
    SerializeSequence(result, serialize);
  }
}

TEST(FaultSweepTest, EveryReachableSiteFailsCleanAndLeaksNothing) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "fault points compiled out; configure -DXQA_FAULTS=ON";
  }
  workload::OrderConfig config;
  config.num_orders = 60;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);

  // Record mode: one clean pass per engine discovers the reachable sites.
  fault::Reset();
  MemoryTracker record_root("root");
  RunEngineWorkload(doc, &record_root, /*batched=*/true);
  RunEngineWorkload(doc, &record_root, /*batched=*/false);
  EXPECT_EQ(record_root.used(), 0);
  std::vector<fault::SiteInfo> sites = fault::Sites();
  ASSERT_FALSE(sites.empty());
  auto recorded = [&sites](const std::string& name) {
    for (const fault::SiteInfo& site : sites) {
      if (site.name == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(recorded("compile.parse"));
  EXPECT_TRUE(recorded("compile.bind"));
  EXPECT_TRUE(recorded("flwor.tuple_alloc"));
  EXPECT_TRUE(recorded("flwor.sort_keys"));
  EXPECT_TRUE(recorded("flwor.group_alloc"));
  EXPECT_TRUE(recorded("construct.node_alloc"));
  EXPECT_TRUE(recorded("doc.load"));
  EXPECT_TRUE(recorded("serialize.buffer"));

  // Sweep: trip each site in turn, under each FLWOR engine; the workload
  // must fail with that site's typed error, and the root tracker must
  // balance after the unwind.
  for (bool batched : {true, false}) {
    for (const fault::SiteInfo& site : sites) {
      SCOPED_TRACE(std::string(batched ? "batched/" : "scalar/") + site.name);
      fault::Disarm();
      fault::ArmSite(site.name, 1);
      MemoryTracker root("root");
      try {
        RunEngineWorkload(doc, &root, batched);
        FAIL() << "armed site never tripped: " << site.name;
      } catch (const XQueryError& error) {
        EXPECT_EQ(error.code(), site.code);
        EXPECT_NE(std::string(error.what()).find("injected fault"),
                  std::string::npos);
      }
      EXPECT_EQ(root.used(), 0) << "tracker leak after " << site.name;
    }
  }

  // The engine still works once disarmed.
  fault::Reset();
  MemoryTracker root("root");
  RunEngineWorkload(doc, &root, /*batched=*/true);
  EXPECT_EQ(root.used(), 0);
}

}  // namespace
}  // namespace xqa

// Batched (vectorized) FLWOR execution ablation (docs/VECTORIZATION.md):
// the batched engine must be an invisible optimization. For every query the
// serialized result bytes, the error outcome (code and message, including
// which tuple's error wins), and the semantic profile counters must match
// the scalar tuple-at-a-time engine exactly — at every thread count, with
// and without the structural indexes.

#include <gtest/gtest.h>

#include <string>

#include "api/engine.h"
#include "workload/books.h"
#include "workload/orders.h"

namespace xqa {
namespace {

class BatchedExecutionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workload::OrderConfig config;
    config.num_orders = 3000;  // ~12k lineitems: several full morsels
    orders_ = new DocumentPtr(workload::GenerateOrdersDocument(config));
    bib_ = new DocumentPtr(
        Engine::ParseDocument(workload::PaperBibliographyXml()));
    sales_ = new DocumentPtr(Engine::ParseDocument(workload::PaperSalesXml()));
  }
  static void TearDownTestSuite() {
    delete orders_;
    delete bib_;
    delete sales_;
  }

  std::string Run(const DocumentPtr& doc, const std::string& query,
                  bool batched, int threads, bool indexed = true) {
    PreparedQuery prepared = engine_.Compile(query);
    ExecutionOptions options;
    options.use_batched_execution = batched;
    options.num_threads = threads;
    options.use_structural_index = indexed;
    return prepared.ExecuteToString(doc, options);
  }

  Status StatusOf(const DocumentPtr& doc, const std::string& query,
                  bool batched, int threads) {
    PreparedQuery prepared = engine_.Compile(query);
    ExecutionOptions options;
    options.use_batched_execution = batched;
    options.num_threads = threads;
    prepared.set_execution_options(options);
    Result<Sequence> result = prepared.TryExecute(doc);
    return result.ok() ? Status::OK() : result.status();
  }

  /// The scalar serial indexed engine is the reference; the batched engine
  /// must reproduce it byte for byte across the full configuration grid:
  /// {scalar, batched} x {1, 2, 4, hardware} threads x {indexed, walk}.
  void ExpectAblationIdentical(const DocumentPtr& doc,
                               const std::string& query) {
    const std::string reference =
        Run(doc, query, /*batched=*/false, /*threads=*/1);
    for (bool batched : {false, true}) {
      for (int threads : {1, 2, 4, 0}) {
        for (bool indexed : {true, false}) {
          EXPECT_EQ(Run(doc, query, batched, threads, indexed), reference)
              << "batched=" << batched << " threads=" << threads
              << " indexed=" << indexed << "\nquery: " << query;
        }
      }
    }
  }

  /// Both engines must fail with the identical typed error — same code,
  /// same message, same winning tuple — at every thread count.
  void ExpectSameError(const DocumentPtr& doc, const std::string& query) {
    Status reference = StatusOf(doc, query, /*batched=*/false, /*threads=*/1);
    ASSERT_NE(reference.code(), ErrorCode::kOk) << query;
    for (bool batched : {false, true}) {
      for (int threads : {1, 2, 4, 0}) {
        Status status = StatusOf(doc, query, batched, threads);
        EXPECT_EQ(status.code(), reference.code())
            << "batched=" << batched << " threads=" << threads;
        EXPECT_EQ(status.message(), reference.message())
            << "batched=" << batched << " threads=" << threads;
      }
    }
  }

  Engine engine_;
  static DocumentPtr* orders_;
  static DocumentPtr* bib_;
  static DocumentPtr* sales_;
};

DocumentPtr* BatchedExecutionTest::orders_ = nullptr;
DocumentPtr* BatchedExecutionTest::bib_ = nullptr;
DocumentPtr* BatchedExecutionTest::sales_ = nullptr;

// --- Byte identity over the corpora -----------------------------------------

TEST_F(BatchedExecutionTest, OrdersGroupByWorkloads) {
  const char* queries[] = {
      // Paper dialect: hash group-by with a nest, the Table 1 hot path.
      R"(for $l in //order/lineitem
         group by $l/quantity into $q
         nest $l/extendedprice into $prices
         order by number($q)
         return <r>{$q}<n>{count($prices)}</n><s>{sum($prices)}</s></r>)",
      // Multiple keys.
      R"(for $l in //lineitem
         group by $l/shipmode into $m, $l/returnflag into $f
         nest $l/quantity into $qs
         order by string($m), string($f)
         return <r>{$m, $f}<n>{count($qs)}</n></r>)",
      // XQuery 3.0 dialect with implicit rebinding.
      R"(for $l in //lineitem
         group by $k := string($l/shipmode)
         order by $k
         return ($k, count($l), sum($l/quantity)))",
      // nest ... order by.
      R"(for $l in //lineitem
         group by $l/shipmode into $m
         nest $l/partkey order by number($l/quantity) descending,
                                  string($l/partkey) into $parts
         return <g>{$m}<first>{$parts[1]}</first><n>{count($parts)}</n></g>)",
  };
  for (const char* query : queries) ExpectAblationIdentical(*orders_, query);
}

TEST_F(BatchedExecutionTest, OrdersScanWorkloads) {
  const char* queries[] = {
      // where + simple-path kernels over the big document.
      R"(for $l in //lineitem
         where number($l/quantity) > 25 and $l/shipmode = "AIR"
         return string($l/partkey))",
      // order by with multiple keys and directions.
      R"(for $l in //lineitem
         order by string($l/shipmode) descending, number($l/quantity),
                  string($l/partkey)
         return string($l/linenumber))",
      // let + count clauses, positional variable, nested path predicate.
      R"(for $o at $i in //order
         let $big := $o/lineitem[number(quantity) > 40]
         count $c
         where $i mod 7 = 0 and count($big) > 0
         return <r>{string($o/orderkey)}<c>{$c}</c><n>{count($big)}</n></r>)",
      // Nested FLWOR: inner batched pipeline per outer tuple.
      R"(for $o in //order
         where count($o//lineitem) > 3
         return <o>{string($o/orderkey)}
           {for $l in $o/lineitem
            order by number($l/quantity) descending
            return string($l/partkey)}</o>)",
  };
  for (const char* query : queries) ExpectAblationIdentical(*orders_, query);
}

TEST_F(BatchedExecutionTest, BooksAndSalesPaperQueries) {
  const char* bib_queries[] = {
      R"(for $b in //book
         group by $b/publisher into $p, $b/year into $y
         nest $b/price - $b/discount into $netprices
         return <group>{$p, $y}<avg>{avg($netprices)}</avg></group>)",
      R"(for $b in //book
         order by string($b/title)
         return at $r ($r, string($b/title)))",
      R"(for $b in //book
         group by $b/author into $a using xqa:set-equal
         nest $b/price into $prices
         return <group>{$a}<avg>{avg($prices)}</avg></group>)",
  };
  for (const char* query : bib_queries) ExpectAblationIdentical(*bib_, query);

  ExpectAblationIdentical(*sales_, R"(
    for $s in //sale
    group by $s/region into $region,
             year-from-dateTime($s/timestamp) into $year
    nest $s into $region-sales
    order by $year, $region
    return
      for $s in $region-sales
      group by $s/state into $state
      nest $s/(quantity * price) into $amounts
      order by $state
      return <summary>{$year, $region, $state}
        <sales>{round-half-to-even(sum($amounts), 2)}</sales></summary>
  )");
}

// --- Error determinism ------------------------------------------------------

TEST_F(BatchedExecutionTest, OrderKeyTypeErrorIdenticalInBothEngines) {
  // Key types flip mid-stream: both engines must report the identical
  // XPTY0004 for the first offending tuple in input order.
  DocumentPtr doc = Engine::ParseDocument("<root/>");
  const std::string query =
      "for $i in 1 to 2000 "
      "order by (if ($i = 1500) then \"oops\" else $i) "
      "return $i";
  ASSERT_EQ(StatusOf(doc, query, true, 1).code(), ErrorCode::kXPTY0004);
  ExpectSameError(doc, query);
}

TEST_F(BatchedExecutionTest, FirstOffendingTupleWinsInBothEngines) {
  // Two tuples fail; the lower input index must be reported by both engines
  // at every thread count (the message embeds the failing value).
  DocumentPtr doc = Engine::ParseDocument("<root/>");
  ExpectSameError(doc,
                  "for $i in 1 to 2000 "
                  "order by (if ($i = 700 or $i = 1900) then $i div 0 else $i) "
                  "return $i");
  ExpectSameError(doc,
                  "for $i in 1 to 2000 "
                  "where (if ($i = 1111) then $i idiv 0 else $i) > 0 "
                  "return $i");
}

TEST_F(BatchedExecutionTest, GroupKeyCardinalityErrorIdentical) {
  // XQuery 3.0 group by requires a singleton atomized key; the batched
  // engine must throw the same XPTY0004 as the scalar one.
  DocumentPtr doc = Engine::ParseDocument(
      "<r><e><t>a</t><t>b</t></e><e><t>c</t></e></r>");
  const std::string query =
      "for $e in //e group by $k := $e/t return count($e)";
  ASSERT_EQ(StatusOf(doc, query, true, 1).code(), ErrorCode::kXPTY0004);
  ExpectSameError(doc, query);
}

TEST_F(BatchedExecutionTest, PathOverAtomicErrorIdentical) {
  // The simple-path kernel's XPTY0004 must carry the scalar wording.
  DocumentPtr doc = Engine::ParseDocument("<root/>");
  ExpectSameError(doc, "for $i in (1, 2, 3) return $i/child::a");
}

// --- Profile counters -------------------------------------------------------

TEST_F(BatchedExecutionTest, BatchCountersPopulatedOnlyWhenBatched) {
  const std::string query =
      "for $l in //lineitem "
      "where number($l/quantity) > 10 "
      "group by $l/shipmode into $m "
      "nest $l into $ls "
      "return count($ls)";
  PreparedQuery prepared = engine_.Compile(query);

  ExecutionOptions batched;
  batched.use_batched_execution = true;
  ProfiledResult on = prepared.ExecuteProfiled(*orders_, batched);
  EXPECT_GT(on.stats.batches_emitted, 0);
  EXPECT_GE(on.stats.batch_rows_emitted, on.stats.batches_emitted);
  EXPECT_GT(on.stats.BatchFillAverage(), 0.0);

  ExecutionOptions scalar;
  scalar.use_batched_execution = false;
  ProfiledResult off = prepared.ExecuteProfiled(*orders_, scalar);
  EXPECT_EQ(off.stats.batches_emitted, 0);
  EXPECT_EQ(off.stats.batch_rows_emitted, 0);
  EXPECT_EQ(off.stats.BatchFillAverage(), 0.0);
}

TEST_F(BatchedExecutionTest, SemanticCountersMatchScalar) {
  const std::string query =
      "for $l in //lineitem "
      "group by $l/quantity into $q "
      "nest $l into $ls "
      "return count($ls)";
  PreparedQuery prepared = engine_.Compile(query);
  ExecutionOptions scalar;
  scalar.use_batched_execution = false;
  ProfiledResult reference = prepared.ExecuteProfiled(*orders_, scalar);

  ExecutionOptions batched;
  batched.use_batched_execution = true;
  ProfiledResult result = prepared.ExecuteProfiled(*orders_, batched);

  EXPECT_EQ(SerializeSequence(result.sequence),
            SerializeSequence(reference.sequence));
  EXPECT_EQ(result.stats.TotalGroupsFormed(),
            reference.stats.TotalGroupsFormed());
  EXPECT_EQ(result.stats.deep_hash_calls, reference.stats.deep_hash_calls);
  EXPECT_EQ(result.stats.tuples_flowed, reference.stats.tuples_flowed);
  EXPECT_EQ(result.stats.path_steps, reference.stats.path_steps);
}

TEST_F(BatchedExecutionTest, BatchCountersDeterministicAcrossThreads) {
  // Batch counters are semantic (counted per clause on the main stats, not
  // per lane), so they must not vary with the thread count.
  const std::string query =
      "for $l in //lineitem "
      "where number($l/quantity) > 10 "
      "return string($l/partkey)";
  PreparedQuery prepared = engine_.Compile(query);
  ExecutionOptions serial;
  ProfiledResult reference = prepared.ExecuteProfiled(*orders_, serial);
  EXPECT_GT(reference.stats.batches_emitted, 0);
  for (int threads : {2, 4, 0}) {
    ExecutionOptions options;
    options.num_threads = threads;
    ProfiledResult result = prepared.ExecuteProfiled(*orders_, options);
    EXPECT_EQ(result.stats.batches_emitted, reference.stats.batches_emitted)
        << "threads=" << threads;
    EXPECT_EQ(result.stats.batch_rows_emitted,
              reference.stats.batch_rows_emitted)
        << "threads=" << threads;
  }
}

TEST_F(BatchedExecutionTest, ExplainAnalyzeReportsBatchFill) {
  PreparedQuery prepared = engine_.Compile(
      "for $l in //lineitem "
      "group by $l/shipmode into $m nest $l into $ls "
      "return count($ls)");
  std::string plan = prepared.ExplainAnalyze(*orders_);
  EXPECT_NE(plan.find("batches "), std::string::npos) << plan;
  EXPECT_NE(plan.find("fill avg"), std::string::npos) << plan;
}

// --- Hash group-by key edge cases -------------------------------------------

TEST_F(BatchedExecutionTest, NegativeZeroGroupsWithPositiveZero) {
  // -0.0 eq +0.0, so DeepHashSequence must hash them identically or the
  // hash table would split an eq-equal group. Exercised well past the
  // parallel cutoff so the partial-table merge sees both spellings too.
  DocumentPtr doc = Engine::ParseDocument("<root/>");
  const std::string paper_dialect =
      "for $i in 1 to 1000 "
      "let $v := if ($i mod 2 = 0) then 0.0e0 else -0.0e0 "
      "group by $v into $k nest $i into $is "
      "return count($is)";
  const std::string xq3_dialect =
      "for $i in 1 to 1000 "
      "let $v := if ($i mod 2 = 0) then 0.0e0 else -0.0e0 "
      "group by $k := $v "
      "return count($i)";
  for (const std::string& query : {paper_dialect, xq3_dialect}) {
    for (bool batched : {false, true}) {
      for (int threads : {1, 4}) {
        EXPECT_EQ(Run(doc, query, batched, threads), "1000")
            << "batched=" << batched << " threads=" << threads
            << "\nquery: " << query;
      }
    }
  }
}

TEST_F(BatchedExecutionTest, EqualDecimalAndDoubleShareAGroup) {
  // 0.5 (xs:decimal) eq 0.5e0 (xs:double): cross-type numeric keys must
  // land in one group under the hash table, same as the eq comparison.
  DocumentPtr doc = Engine::ParseDocument("<root/>");
  const std::string query =
      "for $i in 1 to 1000 "
      "let $v := if ($i mod 2 = 0) then 0.5e0 else 0.5 "
      "group by $v into $k nest $i into $is "
      "return count($is)";
  for (bool batched : {false, true}) {
    for (int threads : {1, 4}) {
      EXPECT_EQ(Run(doc, query, batched, threads), "1000")
          << "batched=" << batched << " threads=" << threads;
    }
  }
  // Integers mix in too: 1 eq 1.0 eq 1.0e0.
  EXPECT_EQ(Run(doc,
                "for $v in (1, 1.0, 1e0, 2) "
                "group by $v into $k nest $v into $vs "
                "order by number($k) return count($vs)",
                true, 1),
            "3 1");
}

}  // namespace
}  // namespace xqa

// Built-in function library tests, one section per category.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "functions/function_registry.h"

namespace xqa {
namespace {

class FunctionsTest : public ::testing::Test {
 protected:
  std::string Run(const std::string& query,
                  const std::string& xml = "<root/>") {
    DocumentPtr doc = Engine::ParseDocument(xml);
    return engine_.Compile(query).ExecuteToString(doc);
  }

  ErrorCode RunError(const std::string& query) {
    DocumentPtr doc = Engine::ParseDocument("<root/>");
    try {
      engine_.Compile(query).Execute(doc);
    } catch (const XQueryError& error) {
      return error.code();
    }
    return ErrorCode::kOk;
  }

  Engine engine_;
};

// --- Registry ----------------------------------------------------------------

TEST(FunctionRegistry, LookupRespectsArity) {
  EXPECT_GE(FindBuiltin("count", 1), 0);
  EXPECT_EQ(FindBuiltin("count", 2), -1);
  EXPECT_GE(FindBuiltin("fn:count", 1), 0);
  EXPECT_GE(FindBuiltin("concat", 5), 0);  // unbounded max arity
  EXPECT_EQ(FindBuiltin("concat", 1), -1);
  EXPECT_EQ(FindBuiltin("does-not-exist", 1), -1);
  EXPECT_GE(FindBuiltin("string", 0), 0);
  EXPECT_GE(FindBuiltin("string", 1), 0);
}

// --- Aggregates ---------------------------------------------------------------

TEST_F(FunctionsTest, Count) {
  EXPECT_EQ(Run("count(())"), "0");
  EXPECT_EQ(Run("count((1, 2, 3))"), "3");
}

TEST_F(FunctionsTest, Sum) {
  EXPECT_EQ(Run("sum(())"), "0");
  EXPECT_EQ(Run("sum((1, 2, 3))"), "6");
  EXPECT_EQ(Run("sum((1.5, 2.5))"), "4");
  EXPECT_EQ(Run("sum((1, 2.5))"), "3.5");
  EXPECT_EQ(Run("sum((1, 1e1))"), "11");
  EXPECT_EQ(Run("sum((), 99)"), "99");  // explicit zero
  EXPECT_EQ(RunError("sum((\"a\"))"), ErrorCode::kFORG0006);
}

TEST_F(FunctionsTest, SumAtomizesNodes) {
  EXPECT_EQ(Run("sum(//p)", "<r><p>1</p><p>2.5</p></r>"), "3.5");
}

TEST_F(FunctionsTest, Avg) {
  EXPECT_EQ(Run("count(avg(()))"), "0");
  EXPECT_EQ(Run("avg((1, 2, 3, 4))"), "2.5");
  EXPECT_EQ(Run("avg((2, 4))"), "3");
  EXPECT_EQ(Run("avg((1e0, 2e0))"), "1.5");
}

TEST_F(FunctionsTest, MinMax) {
  EXPECT_EQ(Run("min((3, 1, 2))"), "1");
  EXPECT_EQ(Run("max((3, 1, 2))"), "3");
  EXPECT_EQ(Run("min((1.5, 1))"), "1");
  EXPECT_EQ(Run("max((\"a\", \"c\", \"b\"))"), "c");
  EXPECT_EQ(Run("count(min(()))"), "0");
  EXPECT_EQ(Run("max((1, 0e0 div 0e0))"), "NaN");  // NaN propagates
}

// --- Sequences ----------------------------------------------------------------

TEST_F(FunctionsTest, ExistsEmpty) {
  EXPECT_EQ(Run("exists(())"), "false");
  EXPECT_EQ(Run("exists((1))"), "true");
  EXPECT_EQ(Run("empty(())"), "true");
  EXPECT_EQ(Run("empty((1))"), "false");
}

TEST_F(FunctionsTest, DistinctValues) {
  EXPECT_EQ(Run("count(distinct-values((1, 2, 1, 3, 2)))"), "3");
  EXPECT_EQ(Run("distinct-values((1, 1e0, 1.0))"), "1");  // numeric eq
  EXPECT_EQ(Run("count(distinct-values((\"a\", \"A\")))"), "2");
  EXPECT_EQ(Run("count(distinct-values(()))"), "0");
  // First-occurrence order.
  EXPECT_EQ(Run("distinct-values((3, 1, 3, 2))"), "3 1 2");
  // NaN equals NaN for distinct-values.
  EXPECT_EQ(Run("count(distinct-values((0e0 div 0e0, 0e0 div 0e0)))"), "1");
}

TEST_F(FunctionsTest, ReverseSubsequence) {
  EXPECT_EQ(Run("reverse((1, 2, 3))"), "3 2 1");
  EXPECT_EQ(Run("subsequence((1, 2, 3, 4, 5), 2, 3)"), "2 3 4");
  EXPECT_EQ(Run("subsequence((1, 2, 3), 2)"), "2 3");
  EXPECT_EQ(Run("count(subsequence((1, 2), 5))"), "0");
}

TEST_F(FunctionsTest, InsertRemoveIndexOf) {
  EXPECT_EQ(Run("insert-before((1, 2, 3), 2, (9))"), "1 9 2 3");
  EXPECT_EQ(Run("insert-before((1, 2), 9, (3))"), "1 2 3");
  EXPECT_EQ(Run("remove((1, 2, 3), 2)"), "1 3");
  EXPECT_EQ(Run("remove((1, 2, 3), 9)"), "1 2 3");
  EXPECT_EQ(Run("index-of((10, 20, 10), 10)"), "1 3");
  EXPECT_EQ(Run("count(index-of((1, 2), 9))"), "0");
}

TEST_F(FunctionsTest, CardinalityCheckers) {
  EXPECT_EQ(Run("zero-or-one(())"), "");
  EXPECT_EQ(Run("zero-or-one((1))"), "1");
  EXPECT_EQ(RunError("zero-or-one((1, 2))"), ErrorCode::kFORG0003);
  EXPECT_EQ(RunError("one-or-more(())"), ErrorCode::kFORG0004);
  EXPECT_EQ(Run("exactly-one((7))"), "7");
  EXPECT_EQ(RunError("exactly-one(())"), ErrorCode::kFORG0005);
  EXPECT_EQ(RunError("exactly-one((1, 2))"), ErrorCode::kFORG0005);
}

TEST_F(FunctionsTest, DeepEqualFunction) {
  EXPECT_EQ(Run("deep-equal((1, 2), (1, 2))"), "true");
  EXPECT_EQ(Run("deep-equal((1, 2), (2, 1))"), "false");
  EXPECT_EQ(Run("deep-equal((), ())"), "true");
}

TEST_F(FunctionsTest, DataFunction) {
  EXPECT_EQ(Run("data(//p)", "<r><p>5</p></r>"), "5");
  EXPECT_EQ(Run("count(data(()))"), "0");
}

// --- Strings ------------------------------------------------------------------

TEST_F(FunctionsTest, StringAndConcat) {
  EXPECT_EQ(Run("string(42)"), "42");
  EXPECT_EQ(Run("string(())"), "");
  EXPECT_EQ(Run("concat(\"a\", \"b\", \"c\")"), "abc");
  EXPECT_EQ(Run("concat(\"a\", (), 1)"), "a1");
  EXPECT_EQ(Run("string-join((\"a\", \"b\"), \"-\")"), "a-b");
  EXPECT_EQ(Run("string-join((), \"-\")"), "");
}

TEST_F(FunctionsTest, StringTests) {
  EXPECT_EQ(Run("contains(\"banana\", \"nan\")"), "true");
  EXPECT_EQ(Run("contains(\"banana\", \"xyz\")"), "false");
  EXPECT_EQ(Run("contains(\"abc\", \"\")"), "true");
  EXPECT_EQ(Run("starts-with(\"banana\", \"ban\")"), "true");
  EXPECT_EQ(Run("ends-with(\"banana\", \"ana\")"), "true");
  EXPECT_EQ(Run("ends-with(\"banana\", \"bab\")"), "false");
}

TEST_F(FunctionsTest, SubstringFamily) {
  EXPECT_EQ(Run("substring(\"hello\", 2)"), "ello");
  EXPECT_EQ(Run("substring(\"hello\", 2, 3)"), "ell");
  EXPECT_EQ(Run("substring(\"hello\", 0)"), "hello");
  EXPECT_EQ(Run("substring-before(\"a=b\", \"=\")"), "a");
  EXPECT_EQ(Run("substring-after(\"a=b\", \"=\")"), "b");
  EXPECT_EQ(Run("substring-after(\"ab\", \"x\")"), "");
  EXPECT_EQ(Run("string-length(\"hello\")"), "5");
  EXPECT_EQ(Run("string-length(\"\")"), "0");
}

TEST_F(FunctionsTest, CaseAndSpace) {
  EXPECT_EQ(Run("upper-case(\"aBc\")"), "ABC");
  EXPECT_EQ(Run("lower-case(\"AbC\")"), "abc");
  EXPECT_EQ(Run("normalize-space(\"  a   b \")"), "a b");
  EXPECT_EQ(Run("translate(\"abcabc\", \"ab\", \"AB\")"), "ABcABc");
  EXPECT_EQ(Run("translate(\"abc\", \"b\", \"\")"), "ac");  // deletion
}

// --- Codepoint-aware string functions (UTF-8) --------------------------------

TEST_F(FunctionsTest, StringLengthCountsCodepoints) {
  EXPECT_EQ(Run("string-length(\"héllo\")"), "5");
  EXPECT_EQ(Run("string-length(\"naïve\")"), "5");
  EXPECT_EQ(Run("string-length(\"日本語\")"), "3");
  EXPECT_EQ(Run("string-length(\"a\U0001F600b\")"), "3");  // 4-byte emoji
}

TEST_F(FunctionsTest, SubstringNeverSplitsMultibyte) {
  EXPECT_EQ(Run("substring(\"héllo\", 2)"), "éllo");
  EXPECT_EQ(Run("substring(\"héllo\", 2, 1)"), "é");
  EXPECT_EQ(Run("substring(\"héllo\", 1, 2)"), "hé");
  EXPECT_EQ(Run("substring(\"日本語\", 2, 1)"), "本");
  EXPECT_EQ(Run("substring(\"a\U0001F600b\", 2, 1)"), "\U0001F600");
  EXPECT_EQ(Run("string-length(substring(\"héllo\", 3))"), "3");
}

TEST_F(FunctionsTest, SubstringSpecialDoubles) {
  // F&O 5.4.3: positions are fn:round-ed once (half toward +INF); NaN start
  // or length yields the empty string; infinite bounds work directly.
  EXPECT_EQ(Run("substring(\"12345\", 1.5, 2.6)"), "234");
  EXPECT_EQ(Run("substring(\"12345\", 0, 3)"), "12");
  EXPECT_EQ(Run("substring(\"12345\", 5, -3)"), "");
  EXPECT_EQ(Run("substring(\"12345\", -3, 5)"), "1");
  EXPECT_EQ(Run("substring(\"12345\", 0 div 0e0, 3)"), "");
  EXPECT_EQ(Run("substring(\"12345\", 1, 0 div 0e0)"), "");
  EXPECT_EQ(Run("substring(\"12345\", -42, 1 div 0e0)"), "12345");
  EXPECT_EQ(Run("substring(\"12345\", -1 div 0e0, 1 div 0e0)"), "");
  EXPECT_EQ(Run("substring(\"12345\", 1 div 0e0)"), "");
  EXPECT_EQ(Run("substring(\"12345\", 1.5, -0.5)"), "");  // round(-0.5) = -0
  EXPECT_EQ(Run("substring(\"hello\", 100)"), "");
}

TEST_F(FunctionsTest, CaseMappingCoversLatin1) {
  EXPECT_EQ(Run("upper-case(\"héllo\")"), "HÉLLO");
  EXPECT_EQ(Run("lower-case(\"ÀÉÎÕÜ\")"), "àéîõü");
  EXPECT_EQ(Run("upper-case(\"àéîõü\")"), "ÀÉÎÕÜ");
  // × (U+00D7) and ÷ (U+00F7) sit inside the letter ranges but are not
  // letters; they must pass through unchanged.
  EXPECT_EQ(Run("lower-case(\"×÷\")"), "×÷");
  EXPECT_EQ(Run("upper-case(\"×÷\")"), "×÷");
  // Codepoints outside the mapped ranges are never altered byte-wise.
  EXPECT_EQ(Run("upper-case(\"日本語a\")"), "日本語A");
  EXPECT_EQ(Run("string-length(upper-case(\"héllo\"))"), "5");
}

// --- Numerics -----------------------------------------------------------------

TEST_F(FunctionsTest, NumberFunction) {
  EXPECT_EQ(Run("number(\"12.5\")"), "12.5");
  EXPECT_EQ(Run("number(\"abc\")"), "NaN");
  EXPECT_EQ(Run("number(())"), "NaN");
  EXPECT_EQ(Run("number(true())"), "1");
}

TEST_F(FunctionsTest, RoundingFamily) {
  EXPECT_EQ(Run("abs(-4.5)"), "4.5");
  EXPECT_EQ(Run("abs(-3)"), "3");
  EXPECT_EQ(Run("floor(2.7)"), "2");
  EXPECT_EQ(Run("ceiling(2.1)"), "3");
  EXPECT_EQ(Run("round(2.5)"), "3");
  EXPECT_EQ(Run("round(-2.5)"), "-2");
  EXPECT_EQ(Run("round-half-to-even(2.5)"), "2");
  EXPECT_EQ(Run("round-half-to-even(2.345, 2)"), "2.34");
  EXPECT_EQ(Run("count(abs(()))"), "0");
}

TEST_F(FunctionsTest, CastConstructors) {
  EXPECT_EQ(Run("xs:integer(\"42\")"), "42");
  EXPECT_EQ(Run("xs:decimal(\"1.50\")"), "1.5");
  EXPECT_EQ(Run("xs:double(\"1e2\")"), "100");
  EXPECT_EQ(Run("xs:string(3.5)"), "3.5");
  EXPECT_EQ(Run("xs:boolean(\"1\")"), "true");
  EXPECT_EQ(Run("count(xs:integer(()))"), "0");
  EXPECT_EQ(RunError("xs:integer(\"nope\")"), ErrorCode::kFORG0001);
}

// --- Date / time ---------------------------------------------------------------

TEST_F(FunctionsTest, DateTimeComponents) {
  EXPECT_EQ(Run("year-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07\"))"),
            "2004");
  EXPECT_EQ(Run("month-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07\"))"),
            "1");
  EXPECT_EQ(Run("day-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07\"))"),
            "31");
  EXPECT_EQ(Run("hours-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07\"))"),
            "11");
  EXPECT_EQ(Run("minutes-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07\"))"),
            "32");
  EXPECT_EQ(Run("seconds-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07\"))"),
            "7");
  EXPECT_EQ(
      Run("seconds-from-dateTime(xs:dateTime(\"2004-01-31T11:32:07.5\"))"),
      "7.5");
  EXPECT_EQ(Run("year-from-date(xs:date(\"1999-12-31\"))"), "1999");
  EXPECT_EQ(Run("count(year-from-dateTime(()))"), "0");
}

TEST_F(FunctionsTest, DateTimeFromUntypedNodes) {
  // The paper's queries apply components directly to timestamp elements.
  EXPECT_EQ(Run("year-from-dateTime(//ts)",
                "<r><ts>2004-05-20T18:03:44</ts></r>"),
            "2004");
}

// --- Nodes ---------------------------------------------------------------------

TEST_F(FunctionsTest, NameFunctions) {
  const char* doc = "<r><ns:item xmlns:ns=\"urn:x\" a=\"1\">v</ns:item></r>";
  EXPECT_EQ(Run("name(/r/*)", doc), "ns:item");
  EXPECT_EQ(Run("local-name(/r/*)", doc), "item");
  EXPECT_EQ(Run("string(node-name(/r/*))", doc), "ns:item");
  EXPECT_EQ(Run("name(())"), "");
  EXPECT_EQ(Run("count(node-name(()))"), "0");
}

TEST_F(FunctionsTest, BooleansAndNot) {
  EXPECT_EQ(Run("not(())"), "true");
  EXPECT_EQ(Run("not(0)"), "true");
  EXPECT_EQ(Run("boolean((1))"), "true");
  EXPECT_EQ(Run("true()"), "true");
  EXPECT_EQ(Run("false()"), "false");
}

TEST_F(FunctionsTest, PositionLast) {
  EXPECT_EQ(Run("(\"a\", \"b\", \"c\")[position() = 2]"), "b");
  EXPECT_EQ(Run("(\"a\", \"b\", \"c\")[position() = last()]"), "c");
}

// --- Membership helpers (Sections 3.3 / 5) --------------------------------------

TEST_F(FunctionsTest, SetEqual) {
  EXPECT_EQ(Run("xqa:set-equal((1, 2), (2, 1))"), "true");
  EXPECT_EQ(Run("xqa:set-equal((1, 2), (1, 2, 2))"), "true");  // set semantics
  EXPECT_EQ(Run("xqa:set-equal((1, 2), (1, 3))"), "false");
  EXPECT_EQ(Run("xqa:set-equal((), ())"), "true");
  EXPECT_EQ(Run("xqa:set-equal((), (1))"), "false");
}

TEST_F(FunctionsTest, Paths) {
  const char* doc =
      "<r><categories><software><db><concurrency/></db><distributed/>"
      "</software></categories></r>";
  EXPECT_EQ(Run("string-join(xqa:paths(//categories/*), \",\")", doc),
            "software,software/db,software/db/concurrency,"
            "software/distributed");
  EXPECT_EQ(Run("count(xqa:paths(()))"), "0");
}

TEST_F(FunctionsTest, Cube) {
  EXPECT_EQ(Run("count(xqa:cube((1, 2)))"), "4");
  EXPECT_EQ(Run("count(xqa:cube((1, 2, 3)))"), "8");
  EXPECT_EQ(Run("count(xqa:cube(()))"), "1");
  // Subset elements carry the dimension values.
  EXPECT_EQ(Run("count(xqa:cube((1, 2))[count(dim) = 2])"), "1");
}

TEST_F(FunctionsTest, Rollup) {
  EXPECT_EQ(Run("count(xqa:rollup((1, 2, 3)))"), "4");  // prefixes incl. ()
  EXPECT_EQ(Run("count(xqa:rollup(()))"), "1");
}

}  // namespace
}  // namespace xqa

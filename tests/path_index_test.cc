// Document structural indexes (docs/INDEXES.md): per-document name
// interning, subtree spans, and the element-name index behind descendant
// path steps — plus the use_structural_index ablation, which must be
// byte-identical to the indexed evaluation on every workload.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.h"
#include "workload/books.h"
#include "workload/orders.h"
#include "workload/sales.h"

namespace xqa {
namespace {

// --- Name interning ---------------------------------------------------------

TEST(NamePoolTest, InternsNamesToDenseIds) {
  DocumentPtr doc = Engine::ParseDocument(
      "<bib><book year=\"1994\"><title>TCP/IP</title></book>"
      "<book year=\"2000\"><title>Data</title></book></bib>");
  // Equal names share one id; ids are dense.
  EXPECT_LT(doc->LookupName("bib"), doc->name_pool_size());
  EXPECT_LT(doc->LookupName("book"), doc->name_pool_size());
  EXPECT_NE(doc->LookupName("book"), doc->LookupName("title"));
  EXPECT_EQ(doc->LookupName("nonexistent"), kNameIdAbsent);

  const Node* bib = doc->root()->children()[0];
  ASSERT_EQ(bib->children().size(), 2u);
  EXPECT_EQ(bib->children()[0]->name_id(), bib->children()[1]->name_id());
  EXPECT_EQ(bib->children()[0]->name_id(), doc->LookupName("book"));
  // Attribute names are interned too.
  EXPECT_EQ(bib->children()[0]->attributes()[0]->name_id(),
            doc->LookupName("year"));
}

TEST(NamePoolTest, NamelessKindsCarryAbsentId) {
  DocumentPtr doc = Engine::ParseDocument("<a>text<!--c--></a>");
  EXPECT_EQ(doc->root()->name_id(), kNameIdAbsent);
  const Node* a = doc->root()->children()[0];
  for (const Node* child : a->children()) {
    EXPECT_EQ(child->name_id(), kNameIdAbsent) << "kind "
        << static_cast<int>(child->kind());
  }
}

// --- Subtree spans ----------------------------------------------------------

TEST(SubtreeSpanTest, SpansCoverExactlyTheSubtree) {
  DocumentPtr doc = Engine::ParseDocument(
      "<r><a x=\"1\"><b/><c><d/></c></a><e/></r>");
  ASSERT_TRUE(doc->sealed());
  const Node* root = doc->root();
  // The document node spans every node.
  EXPECT_EQ(root->order_index(), 0u);
  EXPECT_EQ(root->subtree_end(), static_cast<uint32_t>(doc->node_count()));

  const Node* r = root->children()[0];
  const Node* a = r->children()[0];
  const Node* e = r->children()[1];
  // Sibling spans are adjacent and disjoint.
  EXPECT_EQ(a->subtree_end(), e->order_index());
  EXPECT_LT(a->order_index(), a->subtree_end());
  // The attribute sits inside its element's span, right after the element.
  const Node* x = a->attributes()[0];
  EXPECT_EQ(x->order_index(), a->order_index() + 1);
  EXPECT_EQ(x->subtree_end(), x->order_index() + 1);

  // Span nesting mirrors ancestry for every pair of elements.
  std::vector<const Node*> all = {r, a, e, a->children()[0],
                                  a->children()[1],
                                  a->children()[1]->children()[0]};
  for (const Node* outer : all) {
    for (const Node* inner : all) {
      bool contained = outer->order_index() <= inner->order_index() &&
                       inner->order_index() < outer->subtree_end();
      EXPECT_EQ(inner->IsDescendantOrSelfOf(outer), contained)
          << outer->name() << " vs " << inner->name();
    }
  }
}

// --- Element-name index -----------------------------------------------------

TEST(ElementIndexTest, BuiltOnlyAboveThreshold) {
  DocumentPtr small = Engine::ParseDocument("<r><a/><a/></r>");
  EXPECT_FALSE(small->has_element_index());

  workload::BooksConfig config;
  config.num_books = 50;
  DocumentPtr large = workload::GenerateBooksDocument(config);
  ASSERT_GE(large->node_count(), Document::kElementIndexMinNodes);
  EXPECT_TRUE(large->has_element_index());
}

TEST(ElementIndexTest, BucketsArePreorderSortedAndComplete) {
  workload::OrderConfig config;
  config.num_orders = 40;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  ASSERT_TRUE(doc->has_element_index());
  const std::vector<Node*>* bucket =
      doc->ElementsWithName(doc->LookupName("lineitem"));
  ASSERT_NE(bucket, nullptr);
  EXPECT_EQ(static_cast<int>(bucket->size()),
            workload::CountLineitems(config));
  for (size_t i = 1; i < bucket->size(); ++i) {
    EXPECT_LT((*bucket)[i - 1]->order_index(), (*bucket)[i]->order_index());
  }
  for (const Node* element : *bucket) {
    EXPECT_EQ(element->kind(), NodeKind::kElement);
    EXPECT_EQ(element->name(), "lineitem");
  }
}

TEST(ElementIndexTest, OutOfRangeAndMissingNamesAreNull) {
  DocumentPtr small = Engine::ParseDocument("<r><a/></r>");
  EXPECT_EQ(small->ElementsWithName(0), nullptr);  // no index built
  workload::BooksConfig config;
  DocumentPtr large = workload::GenerateBooksDocument(config);
  EXPECT_EQ(large->ElementsWithName(kNameIdAbsent), nullptr);
}

// --- Index-backed evaluation and counters -----------------------------------

class PathIndexQueryTest : public ::testing::Test {
 protected:
  static ProfiledResult RunProfiled(const Engine& engine,
                                    const DocumentPtr& doc,
                                    const std::string& query,
                                    bool use_index) {
    PreparedQuery prepared = engine.Compile(query);
    ExecutionOptions options;
    options.use_structural_index = use_index;
    prepared.set_execution_options(options);
    return prepared.ExecuteProfiled(doc);
  }

  Engine engine_;
};

TEST_F(PathIndexQueryTest, DescendantStepUsesIndex) {
  workload::OrderConfig config;
  config.num_orders = 30;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);

  ProfiledResult indexed = RunProfiled(engine_, doc, "//lineitem", true);
  EXPECT_GT(indexed.stats.index_scans, 0);
  EXPECT_EQ(indexed.stats.fallback_walks, 0);
  EXPECT_EQ(indexed.stats.index_scan_nodes,
            static_cast<int64_t>(indexed.sequence.size()));

  ProfiledResult walked = RunProfiled(engine_, doc, "//lineitem", false);
  EXPECT_EQ(walked.stats.index_scans, 0);
  EXPECT_GT(walked.stats.fallback_walks, 0);
  // The walk visits every node under the root; the scan only the matches.
  EXPECT_GT(walked.stats.fallback_walk_nodes, indexed.stats.index_scan_nodes);

  EXPECT_EQ(SerializeSequence(indexed.sequence),
            SerializeSequence(walked.sequence));
}

TEST_F(PathIndexQueryTest, AbsentNameIsAnEmptyIndexedScan) {
  workload::OrderConfig config;
  config.num_orders = 20;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  ProfiledResult result = RunProfiled(engine_, doc, "//nonexistent", true);
  EXPECT_TRUE(result.sequence.empty());
  EXPECT_GT(result.stats.index_scans, 0);
  EXPECT_EQ(result.stats.index_scan_nodes, 0);
  EXPECT_EQ(result.stats.fallback_walks, 0);
}

TEST_F(PathIndexQueryTest, WildcardFallsBackToWalking) {
  workload::OrderConfig config;
  config.num_orders = 20;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  ProfiledResult result = RunProfiled(engine_, doc, "//*", true);
  EXPECT_EQ(result.stats.index_scans, 0);
  EXPECT_GT(result.stats.fallback_walks, 0);
  EXPECT_FALSE(result.sequence.empty());
}

TEST_F(PathIndexQueryTest, TinyDocumentFallsBackToWalking) {
  DocumentPtr doc = Engine::ParseDocument("<r><a/><a/></r>");
  ASSERT_FALSE(doc->has_element_index());
  ProfiledResult result = RunProfiled(engine_, doc, "//a", true);
  EXPECT_EQ(result.sequence.size(), 2u);
  EXPECT_EQ(result.stats.index_scans, 0);
  EXPECT_GT(result.stats.fallback_walks, 0);
}

TEST_F(PathIndexQueryTest, ExplainAnalyzeReportsIndexScans) {
  workload::OrderConfig config;
  config.num_orders = 20;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);
  PreparedQuery query = engine_.Compile("//lineitem/quantity");
  std::string plan = query.ExplainAnalyze(doc);
  EXPECT_NE(plan.find("index scans"), std::string::npos) << plan;
  EXPECT_NE(plan.find("fallback walks"), std::string::npos) << plan;
  EXPECT_EQ(plan.find("index scans 0 "), std::string::npos) << plan;
}

TEST_F(PathIndexQueryTest, NameCacheSurvivesDocumentChanges) {
  // One PreparedQuery over documents with different name pools: the per-step
  // cache is keyed by document id and must re-resolve on each new document.
  PreparedQuery query = engine_.Compile("//item");
  DocumentPtr doc1 = Engine::ParseDocument(
      "<r><pad1/><pad2/><pad3/><pad4/><pad5/><pad6/><pad7/><pad8/><pad9/>"
      "<pad10/><pad11/><pad12/><pad13/><pad14/><pad15/><pad16/><pad17/>"
      "<pad18/><pad19/><pad20/><pad21/><pad22/><pad23/><pad24/><pad25/>"
      "<pad26/><pad27/><pad28/><pad29/><item>one</item></r>");
  DocumentPtr doc2 = Engine::ParseDocument(
      "<r><x/><item>a</item><y/><item>b</item><z1/><z2/><z3/><z4/><z5/>"
      "<z6/><z7/><z8/><z9/><z10/><z11/><z12/><z13/><z14/><z15/><z16/>"
      "<z17/><z18/><z19/><z20/><z21/><z22/><z23/><z24/><z25/><z26/></r>");
  ASSERT_TRUE(doc1->has_element_index());
  ASSERT_TRUE(doc2->has_element_index());
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(query.Execute(doc1).size(), 1u) << "round " << round;
    EXPECT_EQ(query.Execute(doc2).size(), 2u) << "round " << round;
  }
}

// --- Deep documents (iterative walk, no C++ stack overflow) -----------------

TEST_F(PathIndexQueryTest, DeepDocumentEvaluatesInBothModes) {
  constexpr int kDepth = 150000;
  DocumentPtr doc = MakeDocument();
  Node* current = doc->CreateElement("d");
  doc->AppendChild(doc->root(), current);
  for (int i = 1; i < kDepth; ++i) {
    Node* next = doc->CreateElement("d");
    doc->AppendChild(current, next);
    current = next;
  }
  doc->AppendChild(current, doc->CreateElement("leaf"));
  doc->SealOrder();
  ASSERT_TRUE(doc->has_element_index());

  for (bool use_index : {true, false}) {
    ProfiledResult leaf = RunProfiled(engine_, doc, "//leaf", use_index);
    EXPECT_EQ(leaf.sequence.size(), 1u) << "use_index=" << use_index;
    ProfiledResult chain = RunProfiled(engine_, doc, "//d", use_index);
    EXPECT_EQ(chain.sequence.size(), static_cast<size_t>(kDepth))
        << "use_index=" << use_index;
  }
}

// --- Ablation property: indexed == fallback, byte for byte ------------------

struct AblationCase {
  const char* workload;
  uint64_t seed;
};

class PathAblationPropertyTest
    : public ::testing::TestWithParam<AblationCase> {};

TEST_P(PathAblationPropertyTest, IndexedAndFallbackAgree) {
  const AblationCase& param = GetParam();
  DocumentPtr doc;
  std::vector<std::string> queries;
  if (std::string(param.workload) == "orders") {
    workload::OrderConfig config;
    config.num_orders = 60;
    config.seed = param.seed;
    doc = workload::GenerateOrdersDocument(config);
    queries = {
        "//lineitem",
        "//order/lineitem/quantity",
        "//order[count(.//lineitem) > 3]/orderkey",
        "for $l in //lineitem where $l/shipmode = \"MODE-1\" "
        "  return string($l/partkey)",
        "//customer//city",
        "count(//comment)",
    };
  } else if (std::string(param.workload) == "books") {
    workload::BooksConfig config;
    config.num_books = 50;
    config.with_categories = true;
    config.seed = param.seed;
    doc = workload::GenerateBooksDocument(config);
    queries = {
        "//book/title",
        "//author",
        "for $b in //book group by $b/publisher into $p "
        "  nest $b/price into $prices "
        "  return <g>{$p}<n>{count($prices)}</n></g>",
        "//book[publisher]/year",
        "//categories//db",
    };
  } else {
    workload::SalesConfig config;
    config.num_sales = 80;
    config.seed = param.seed;
    doc = workload::GenerateSalesDocument(config);
    queries = {
        "//sale/product",
        "//sale[region = \"West\"]/state",
        "for $s in //sale group by $s/region into $r "
        "  nest $s/(quantity * price) into $amounts "
        "  order by string($r) return <r>{$r}<t>{sum($amounts)}</t></r>",
    };
  }

  Engine engine;
  for (const std::string& text : queries) {
    PreparedQuery indexed = engine.Compile(text);
    PreparedQuery fallback = engine.Compile(text);
    ExecutionOptions no_index;
    no_index.use_structural_index = false;
    fallback.set_execution_options(no_index);
    EXPECT_EQ(indexed.ExecuteToString(doc), fallback.ExecuteToString(doc))
        << param.workload << " seed " << param.seed << "\nquery: " << text;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PathAblationPropertyTest,
    ::testing::Values(AblationCase{"orders", 3}, AblationCase{"orders", 17},
                      AblationCase{"orders", 91}, AblationCase{"books", 3},
                      AblationCase{"books", 17}, AblationCase{"books", 91},
                      AblationCase{"sales", 3}, AblationCase{"sales", 17},
                      AblationCase{"sales", 91}),
    [](const ::testing::TestParamInfo<AblationCase>& info) {
      return std::string(info.param.workload) + "_" +
             std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace xqa

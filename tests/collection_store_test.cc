// Sharded CollectionStore + partitioned collection() scans
// (docs/SERVICE.md): store semantics (sharding, gauges, version discipline),
// snapshot consistency and caching, bulk parallel ingest, and the
// acceptance-criterion identity grid — the partitioned scan must be
// byte-identical to the serial scalar engine across {1,2,4,hw} threads under
// both FLWOR engines.

#include "service/collection_store.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/engine.h"
#include "base/cancellation.h"
#include "base/fault_injection.h"
#include "base/memory_tracker.h"

namespace xqa {
namespace {

using service::CollectionSnapshot;
using service::CollectionStore;

/// A small corpus with predictable content: URIs doc-000.xml .. doc-NNN.xml,
/// each `<doc><id>i</id><v>i mod 7</v></doc>`.
std::vector<CollectionStore::BulkDocument> MakeBatch(int count) {
  std::vector<CollectionStore::BulkDocument> batch;
  batch.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    char uri[32];
    std::snprintf(uri, sizeof(uri), "doc-%03d.xml", i);
    batch.push_back({uri, "<doc><id>" + std::to_string(i) + "</id><v>" +
                              std::to_string(i % 7) + "</v></doc>"});
  }
  return batch;
}

TEST(CollectionStoreTest, PutGetRemoveWithinCollections) {
  CollectionStore store(CollectionStore::Options{4});
  EXPECT_FALSE(store.Put("a", "x.xml", Engine::ParseDocument("<x/>")));
  EXPECT_FALSE(store.Put("b", "x.xml", Engine::ParseDocument("<y/>")));
  EXPECT_EQ(store.size(), 2u);
  ASSERT_NE(store.Get("a", "x.xml"), nullptr);
  EXPECT_EQ(store.Get("a", "x.xml")->root()->children()[0]->name(), "x");
  EXPECT_EQ(store.Get("b", "x.xml")->root()->children()[0]->name(), "y");
  EXPECT_EQ(store.Get("a", "missing.xml"), nullptr);
  EXPECT_EQ(store.Get("missing", "x.xml"), nullptr);
  // Replace reports true and does not grow the store.
  EXPECT_TRUE(store.Put("a", "x.xml", Engine::ParseDocument("<x2/>")));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Remove("a", "x.xml"));
  EXPECT_FALSE(store.Remove("a", "x.xml"));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.CollectionNames(), std::vector<std::string>{"b"});
}

TEST(CollectionStoreTest, VersionBumpsOnlyOnSuccessfulMutation) {
  CollectionStore store(CollectionStore::Options{2});
  uint64_t v0 = store.version();
  store.Put("c", "a.xml", Engine::ParseDocument("<a/>"));
  EXPECT_EQ(store.version(), v0 + 1);
  // Removing an absent document must not bump the version (the same
  // discipline DocumentStore::Remove promises).
  EXPECT_FALSE(store.Remove("c", "absent.xml"));
  EXPECT_FALSE(store.Remove("absent", "a.xml"));
  EXPECT_EQ(store.version(), v0 + 1);
  EXPECT_TRUE(store.Remove("c", "a.xml"));
  EXPECT_EQ(store.version(), v0 + 2);
}

TEST(CollectionStoreTest, ShardStatsTrackResidentDocuments) {
  CollectionStore store(CollectionStore::Options{4});
  store.BulkLoad("c", MakeBatch(40), /*num_threads=*/1);
  std::vector<CollectionStore::ShardStats> stats = store.PerShardStats();
  ASSERT_EQ(stats.size(), 4u);
  size_t documents = 0;
  int64_t nodes = 0;
  int64_t bytes = 0;
  for (const auto& shard : stats) {
    documents += shard.documents;
    nodes += shard.nodes;
    bytes += shard.bytes;
  }
  EXPECT_EQ(documents, 40u);
  EXPECT_GT(nodes, 0);
  EXPECT_GT(bytes, 0);
  // FNV-1a spreads 40 URIs over 4 shards: no shard should be empty.
  for (const auto& shard : stats) EXPECT_GT(shard.documents, 0u);
  // Removing everything returns every gauge to zero.
  for (const auto& doc : MakeBatch(40)) EXPECT_TRUE(store.Remove("c", doc.uri));
  for (const auto& shard : store.PerShardStats()) {
    EXPECT_EQ(shard.documents, 0u);
    EXPECT_EQ(shard.nodes, 0);
    EXPECT_EQ(shard.bytes, 0);
    EXPECT_EQ(shard.indexed_documents, 0u);
  }
}

TEST(CollectionStoreTest, BulkLoadMatchesSerialIngestExactly) {
  // Parallel parse+seal must produce the identical corpus layout as serial
  // ingest: same snapshot document order, same stats.
  CollectionStore serial(CollectionStore::Options{8});
  CollectionStore parallel(CollectionStore::Options{8});
  serial.BulkLoad("c", MakeBatch(120), /*num_threads=*/1);
  parallel.BulkLoad("c", MakeBatch(120), /*num_threads=*/0);
  auto serial_snapshot = serial.Snapshot();
  auto parallel_snapshot = parallel.Snapshot();
  const CollectionView* a = serial_snapshot->FindCollection("c");
  const CollectionView* b = parallel_snapshot->FindCollection("c");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(a->documents.size(), 120u);
  ASSERT_EQ(a->documents.size(), b->documents.size());
  EXPECT_EQ(a->partition_offsets, b->partition_offsets);
  for (size_t i = 0; i < a->documents.size(); ++i) {
    EXPECT_EQ(SerializeSequence({Item(a->documents[i]->root(),
                                      a->documents[i])}),
              SerializeSequence({Item(b->documents[i]->root(),
                                      b->documents[i])}))
        << "document " << i;
  }
}

TEST(CollectionStoreTest, BulkLoadParseFailureInsertsNothing) {
  CollectionStore store(CollectionStore::Options{4});
  std::vector<CollectionStore::BulkDocument> batch = MakeBatch(10);
  batch[3].xml = "<broken";
  uint64_t v0 = store.version();
  EXPECT_THROW(store.BulkLoad("c", batch, /*num_threads=*/0), XQueryError);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.version(), v0);
}

TEST(CollectionSnapshotTest, CachedPerVersionAndIsolatedFromMutations) {
  CollectionStore store(CollectionStore::Options{4});
  store.BulkLoad("c", MakeBatch(10), /*num_threads=*/1);
  auto first = store.Snapshot();
  // No mutation: the same snapshot object is reused, not rebuilt.
  EXPECT_EQ(store.Snapshot().get(), first.get());
  EXPECT_EQ(first->total_documents(), 10u);
  store.Put("c", "extra.xml", Engine::ParseDocument("<extra/>"));
  auto second = store.Snapshot();
  EXPECT_NE(second.get(), first.get());
  // The old snapshot still sees the old corpus.
  EXPECT_EQ(first->total_documents(), 10u);
  EXPECT_EQ(second->total_documents(), 11u);
  EXPECT_LT(first->version(), second->version());
}

TEST(CollectionSnapshotTest, SnapshotPinsRemovedDocuments) {
  CollectionStore store(CollectionStore::Options{2});
  store.Put("c", "a.xml", Engine::ParseDocument("<a/>"));
  auto snapshot = store.Snapshot();
  ASSERT_TRUE(store.Remove("c", "a.xml"));
  EXPECT_EQ(store.size(), 0u);
  // The snapshot's refcounts keep the removed tree alive and readable.
  const CollectionView* view = snapshot->FindCollection("c");
  ASSERT_NE(view, nullptr);
  ASSERT_EQ(view->documents.size(), 1u);
  EXPECT_EQ(view->documents[0]->root()->children()[0]->name(), "a");
}

TEST(CollectionSnapshotTest, PartitionOffsetsCoverEveryShard) {
  CollectionStore store(CollectionStore::Options{8});
  store.BulkLoad("c", MakeBatch(50), /*num_threads=*/1);
  auto snapshot = store.Snapshot();
  const CollectionView* view = snapshot->FindCollection("c");
  ASSERT_NE(view, nullptr);
  ASSERT_EQ(view->partition_offsets.size(), 9u);
  EXPECT_EQ(view->partition_count(), 8u);
  EXPECT_EQ(view->partition_offsets.front(), 0u);
  EXPECT_EQ(view->partition_offsets.back(), 50u);
  for (size_t p = 0; p + 1 < view->partition_offsets.size(); ++p) {
    EXPECT_LE(view->partition_offsets[p], view->partition_offsets[p + 1]);
  }
  // The default collection is the union; with one collection it matches.
  const CollectionView* def = snapshot->DefaultCollection();
  ASSERT_NE(def, nullptr);
  EXPECT_EQ(def->documents.size(), 50u);
  EXPECT_EQ(def->partition_offsets, view->partition_offsets);
}

// --- Partitioned scan through the engine -----------------------------------

class CollectionScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    store_.BulkLoad("c", MakeBatch(150), /*num_threads=*/1);
    snapshot_ = store_.Snapshot();
  }

  std::string Run(const std::string& query, const ExecutionOptions& exec) {
    return engine_.Compile(query).ExecuteToString(nullptr, nullptr,
                                                  snapshot_.get(), exec);
  }

  Engine engine_;
  CollectionStore store_{CollectionStore::Options{8}};
  std::shared_ptr<const CollectionSnapshot> snapshot_;
};

TEST_F(CollectionScanTest, ByteIdenticalAcrossThreadsAndEngines) {
  const std::vector<std::string> queries = {
      "for $d in collection('c') return <r>{string($d/doc/v)}</r>",
      "for $d in collection() order by number($d/doc/id) descending "
      "return <i>{string($d/doc/id)}</i>",
      "for $d in collection('c') group by $d/doc/v into $k nest $d into $ds "
      "return <g k=\"{$k}\">{count($ds)}</g>",
      "count(collection('c'))",
  };
  for (const std::string& query : queries) {
    ExecutionOptions baseline;
    baseline.num_threads = 1;
    baseline.use_batched_execution = false;
    const std::string expected = Run(query, baseline);
    ASSERT_FALSE(expected.empty());
    for (int threads : {1, 2, 4, 0}) {
      for (bool batched : {false, true}) {
        ExecutionOptions exec;
        exec.num_threads = threads;
        exec.use_batched_execution = batched;
        EXPECT_EQ(Run(query, exec), expected)
            << query << " threads=" << threads << " batched=" << batched;
      }
    }
  }
}

TEST_F(CollectionScanTest, StatsCountersAreThreadCountInvariant) {
  const std::string query =
      "for $d in collection('c') return string($d/doc/id)";
  PreparedQuery prepared = engine_.Compile(query);
  for (int threads : {1, 2, 4, 0}) {
    for (bool batched : {false, true}) {
      ExecutionOptions exec;
      exec.num_threads = threads;
      exec.use_batched_execution = batched;
      ProfiledResult profiled =
          prepared.ExecuteProfiled(nullptr, nullptr, snapshot_.get(), exec);
      EXPECT_EQ(profiled.stats.collection_scans, 1)
          << "threads=" << threads << " batched=" << batched;
      EXPECT_EQ(profiled.stats.collection_partitions, 8);
      EXPECT_EQ(profiled.stats.collection_docs, 150);
      EXPECT_EQ(profiled.sequence.size(), 150u);
    }
  }
}

TEST_F(CollectionScanTest, EmptyArgAndNoArgResolveDefaultCollection) {
  ExecutionOptions exec;
  EXPECT_EQ(Run("count(collection(()))", exec), "150");
  EXPECT_EQ(Run("count(collection())", exec), "150");
  EXPECT_EQ(Run("for $d in collection(()) return string($d/doc/id)", exec),
            Run("for $d in collection() return string($d/doc/id)", exec));
}

TEST_F(CollectionScanTest, UnknownCollectionThrowsFodc0002) {
  ExecutionOptions exec;
  for (bool batched : {false, true}) {
    exec.use_batched_execution = batched;
    try {
      Run("for $d in collection('missing') return $d", exec);
      FAIL() << "expected FODC0002";
    } catch (const XQueryError& error) {
      EXPECT_EQ(error.code(), ErrorCode::kFODC0002);
    }
  }
}

TEST_F(CollectionScanTest, NonLiteralArgumentStillResolves) {
  // A computed name cannot take the static scan path; the generic
  // fn:collection body resolves it against the same provider with identical
  // results.
  ExecutionOptions exec;
  const std::string computed =
      "for $d in collection(concat('c', '')) return string($d/doc/id)";
  const std::string literal =
      "for $d in collection('c') return string($d/doc/id)";
  EXPECT_EQ(Run(computed, exec), Run(literal, exec));
}

TEST_F(CollectionScanTest, ScanHonorsCancellation) {
  CancellationToken token;
  token.Cancel();
  for (bool batched : {false, true}) {
    for (int threads : {1, 4}) {
      ExecutionOptions exec;
      exec.num_threads = threads;
      exec.use_batched_execution = batched;
      exec.cancellation = &token;
      try {
        Run("for $d in collection('c') return $d/doc/id", exec);
        FAIL() << "expected XQSV0002";
      } catch (const XQueryError& error) {
        EXPECT_EQ(error.code(), ErrorCode::kXQSV0002);
      }
    }
  }
}

TEST_F(CollectionScanTest, ScanHonorsMemoryBudgetAndBalances) {
  for (bool batched : {false, true}) {
    for (int threads : {1, 4}) {
      MemoryTracker tracker("query", 512);
      ExecutionOptions exec;
      exec.num_threads = threads;
      exec.use_batched_execution = batched;
      exec.memory = &tracker;
      try {
        Run("for $d in collection('c') return $d/doc/id", exec);
        FAIL() << "expected XQSV0004";
      } catch (const XQueryError& error) {
        EXPECT_EQ(error.code(), ErrorCode::kXQSV0004);
      }
      EXPECT_EQ(tracker.used(), 0)
          << "threads=" << threads << " batched=" << batched;
    }
  }
}

TEST_F(CollectionScanTest, RegistryFallbackWhenNoProvider) {
  // Without a provider the registry behavior is unchanged: a named lookup
  // resolves a single registered document.
  DocumentRegistry registry;
  registry["c"] = Engine::ParseDocument("<single/>");
  std::string out = SerializeSequence(
      engine_.Compile("count(collection('c'))").Execute(nullptr, registry));
  EXPECT_EQ(out, "1");
}

TEST_F(CollectionScanTest, PartitionLoadFaultFailsCleanAndBalanced) {
  if (!fault::Enabled()) {
    GTEST_SKIP() << "fault points compiled out; configure -DXQA_FAULTS=ON";
  }
  // Arm doc.load so it trips inside the partitioned scan — one hit per
  // partition — under both engines, serial and parallel: the scan must
  // surface the typed error and leave the tracker balanced.
  for (bool batched : {false, true}) {
    for (int threads : {1, 4}) {
      fault::Reset();
      fault::ArmSite("doc.load", 3);  // third partition's load
      MemoryTracker tracker("query");
      ExecutionOptions exec;
      exec.num_threads = threads;
      exec.use_batched_execution = batched;
      exec.memory = &tracker;
      try {
        Run("for $d in collection('c') return $d/doc/id", exec);
        FAIL() << "armed doc.load never tripped";
      } catch (const XQueryError& error) {
        EXPECT_EQ(error.code(), ErrorCode::kFODC0002);
        EXPECT_NE(std::string(error.what()).find("injected fault"),
                  std::string::npos);
      }
      EXPECT_EQ(tracker.used(), 0);
      fault::Reset();
    }
  }
}

}  // namespace
}  // namespace xqa

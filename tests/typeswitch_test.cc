// typeswitch expression tests.

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

class TypeswitchTest : public ::testing::Test {
 protected:
  std::string Run(const std::string& query,
                  const std::string& xml = "<r><a>1</a></r>") {
    DocumentPtr doc = Engine::ParseDocument(xml);
    return engine_.Compile(query).ExecuteToString(doc);
  }

  ErrorCode Error(const std::string& query) {
    try {
      engine_.Compile(query);
    } catch (const XQueryError& error) {
      return error.code();
    }
    return ErrorCode::kOk;
  }

  Engine engine_;
};

TEST_F(TypeswitchTest, FirstMatchingCaseWins) {
  EXPECT_EQ(Run("typeswitch (5) "
                "case xs:string return \"string\" "
                "case xs:integer return \"integer\" "
                "case xs:decimal return \"decimal\" "
                "default return \"other\""),
            "integer");
  // Integer matches decimal too; order decides.
  EXPECT_EQ(Run("typeswitch (5) "
                "case xs:decimal return \"decimal\" "
                "case xs:integer return \"integer\" "
                "default return \"other\""),
            "decimal");
}

TEST_F(TypeswitchTest, DefaultWhenNothingMatches) {
  EXPECT_EQ(Run("typeswitch (\"x\") "
                "case xs:integer return \"int\" "
                "default return \"fallback\""),
            "fallback");
}

TEST_F(TypeswitchTest, CaseVariableBindsOperand) {
  EXPECT_EQ(Run("typeswitch (21) "
                "case $n as xs:integer return $n * 2 "
                "default return 0"),
            "42");
  EXPECT_EQ(Run("typeswitch ((1, 2, 3)) "
                "case $s as xs:integer+ return sum($s) "
                "default return 0"),
            "6");
}

TEST_F(TypeswitchTest, DefaultVariableBindsOperand) {
  EXPECT_EQ(Run("typeswitch (\"abc\") "
                "case xs:integer return 0 "
                "default $v return string-length($v)"),
            "3");
}

TEST_F(TypeswitchTest, NodeKindDispatch) {
  const char* query =
      "string-join(for $n in (//a, //a/text(), //a/@*) "
      "return typeswitch ($n) "
      "  case element() return \"elem\" "
      "  case text() return \"text\" "
      "  default return \"other\", \",\")";
  EXPECT_EQ(Run(query), "elem,text");
}

TEST_F(TypeswitchTest, OccurrenceDispatch) {
  EXPECT_EQ(Run("for $s in (1, 2) "
                "return typeswitch (1 to $s) "
                "  case xs:integer return \"one\" "
                "  case xs:integer+ return \"many\" "
                "  default return \"none\""),
            "one many");
  EXPECT_EQ(Run("typeswitch (()) "
                "case xs:integer return \"one\" "
                "case xs:integer* return \"maybe\" "
                "default return \"no\""),
            "maybe");
}

TEST_F(TypeswitchTest, CaseVariableScopedToItsBranch) {
  EXPECT_EQ(Error("(typeswitch (1) case $n as xs:integer return $n "
                  "default return 0), $n"),
            ErrorCode::kXPST0008);
}

TEST_F(TypeswitchTest, SyntaxErrors) {
  EXPECT_EQ(Error("typeswitch (1) default return 0"), ErrorCode::kXPST0003);
  EXPECT_EQ(Error("typeswitch (1) case xs:integer return 1"),
            ErrorCode::kXPST0003);
}

TEST_F(TypeswitchTest, UsableAsOperand) {
  EXPECT_EQ(Run("1 + (typeswitch (2) case xs:integer return 10 "
                "default return 20)"),
            "11");
  EXPECT_EQ(Run("if (true()) then typeswitch (1) case xs:integer return "
                "\"i\" default return \"d\" else \"x\""),
            "i");
}

TEST_F(TypeswitchTest, RecursiveTransformIdiom) {
  // The classic typeswitch use: a recursive identity-ish transform that
  // renames elements and keeps text.
  EXPECT_EQ(
      Run("declare function local:upcase($n as node()) as node() { "
          "  typeswitch ($n) "
          "  case $e as element() return "
          "    element { upper-case(name($e)) } "
          "      { for $c in $e/node() return local:upcase($c) } "
          "  default $d return $d "
          "}; "
          "local:upcase((//a)[1])"),
      "<A>1</A>");
}

}  // namespace
}  // namespace xqa

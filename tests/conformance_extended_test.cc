// Extended conformance table: durations, both grouping dialects, count
// clauses, typeswitch, computed constructors, regex — the features beyond
// the core surface covered by conformance_test.cc.

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

constexpr char kDoc[] = R"(
<shifts>
  <shift worker="ada"><start>2004-05-01T08:00:00</start><end>2004-05-01T16:30:00</end></shift>
  <shift worker="ada"><start>2004-05-02T09:00:00</start><end>2004-05-02T17:00:00</end></shift>
  <shift worker="grace"><start>2004-05-01T12:00:00</start><end>2004-05-02T00:15:00</end></shift>
  <shift worker="edsger"><start>2004-05-03T07:45:00</start><end>2004-05-03T07:50:00</end></shift>
</shifts>
)";

struct Case {
  const char* query;
  const char* expected;
};

class ConformanceExtended : public ::testing::TestWithParam<Case> {
 protected:
  static void SetUpTestSuite() {
    doc_ = new DocumentPtr(Engine::ParseDocument(kDoc));
  }
  static void TearDownTestSuite() { delete doc_; }
  static DocumentPtr* doc_;
};

DocumentPtr* ConformanceExtended::doc_ = nullptr;

TEST_P(ConformanceExtended, QueryYieldsExpected) {
  Engine engine;
  EXPECT_EQ(engine.Compile(GetParam().query).ExecuteToString(*doc_),
            GetParam().expected)
      << "query: " << GetParam().query;
}

INSTANTIATE_TEST_SUITE_P(Durations, ConformanceExtended, ::testing::Values(
    Case{"xs:dateTime((//end)[1]) - xs:dateTime((//start)[1])", "PT8H30M"},
    Case{"for $s in //shift order by xs:dateTime($s/start) "
         "return string(xs:dateTime($s/end) - xs:dateTime($s/start))",
         "PT8H30M PT12H15M PT8H PT5M"},
    Case{"string(max(for $s in //shift "
         "return xs:dateTime($s/end) - xs:dateTime($s/start)))", "PT12H15M"},
    Case{"count(//shift[xs:dateTime(end) - xs:dateTime(start) "
         "ge xs:dayTimeDuration(\"PT8H\")])", "3"},
    Case{"string(xs:dateTime(\"2004-05-01T08:00:00\") + "
         "xs:dayTimeDuration(\"P2DT12H\"))", "2004-05-03T20:00:00"},
    Case{"hours-from-duration(xs:dayTimeDuration(\"P1DT5H\"))", "5"},
    Case{"days-from-duration(xs:dayTimeDuration(\"P1DT5H\"))", "1"},
    Case{"xs:dayTimeDuration(\"PT1H\") * 24", "P1D"},
    Case{"string(xs:dayTimeDuration(\"P1D\") div "
         "xs:dayTimeDuration(\"PT6H\"))", "4"},
    Case{"xs:dayTimeDuration(\"PT30M\") lt xs:dayTimeDuration(\"PT1H\")",
         "true"}));

INSTANTIATE_TEST_SUITE_P(GroupingDialects, ConformanceExtended, ::testing::Values(
    // Paper dialect.
    Case{"for $s in //shift group by $s/@worker into $w "
         "nest $s into $ss order by string($w) "
         "return concat($w, \":\", count($ss))",
         "ada:2 edsger:1 grace:1"},
    // XQuery 3.0 dialect, implicit rebinding of $s.
    Case{"for $s in //shift group by $w := string($s/@worker) "
         "order by $w return concat($w, \":\", count($s))",
         "ada:2 edsger:1 grace:1"},
    // Total shift time per worker via rebinding.
    Case{"for $s in //shift "
         "let $d := xs:dateTime($s/end) - xs:dateTime($s/start) "
         "group by $w := string($s/@worker) "
         "order by $w "
         "return string(sum($d, xs:dayTimeDuration(\"PT0S\")))",
         "PT16H30M PT5M PT12H15M"},
    // count clause numbering groups.
    Case{"for $s in //shift group by $w := string($s/@worker) "
         "count $n order by $w return concat($n, \"-\", $w)",
         "1-ada 3-edsger 2-grace"},
    // Paper dialect: using + post-group let/where combination.
    Case{"for $x in (1, 2, 3, 4, 5, 6, 7, 8) "
         "group by $x mod 4 into $k nest $x into $xs "
         "let $n := count($xs) where $k >= 1 "
         "order by $k return concat($k, \"#\", $n)",
         "1#2 2#2 3#2"}));

INSTANTIATE_TEST_SUITE_P(TypeswitchAndConstructors, ConformanceExtended,
                         ::testing::Values(
    Case{"typeswitch ((//shift)[1]) case element(shift) return \"s\" "
         "default return \"d\"", "s"},
    Case{"string-join(for $v in (1, \"x\", 2.5, <e/>) return "
         "typeswitch ($v) case xs:integer return \"int\" "
         "case xs:decimal return \"dec\" case xs:string return \"str\" "
         "case element() return \"elem\" default return \"?\", \",\")",
         "int,str,dec,elem"},
    Case{"element report { attribute shifts { count(//shift) }, "
         "element longest { string(max(for $s in //shift return "
         "xs:dateTime($s/end) - xs:dateTime($s/start))) } }",
         "<report shifts=\"4\"><longest>PT12H15M</longest></report>"},
    Case{"for $w in distinct-values(//shift/@worker) "
         "order by $w "
         "return element { $w } { count(//shift[@worker = $w]) }",
         "<ada>2</ada><edsger>1</edsger><grace>1</grace>"},
    Case{"document { element a {}, comment { \"x\" } } instance of "
         "document-node()", "true"}));

INSTANTIATE_TEST_SUITE_P(RegexAndStrings, ConformanceExtended, ::testing::Values(
    Case{"count(//shift[matches(@worker, \"^[ag]\")])", "3"},
    Case{"replace(\"2004-05-01T08:00:00\", \"T.*$\", \"\")", "2004-05-01"},
    Case{"string-join(tokenize(\"a-b_c\", \"[-_]\"), \".\")", "a.b.c"},
    Case{"matches(\"shift\", \"SHIFT\", \"i\")", "true"},
    Case{"replace(\"aaa bbb\", \"(\\w+) (\\w+)\", \"$2 $1\")", "bbb aaa"},
    Case{"upper-case(substring-before(\"ada@host\", \"@\"))", "ADA"}));

INSTANTIATE_TEST_SUITE_P(TypeOps, ConformanceExtended, ::testing::Values(
    Case{"(//shift)[1]/@worker instance of attribute()", "true"},
    Case{"\"PT1H\" castable as xs:dayTimeDuration", "true"},
    Case{"(3.14 instance of xs:decimal) and (3.14 castable as xs:string)",
         "true"},
    Case{"count(//shift) cast as xs:string", "4"},
    Case{"((//shift)[1] treat as element()) instance of element(shift)",
         "true"}));

}  // namespace
}  // namespace xqa

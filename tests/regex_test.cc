// RegexLite unit tests plus fn:matches / fn:replace / fn:tokenize.

#include "base/regex_lite.h"

#include <gtest/gtest.h>

#include "api/engine.h"

namespace xqa {
namespace {

bool Matches(const std::string& pattern, const std::string& text,
             const std::string& flags = "") {
  return RegexLite::Compile(pattern, flags).Search(text);
}

TEST(RegexLite, Literals) {
  EXPECT_TRUE(Matches("abc", "xxabcxx"));
  EXPECT_FALSE(Matches("abc", "abx"));
  EXPECT_TRUE(Matches("", "anything"));  // empty pattern matches anywhere
}

TEST(RegexLite, Anchors) {
  EXPECT_TRUE(Matches("^abc", "abcdef"));
  EXPECT_FALSE(Matches("^abc", "xabc"));
  EXPECT_TRUE(Matches("def$", "abcdef"));
  EXPECT_FALSE(Matches("abc$", "abcdef"));
  EXPECT_TRUE(Matches("^abc$", "abc"));
}

TEST(RegexLite, DotAndClasses) {
  EXPECT_TRUE(Matches("a.c", "abc"));
  EXPECT_FALSE(Matches("a.c", "a\nc"));  // dot excludes newline by default
  EXPECT_TRUE(Matches("a.c", "a\nc", "s"));
  EXPECT_TRUE(Matches("[abc]+", "cab"));
  EXPECT_TRUE(Matches("[a-f0-9]+", "deadbeef42"));
  EXPECT_FALSE(Matches("^[a-f]+$", "xyz"));
  EXPECT_TRUE(Matches("[^0-9]", "a1"));
  EXPECT_FALSE(Matches("^[^0-9]+$", "123"));
  EXPECT_TRUE(Matches("[-x]", "-"));  // literal '-' at class edge
}

TEST(RegexLite, EscapeClasses) {
  EXPECT_TRUE(Matches("\\d+", "abc123"));
  EXPECT_FALSE(Matches("^\\d+$", "12a"));
  EXPECT_TRUE(Matches("\\w+", "under_score9"));
  EXPECT_TRUE(Matches("\\s", "a b"));
  EXPECT_TRUE(Matches("^\\D+$", "abc"));
  EXPECT_TRUE(Matches("\\$\\.", "$."));  // escaped metacharacters
}

TEST(RegexLite, Quantifiers) {
  EXPECT_TRUE(Matches("^ab*c$", "ac"));
  EXPECT_TRUE(Matches("^ab*c$", "abbbc"));
  EXPECT_TRUE(Matches("^ab+c$", "abc"));
  EXPECT_FALSE(Matches("^ab+c$", "ac"));
  EXPECT_TRUE(Matches("^ab?c$", "ac"));
  EXPECT_FALSE(Matches("^ab?c$", "abbc"));
  EXPECT_TRUE(Matches("^a{3}$", "aaa"));
  EXPECT_FALSE(Matches("^a{3}$", "aa"));
  EXPECT_TRUE(Matches("^a{2,}$", "aaaa"));
  EXPECT_TRUE(Matches("^a{1,3}$", "aa"));
  EXPECT_FALSE(Matches("^a{1,3}$", "aaaa"));
}

TEST(RegexLite, AlternationAndGroups) {
  EXPECT_TRUE(Matches("^(cat|dog)$", "dog"));
  EXPECT_FALSE(Matches("^(cat|dog)$", "cow"));
  EXPECT_TRUE(Matches("^(ab)+$", "ababab"));
  EXPECT_TRUE(Matches("^(a|b)*c$", "abbac"));
  EXPECT_TRUE(Matches("x(1|2)?y", "xy"));
}

TEST(RegexLite, Backtracking) {
  EXPECT_TRUE(Matches("^a*a$", "aaa"));      // star must give one back
  EXPECT_TRUE(Matches("^.*b$", "aab"));
  EXPECT_TRUE(Matches("^(a+)(ab)$", "aaab"));  // group boundary adjusts
}

TEST(RegexLite, CaseInsensitive) {
  EXPECT_TRUE(Matches("abc", "xABCx", "i"));
  EXPECT_TRUE(Matches("[a-f]+", "DEAD", "i"));
  EXPECT_FALSE(Matches("abc", "ABC"));
}

TEST(RegexLite, LiteralFlag) {
  EXPECT_TRUE(Matches("a.c", "xa.cx", "q"));
  EXPECT_FALSE(Matches("a.c", "abc", "q"));
}

TEST(RegexLite, FullMatch) {
  EXPECT_TRUE(RegexLite::Compile("a+").FullMatch("aaa"));
  EXPECT_FALSE(RegexLite::Compile("a+").FullMatch("aab"));
  // Requires backtracking past a shorter greedy match.
  EXPECT_TRUE(RegexLite::Compile("a*ab").FullMatch("aaab"));
}

TEST(RegexLite, Replace) {
  EXPECT_EQ(RegexLite::Compile("o").Replace("foo", "0"), "f00");
  EXPECT_EQ(RegexLite::Compile("\\d+").Replace("a1b22c", "#"), "a#b#c");
  EXPECT_EQ(RegexLite::Compile("(\\w+)@(\\w+)").Replace("me@host", "$2.$1"),
            "host.me");
  EXPECT_EQ(RegexLite::Compile("x").Replace("abc", "y"), "abc");
  EXPECT_EQ(RegexLite::Compile("a").Replace("aaa", "$0$0"), "aaaaaa");
}

TEST(RegexLite, Tokenize) {
  auto tokens = RegexLite::Compile(",\\s*").Tokenize("a, b,c");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "a");
  EXPECT_EQ(tokens[1], "b");
  EXPECT_EQ(tokens[2], "c");
  // Leading separator yields a leading empty token.
  auto leading = RegexLite::Compile(",").Tokenize(",a");
  ASSERT_EQ(leading.size(), 2u);
  EXPECT_EQ(leading[0], "");
  EXPECT_TRUE(RegexLite::Compile(",").Tokenize("").empty());
}

TEST(RegexLite, Errors) {
  EXPECT_THROW(RegexLite::Compile("("), XQueryError);
  EXPECT_THROW(RegexLite::Compile(")"), XQueryError);
  EXPECT_THROW(RegexLite::Compile("*a"), XQueryError);
  EXPECT_THROW(RegexLite::Compile("[z-a]"), XQueryError);
  EXPECT_THROW(RegexLite::Compile("[abc"), XQueryError);
  EXPECT_THROW(RegexLite::Compile("a\\"), XQueryError);
  EXPECT_THROW(RegexLite::Compile("a", "x"), XQueryError);
  EXPECT_THROW(RegexLite::Compile("a{3,1}"), XQueryError);
  // Zero-length matches are rejected by replace/tokenize.
  EXPECT_THROW(RegexLite::Compile("a*").Replace("bbb", "x"), XQueryError);
  EXPECT_THROW(RegexLite::Compile("a?").Tokenize("bbb"), XQueryError);
}

// --- XQuery surface -----------------------------------------------------------

class RegexFnTest : public ::testing::Test {
 protected:
  std::string Run(const std::string& query) {
    DocumentPtr doc = Engine::ParseDocument("<r/>");
    return engine_.Compile(query).ExecuteToString(doc);
  }
  Engine engine_;
};

TEST_F(RegexFnTest, Matches) {
  EXPECT_EQ(Run("matches(\"abracadabra\", \"bra\")"), "true");
  EXPECT_EQ(Run("matches(\"abracadabra\", \"^a.*a$\")"), "true");
  EXPECT_EQ(Run("matches(\"abracadabra\", \"^bra\")"), "false");
  EXPECT_EQ(Run("matches(\"HELLO\", \"hello\", \"i\")"), "true");
}

TEST_F(RegexFnTest, Replace) {
  EXPECT_EQ(Run("replace(\"abracadabra\", \"bra\", \"*\")"), "a*cada*");
  EXPECT_EQ(Run("replace(\"abc-123\", \"(\\d+)\", \"[$1]\")"), "abc-[123]");
  EXPECT_EQ(Run("replace(\"AAA\", \"a\", \"b\", \"i\")"), "bbb");
}

TEST_F(RegexFnTest, Tokenize) {
  EXPECT_EQ(Run("count(tokenize(\"a b c\", \"\\s+\"))"), "3");
  EXPECT_EQ(Run("string-join(tokenize(\"1,2,,3\", \",\"), \"|\")"), "1|2||3");
  EXPECT_EQ(Run("count(tokenize(\"\", \",\"))"), "0");
}

TEST_F(RegexFnTest, UsableInQueries) {
  EXPECT_EQ(Run("for $w in tokenize(\"green tea, black tea\", \",\\s*\") "
                "where matches($w, \"^green\") return upper-case($w)"),
            "GREEN TEA");
}

}  // namespace
}  // namespace xqa

// Static-analysis tests, including the paper's Section 3.2 scoping rules.

#include "binder/binder.h"

#include <gtest/gtest.h>

#include "base/error.h"
#include "binder/static_context.h"
#include "parser/parser.h"

namespace xqa {
namespace {

ModulePtr Bind(const std::string& query) {
  ModulePtr module = ParseQuery(query);
  BindModule(module.get());
  return module;
}

ErrorCode BindError(const std::string& query) {
  try {
    Bind(query);
  } catch (const XQueryError& error) {
    return error.code();
  }
  return ErrorCode::kOk;
}

TEST(Binder, ResolvesSimpleBindings) {
  ModulePtr module = Bind("for $x in (1, 2) let $y := $x + 1 return $y");
  EXPECT_GE(module->frame_size, 2);
}

TEST(Binder, UndefinedVariable) {
  EXPECT_EQ(BindError("$nowhere"), ErrorCode::kXPST0008);
  EXPECT_EQ(BindError("for $x in (1) return $y"), ErrorCode::kXPST0008);
}

TEST(Binder, VariableShadowing) {
  // Inner binding shadows outer; both queries are valid.
  EXPECT_EQ(BindError("for $x in (1) return for $x in (2) return $x"),
            ErrorCode::kOk);
  EXPECT_EQ(BindError("let $x := 1 let $x := $x + 1 return $x"),
            ErrorCode::kOk);
}

TEST(Binder, UnknownFunction) {
  EXPECT_EQ(BindError("no-such-fn(1)"), ErrorCode::kXPST0017);
  // Known function, wrong arity.
  EXPECT_EQ(BindError("count(1, 2)"), ErrorCode::kXPST0017);
  EXPECT_EQ(BindError("count()"), ErrorCode::kXPST0017);
}

TEST(Binder, FnPrefixOptional) {
  EXPECT_EQ(BindError("fn:count((1, 2))"), ErrorCode::kOk);
  EXPECT_EQ(BindError("fn:exists(())"), ErrorCode::kOk);
}

TEST(Binder, UserFunctionResolution) {
  ModulePtr module = Bind(
      "declare function local:f($x) { $x }; "
      "declare function local:f($x, $y) { $x, $y }; "
      "local:f(local:f(1), 2)");
  EXPECT_EQ(module->functions.size(), 2u);
}

TEST(Binder, RecursiveFunction) {
  EXPECT_EQ(BindError("declare function local:down($n as xs:integer) { "
                      "if ($n <= 0) then 0 else local:down($n - 1) }; "
                      "local:down(5)"),
            ErrorCode::kOk);
}

TEST(Binder, MutuallyRecursiveFunctions) {
  EXPECT_EQ(
      BindError("declare function local:a($n) { if ($n <= 0) then 0 else "
                "local:b($n - 1) }; "
                "declare function local:b($n) { local:a($n) }; local:a(3)"),
      ErrorCode::kOk);
}

TEST(Binder, DuplicateDeclarations) {
  EXPECT_EQ(BindError("declare function local:f($x) { $x }; "
                      "declare function local:f($y) { $y }; 1"),
            ErrorCode::kXQST0034);
  EXPECT_EQ(BindError("declare function local:f($x, $x) { $x }; 1"),
            ErrorCode::kXQST0039);
  EXPECT_EQ(BindError("declare variable $g := 1; "
                      "declare variable $g := 2; $g"),
            ErrorCode::kXQST0049);
}

TEST(Binder, PositionalVariableShadowsBinding) {
  EXPECT_EQ(BindError("for $x at $x in (1, 2) return $x"),
            ErrorCode::kXQST0089);
}

TEST(Binder, GlobalVariablesVisibleInFunctions) {
  EXPECT_EQ(BindError("declare variable $g := 10; "
                      "declare function local:f() { $g * 2 }; local:f()"),
            ErrorCode::kOk);
}

// --- Section 3.2: group-by scoping ------------------------------------------

TEST(Binder, PreGroupVariableOutOfScopeAfterGroupBy) {
  // $b is dead after group by: XQAG0001, not a generic undefined-variable.
  EXPECT_EQ(BindError("for $b in (1, 2) "
                      "group by $b into $k "
                      "return $b"),
            ErrorCode::kXQAG0001);
}

TEST(Binder, PreGroupLetVariableAlsoDies) {
  EXPECT_EQ(BindError("for $b in (1, 2) let $p := $b + 1 "
                      "group by $b into $k return $p"),
            ErrorCode::kXQAG0001);
}

TEST(Binder, DeadNameShadowsOuterBinding) {
  // Even though an outer $b exists, the FLWOR-local $b died at group by;
  // the paper rejects silently resolving to the outer binding.
  EXPECT_EQ(BindError("let $b := 99 return "
                      "for $b in (1, 2) group by $b into $k return $b"),
            ErrorCode::kXQAG0001);
}

TEST(Binder, RebindingAsGroupingVariableIsFine) {
  // Q7's pattern: nest $b into $b rebinds the same name.
  EXPECT_EQ(BindError("for $b in (1, 2) "
                      "group by $b into $k nest $b into $b "
                      "return ($k, $b)"),
            ErrorCode::kOk);
}

TEST(Binder, OuterVariablesRemainInScope) {
  EXPECT_EQ(BindError("let $outer := 10 return "
                      "for $b in (1, 2) group by $b into $k "
                      "return $outer + $k"),
            ErrorCode::kOk);
}

TEST(Binder, GroupingExprMayNotReferenceSiblingGroupVar) {
  EXPECT_EQ(BindError("for $b in (1, 2) "
                      "group by $b into $k, $k into $j return $j"),
            ErrorCode::kXQAG0002);
}

TEST(Binder, DuplicateGroupingVariableNames) {
  EXPECT_EQ(BindError("for $b in (1, 2) "
                      "group by $b into $k, $b + 1 into $k return $k"),
            ErrorCode::kXQAG0004);
  EXPECT_EQ(BindError("for $b in (1, 2) "
                      "group by $b into $k nest $b into $k return $k"),
            ErrorCode::kXQAG0004);
}

TEST(Binder, UsingFunctionMustExistWithArityTwo) {
  EXPECT_EQ(BindError("for $b in (1, 2) "
                      "group by $b into $k using local:nope return $k"),
            ErrorCode::kXQAG0005);
  EXPECT_EQ(BindError("declare function local:one($x) { true() }; "
                      "for $b in (1, 2) "
                      "group by $b into $k using local:one return $k"),
            ErrorCode::kXQAG0005);
  EXPECT_EQ(BindError("for $b in (1, 2) "
                      "group by $b into $k using deep-equal return $k"),
            ErrorCode::kOk);
}

TEST(Binder, NestOrderBySeesInputVariables) {
  // The order by inside nest is evaluated per input tuple (Section 3.4.1).
  EXPECT_EQ(BindError("for $s in (1, 2) let $w := $s * 2 "
                      "group by $s into $k "
                      "nest $s order by $w descending into $ns "
                      "return $ns"),
            ErrorCode::kOk);
}

TEST(Binder, PostGroupLetAndWhereSeeGroupVariables) {
  EXPECT_EQ(BindError("for $b in (1, 2) "
                      "group by $b into $k nest $b into $bs "
                      "let $n := count($bs) where $n > 0 return ($k, $n)"),
            ErrorCode::kOk);
}

TEST(Binder, PostGroupWhereCannotSeePreGroupVars) {
  EXPECT_EQ(BindError("for $b in (1, 2) "
                      "group by $b into $k where $b > 1 return $k"),
            ErrorCode::kXQAG0001);
}

TEST(Binder, ReturnAtVariableInScopeInReturnOnly) {
  EXPECT_EQ(BindError("for $x in (1, 2) return at $rank $rank"),
            ErrorCode::kOk);
  EXPECT_EQ(BindError("(for $x in (1, 2) return at $rank 0), $rank"),
            ErrorCode::kXPST0008);
}

TEST(Binder, OrderAfterGroupMarked) {
  ModulePtr module = Bind(
      "for $b in (1, 2) group by $b into $k "
      "stable order by $k return $k");
  const auto* flwor = static_cast<const FlworExpr*>(module->body.get());
  bool found = false;
  for (const FlworClause& clause : flwor->clauses) {
    if (clause.kind == ClauseKind::kOrderBy) {
      EXPECT_TRUE(clause.order_after_group);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(StaticContextSummary, DescribesModule) {
  ModulePtr module = Bind(
      "declare ordering unordered; "
      "declare variable $g := 5; "
      "declare function local:f($x) { $x }; "
      "local:f($g)");
  StaticContext context = DescribeModule(*module);
  EXPECT_FALSE(context.ordered);
  EXPECT_EQ(context.global_count, 1);
  ASSERT_EQ(context.functions.size(), 1u);
  EXPECT_EQ(context.functions[0].name, "local:f");
  EXPECT_EQ(context.functions[0].arity, 1u);
  std::string text = FormatStaticContext(context);
  EXPECT_NE(text.find("unordered"), std::string::npos);
  EXPECT_NE(text.find("local:f#1"), std::string::npos);
}

}  // namespace
}  // namespace xqa

// Group-by extraction rewrite (ablation A1): when it fires, when it must not,
// and that it preserves results on the experiment's workloads.

#include <gtest/gtest.h>

#include "api/engine.h"
#include "optimizer/rewriter.h"
#include "parser/parser.h"
#include "workload/orders.h"

namespace xqa {
namespace {

int CountRewrites(const std::string& query) {
  ModulePtr module = ParseQuery(query);
  return OptimizeModule(module.get(), OptimizerOptions()).groupby_extracted;
}

Engine::Options AllRulesOff() {
  Engine::Options options;
  options.optimizer.detect_groupby_patterns = false;
  options.optimizer.push_predicates = false;
  options.optimizer.eliminate_order_by = false;
  options.optimizer.fold_constants = false;
  return options;
}

constexpr char kNaiveOneKey[] = R"(
  for $a in distinct-values(//order/lineitem/shipmode)
  let $items := for $i in //order/lineitem
                where $i/shipmode = $a
                return $i
  return <r>{string($a), count($items)}</r>
)";

constexpr char kNaiveTwoKeys[] = R"(
  for $a in distinct-values(//order/lineitem/shipinstruct),
      $b in distinct-values(//order/lineitem/shipmode)
  let $items := for $i in //order/lineitem
                where $i/shipinstruct = $a and $i/shipmode = $b
                return $i
  where exists($items)
  order by $a, $b
  return <r>{string($a), string($b), count($items)}</r>
)";

TEST(GroupByDetect, MatchesTable1Templates) {
  EXPECT_EQ(CountRewrites(kNaiveOneKey), 1);
  EXPECT_EQ(CountRewrites(kNaiveTwoKeys), 1);
}

TEST(GroupByDetect, MatchesReversedEquality) {
  EXPECT_EQ(CountRewrites(R"(
    for $a in distinct-values(//i/k)
    let $items := for $i in //i where $a = $i/k return $i
    return count($items)
  )"),
            1);
}

TEST(GroupByDetect, MatchesWithTrailingOrderBy) {
  EXPECT_EQ(CountRewrites(R"(
    for $a in distinct-values(//i/k)
    let $items := for $i in //i where $i/k = $a return $i
    order by $a
    return count($items)
  )"),
            1);
}

TEST(GroupByDetect, DoesNotMatchForeignShapes) {
  // Plain FLWOR.
  EXPECT_EQ(CountRewrites("for $x in //a return $x"), 0);
  // No distinct-values driver.
  EXPECT_EQ(CountRewrites(R"(
    for $a in //keys/k
    let $items := for $i in //i where $i/k = $a return $i
    return count($items)
  )"),
            0);
  // Inner where references something other than the key equality.
  EXPECT_EQ(CountRewrites(R"(
    for $a in distinct-values(//i/k)
    let $items := for $i in //i where $i/k != $a return $i
    return count($items)
  )"),
            0);
  // Inner return is not the bare item.
  EXPECT_EQ(CountRewrites(R"(
    for $a in distinct-values(//i/k)
    let $items := for $i in //i where $i/k = $a return $i/v
    return count($items)
  )"),
            0);
  // Extra clause after the pattern.
  EXPECT_EQ(CountRewrites(R"(
    for $a in distinct-values(//i/k)
    let $items := for $i in //i where $i/k = $a return $i
    let $extra := 1
    return count($items)
  )"),
            0);
  // Correlated predicate uses a deep path, not $i/child.
  EXPECT_EQ(CountRewrites(R"(
    for $a in distinct-values(//i/k)
    let $items := for $i in //i where $i/sub/k = $a return $i
    return count($items)
  )"),
            0);
  // Already-explicit grouping is left alone.
  EXPECT_EQ(CountRewrites(
                "for $i in //i group by $i/k into $k nest $i into $is "
                "return count($is)"),
            0);
}

TEST(GroupByDetect, RewritePreservesResults) {
  workload::OrderConfig config;
  config.num_orders = 200;
  DocumentPtr doc = workload::GenerateOrdersDocument(config);

  Engine plain(AllRulesOff());
  Engine rewriting;  // group-by extraction is on by default

  for (const char* query : {kNaiveOneKey, kNaiveTwoKeys}) {
    PreparedQuery naive = plain.Compile(query);
    PreparedQuery rewritten = rewriting.Compile(query);
    EXPECT_EQ(rewritten.rewrite_counts().groupby_extracted, 1);
    // One-key case: group first-seen order coincides with distinct-values'
    // first-occurrence order. The two-key template carries an order by, so
    // ordering matches there too.
    EXPECT_EQ(naive.ExecuteToString(doc), rewritten.ExecuteToString(doc))
        << query;
  }
}

TEST(GroupByDetect, RewriteHandlesMissingElements) {
  // Items lacking the grouping child never match the naive equality; the
  // rewrite compensates with a post-group exists() filter.
  DocumentPtr doc = Engine::ParseDocument(
      "<r><i><k>a</k></i><i/><i><k>a</k></i><i><k>b</k></i></r>");
  const char* query = R"(
    for $a in distinct-values(//i/k)
    let $items := for $i in //i where $i/k = $a return $i
    return <g>{string($a), count($items)}</g>
  )";
  Engine plain(AllRulesOff());
  Engine rewriting;
  EXPECT_EQ(plain.Compile(query).ExecuteToString(doc),
            rewriting.Compile(query).ExecuteToString(doc));
}

TEST(GroupByDetect, NestedOccurrencesRewritten) {
  // The pattern inside a function body is found too.
  int rewrites = CountRewrites(R"(
    declare function local:report() {
      for $a in distinct-values(//i/k)
      let $items := for $i in //i where $i/k = $a return $i
      return count($items)
    };
    local:report()
  )");
  EXPECT_EQ(rewrites, 1);
}

TEST(GroupByDetect, AllRulesOffAppliesNothing) {
  ModulePtr module = ParseQuery(kNaiveOneKey);
  OptimizerOptions options;
  options.detect_groupby_patterns = false;
  options.push_predicates = false;
  options.eliminate_order_by = false;
  options.fold_constants = false;
  EXPECT_EQ(OptimizeModule(module.get(), options).total(), 0);
}

TEST(GroupByDetect, CostGatedRulesOnByDefault) {
  OptimizerOptions options;
  EXPECT_TRUE(options.detect_groupby_patterns);
  EXPECT_TRUE(options.push_predicates);
  EXPECT_TRUE(options.eliminate_order_by);
  // Constant folding stays opt-in: it rewrites plans that cost nothing at
  // run time, so it remains an ablation flag rather than a default.
  EXPECT_FALSE(options.fold_constants);
}

}  // namespace
}  // namespace xqa

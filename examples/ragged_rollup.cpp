// Section 5's advanced grouping: rollup along a ragged category hierarchy
// (Q11) and a datacube over (publisher, year) with an optional dimension
// (Q12) — both expressed with membership functions, no further language
// extension.

#include <cstdio>

#include "api/engine.h"
#include "workload/books.h"

int main() {
  xqa::Engine engine;
  xqa::DocumentPtr paper_doc =
      xqa::Engine::ParseDocument(xqa::workload::PaperCategorizedBooksXml());

  // Q11 with the paper's recursive user-defined membership function.
  xqa::PreparedQuery q11 = engine.Compile(R"(
    declare function local:paths($es as element()*) as xs:string* {
      for $e in $es
      let $name := string(node-name($e))
      return ($name,
              for $p in local:paths($e/*) return concat($name, "/", $p))
    };
    for $b in //book
    for $c in local:paths($b/categories/*)
    group by $c into $category
    nest $b/price into $prices
    order by $category
    return <result><category>{$category}</category>
            <avg-price>{avg($prices)}</avg-price></result>
  )");
  std::printf("Q11 — rollup over the ragged hierarchy (paper data):\n%s\n\n",
              q11.ExecuteToString(paper_doc, 2).c_str());

  // Q12: datacube over (publisher, year); missing publishers are patched
  // with an empty element, exactly as the paper's let clause does.
  xqa::PreparedQuery q12 = engine.Compile(R"(
    for $b in //book
    let $pub := if (exists($b/publisher)) then $b/publisher else <publisher/>
    for $d in xqa:cube(($pub, $b/year))
    group by $d into $key
    nest $b/price into $prices
    return <result>{$key/*}
            <avg-price>{avg($prices)}</avg-price>
            <n>{count($prices)}</n></result>
  )");
  std::printf("Q12 — datacube by (publisher, year):\n%s\n\n",
              q12.ExecuteToString(paper_doc, 2).c_str());

  // The same rollup at scale, using the built-in membership function.
  xqa::workload::BooksConfig config;
  config.num_books = 500;
  config.with_categories = true;
  xqa::DocumentPtr generated = xqa::workload::GenerateBooksDocument(config);
  xqa::PreparedQuery rollup = engine.Compile(R"(
    for $b in //book
    for $c in xqa:paths($b/categories/*)
    group by $c into $category
    nest $b/price into $prices
    let $n := count($prices)
    order by $n descending, $category
    return <result><category>{$category}</category>
            <books>{$n}</books></result>
  )");
  std::printf("Built-in xqa:paths rollup over %d generated books:\n%s\n",
              config.num_books,
              rollup.ExecuteToString(generated, 2).c_str());
  return 0;
}

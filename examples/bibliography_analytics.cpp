// Bibliography analytics: runs the paper's Section 2/3 example queries over
// a generated bibliography, printing the intermediate tuple-stream bindings
// the paper illustrates in Figures 1 and 2.

#include <cstdio>

#include "api/engine.h"
#include "workload/books.h"

namespace {

void Show(const char* title, xqa::Engine& engine, const xqa::DocumentPtr& doc,
          const char* query) {
  std::printf("=== %s ===\n%s\n\n", title,
              engine.Compile(query).ExecuteToString(doc, 2).c_str());
}

}  // namespace

int main() {
  xqa::Engine engine;

  // The paper's own seven-book bibliography.
  xqa::DocumentPtr paper_doc =
      xqa::Engine::ParseDocument(xqa::workload::PaperBibliographyXml());

  // Figure 1: the variable bindings after Q1's group by — grouping variables
  // hold representative elements, the nesting variable the merged prices.
  Show("Figure 1: tuple stream after group by (Q1)", engine, paper_doc, R"(
    for $b in //book
    group by $b/publisher into $p, $b/year into $y
    nest $b/price - $b/discount into $netprices
    order by $y, string($p)
    return
      <tuple>
        <p>{string($p)}</p><y>{string($y)}</y>
        <netprices>{$netprices}</netprices>
      </tuple>
  )");

  // Q2a: grouping by the author sequence — permutations are distinct.
  Show("Q2a: groups per distinct author sequence", engine, paper_doc, R"(
    for $b in //book
    group by $b/author into $a
    nest $b/price into $prices
    return <group><authors>{string-join(for $x in $a
                                        return string($x), ", ")}</authors>
                  <avg-price>{avg($prices)}</avg-price></group>
  )");

  // Q2a with set semantics via the using clause.
  Show("Q2a with set-equal: permutations merged", engine, paper_doc, R"(
    for $b in //book
    group by $b/author into $a using xqa:set-equal
    nest $b/price into $prices
    return <group><authors>{string-join(for $x in $a
                                        return string($x), ", ")}</authors>
                  <avg-price>{avg($prices)}</avg-price></group>
  )");

  // Q4: post-group let / where on a larger generated bibliography.
  xqa::workload::BooksConfig config;
  config.num_books = 200;
  xqa::DocumentPtr generated = xqa::workload::GenerateBooksDocument(config);
  Show("Q4: publishers with average price above 75", engine, generated, R"(
    for $b in //book
    group by $b/publisher into $pub nest $b/price into $prices
    let $avgprice := round-half-to-even(avg($prices), 2)
    where $avgprice > 75
    order by $avgprice descending
    return
      <expensive-publisher>
        {$pub}
        <avg-price>{$avgprice}</avg-price>
      </expensive-publisher>
  )");

  // Q7: hierarchy inversion — publishers containing their books.
  Show("Q7: hierarchy inversion (first two publishers)", engine, paper_doc, R"(
    (for $b in //book
     group by $b/publisher into $pub nest $b/title into $titles
     order by string($pub)
     return
       <publisher>
         <name>{string($pub)}</name>
         <titles>{$titles}</titles>
       </publisher>)[position() <= 2]
  )");
  return 0;
}

// Quickstart: parse a document, compile a query using the analytics
// extensions, execute it, and print the serialized result.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "api/engine.h"

int main() {
  xqa::Engine engine;

  // 1. An XML document (the paper's book example shape).
  xqa::DocumentPtr doc = xqa::Engine::ParseDocument(R"(
    <bib>
      <book>
        <title>Transaction Processing</title>
        <publisher>Morgan Kaufmann</publisher>
        <year>1993</year><price>65.00</price><discount>6.00</discount>
      </book>
      <book>
        <title>Readings in Database Systems</title>
        <publisher>Morgan Kaufmann</publisher>
        <year>1993</year><price>43.00</price>
      </book>
      <book>
        <title>Database Systems: The Complete Book</title>
        <publisher>Addison-Wesley</publisher>
        <year>1993</year><price>48.00</price>
      </book>
      <book>
        <title>Self-Published Notes</title>
        <year>1995</year><price>12.00</price>
      </book>
    </bib>)");

  // 2. The paper's Q1: average net price per (publisher, year), written with
  //    the explicit group by / nest extension. Books without a publisher
  //    form their own group (the empty sequence is a distinct value).
  xqa::PreparedQuery q1 = engine.Compile(R"(
    for $b in //book
    group by $b/publisher into $p, $b/year into $y
    nest $b/price - $b/discount into $netprices
    order by $y, string($p)
    return
      <group>
        {$p, $y}
        <avg-net-price>{avg($netprices)}</avg-net-price>
      </group>
  )");

  std::printf("Q1 — average net price per (publisher, year):\n%s\n\n",
              q1.ExecuteToString(doc, /*indent=*/2).c_str());

  // 3. Output numbering: rank books by price with `return at`.
  xqa::PreparedQuery ranks = engine.Compile(R"(
    for $b in //book
    order by $b/price descending
    return at $rank
      <book rank="{$rank}">{string($b/title)}</book>
  )");
  std::printf("Books ranked by price:\n%s\n\n",
              ranks.ExecuteToString(doc, /*indent=*/2).c_str());

  // 4. The non-throwing API surface.
  xqa::Result<xqa::PreparedQuery> bad = engine.TryCompile("for $x in");
  std::printf("Compiling a bad query reports: %s\n",
              bad.status().ToString().c_str());
  return 0;
}

// Interactive shell: load documents and run queries against them.
//
//   ./build/examples/xqa_shell [file.xml ...]
//
// Each file is registered under its path for fn:doc; the first file becomes
// the context document. Commands:
//
//   :load <uri> <file>   register a document
//   :explain <query>     show the compiled plan
//   :analyze <query>     run the query, show the plan with observed
//                        per-clause cardinalities and times
//   :profile <query>     run the query, print results + QueryStats JSON
//   :quit                exit
//   anything else        compile and run as a query
//
// Multi-line queries: end a line with '\' to continue.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "api/engine.h"

namespace {

xqa::DocumentPtr LoadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return nullptr;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return xqa::Engine::ParseDocument(buffer.str());
}

}  // namespace

int main(int argc, char** argv) {
  xqa::Engine engine;
  xqa::DocumentRegistry registry;
  xqa::DocumentPtr context;

  for (int i = 1; i < argc; ++i) {
    xqa::DocumentPtr doc = LoadFile(argv[i]);
    if (doc == nullptr) return 1;
    registry[argv[i]] = doc;
    if (context == nullptr) context = doc;
    std::printf("loaded %s\n", argv[i]);
  }
  if (context == nullptr) {
    context = xqa::Engine::ParseDocument("<empty/>");
  }

  std::printf("xqa shell — enter a query, :explain <q>, :analyze <q>, "
              ":profile <q>, :load <uri> <file>, :quit\n");
  std::string line;
  while (true) {
    std::printf("xqa> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    // Continuation lines.
    while (!line.empty() && line.back() == '\\') {
      line.pop_back();
      line.push_back('\n');
      std::string more;
      std::printf("...> ");
      std::fflush(stdout);
      if (!std::getline(std::cin, more)) break;
      line += more;
    }
    if (line.empty()) continue;
    if (line == ":quit" || line == ":q") break;

    if (line.rfind(":load ", 0) == 0) {
      std::istringstream args(line.substr(6));
      std::string uri, file;
      args >> uri >> file;
      if (file.empty()) file = uri;
      xqa::DocumentPtr doc = LoadFile(file);
      if (doc != nullptr) {
        registry[uri] = doc;
        if (context == nullptr) context = doc;
        std::printf("registered %s\n", uri.c_str());
      }
      continue;
    }

    enum class Mode { kRun, kExplain, kAnalyze, kProfile };
    Mode mode = Mode::kRun;
    std::string query = line;
    if (line.rfind(":explain ", 0) == 0) {
      mode = Mode::kExplain;
      query = line.substr(9);
    } else if (line.rfind(":analyze ", 0) == 0) {
      mode = Mode::kAnalyze;
      query = line.substr(9);
    } else if (line.rfind(":profile ", 0) == 0) {
      mode = Mode::kProfile;
      query = line.substr(9);
    }

    xqa::Result<xqa::PreparedQuery> compiled = engine.TryCompile(query);
    if (!compiled.ok()) {
      std::printf("error: %s\n", compiled.status().message().c_str());
      continue;
    }
    if (mode == Mode::kExplain) {
      std::printf("%s", compiled.value().Explain().c_str());
      continue;
    }
    try {
      switch (mode) {
        case Mode::kAnalyze:
          std::printf("%s", compiled.value().ExplainAnalyze(context).c_str());
          break;
        case Mode::kProfile: {
          xqa::ProfiledResult profiled =
              compiled.value().ExecuteProfiled(context, registry);
          std::printf("%s\n",
                      xqa::SerializeSequence(profiled.sequence, 2).c_str());
          std::printf("-- %zu item(s)\n%s\n", profiled.sequence.size(),
                      profiled.stats.ToJson(2).c_str());
          break;
        }
        default: {
          xqa::Sequence result = compiled.value().Execute(context, registry);
          std::printf("%s\n", xqa::SerializeSequence(result, 2).c_str());
          std::printf("-- %zu item(s)\n", result.size());
          break;
        }
      }
    } catch (const xqa::XQueryError& error) {
      std::printf("error: %s\n", error.FormattedMessage().c_str());
    }
  }
  return 0;
}

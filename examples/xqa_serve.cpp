// xqa_serve: a miniature query server over the service layer
// (docs/SERVICE.md). It loads the three workload documents into a
// DocumentStore, runs a short multi-client session against the QueryService
// — demonstrating plan-cache reuse, atomic document replacement under load,
// per-request deadlines, and client cancellation — and prints the service's
// metrics JSON at the end, the way a real deployment would scrape it.

#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "service/query_service.h"
#include "workload/books.h"
#include "workload/orders.h"
#include "workload/sales.h"

namespace {

using xqa::CancellationToken;
using xqa::ErrorCodeName;
using xqa::service::QueryService;
using xqa::service::Request;
using xqa::service::Response;
using xqa::service::ServiceOptions;

void Report(const char* title, const Response& response) {
  if (response.status.ok()) {
    std::printf("=== %s ===\n%s\n(cache_hit=%s, exec=%.2f ms)\n\n", title,
                response.result.c_str(), response.cache_hit ? "yes" : "no",
                response.exec_seconds * 1e3);
  } else {
    std::printf("=== %s ===\n[%s] %s\n(result empty: %s)\n\n", title,
                std::string(ErrorCodeName(response.status.code())).c_str(),
                response.status.message().c_str(),
                response.result.empty() ? "yes" : "NO — BUG");
  }
}

}  // namespace

int main() {
  ServiceOptions options;
  options.worker_threads = 4;
  options.default_deadline_seconds = 10.0;  // generous service-wide ceiling
  QueryService service(options);

  // Load the corpus. Put seals each document, so every request — including
  // parallel FLWOR lanes — reads it without synchronization.
  xqa::workload::OrderConfig orders_config;
  orders_config.num_orders = 1000;
  service.documents().Put(
      "orders", xqa::workload::GenerateOrdersDocument(orders_config));
  service.documents().Put(
      "bib",
      xqa::Engine::ParseDocument(xqa::workload::PaperBibliographyXml()));
  service.documents().Put(
      "sales", xqa::Engine::ParseDocument(xqa::workload::PaperSalesXml()));

  // 1. A grouping query; the second submission hits the plan cache.
  Request shipmodes;
  shipmodes.query = R"(
    for $l in //order/lineitem
    group by $l/shipmode into $m
    nest $l/quantity into $qs
    order by string($m)
    return <mode>{$m}<lineitems>{count($qs)}</lineitems></mode>
  )";
  shipmodes.document = "orders";
  shipmodes.indent = 2;
  Report("shipmode rollup (compiled)", service.Execute(shipmodes));
  Report("shipmode rollup (cached)", service.Execute(shipmodes));

  // 2. Cross-document join through the request's registry snapshot.
  Request join;
  join.query = R"(
    for $b in doc("bib")//book
    group by $b/publisher into $p
    nest $b/price into $prices
    order by string($p)
    return <publisher>{string($p)}: {sum($prices)}</publisher>
  )";
  join.provide_registry = true;
  join.indent = 2;
  Report("publisher totals via fn:doc", service.Execute(join));

  // 3. Four concurrent clients while a writer atomically replaces "orders":
  // in-flight requests keep the version they resolved; no torn reads.
  std::printf("=== concurrent session: 4 clients + 1 writer ===\n");
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&service, &shipmodes] {
      for (int i = 0; i < 10; ++i) (void)service.Execute(shipmodes);
    });
  }
  std::thread writer([&service] {
    xqa::workload::OrderConfig fresh;
    fresh.num_orders = 800;
    fresh.seed = 1234;
    service.documents().Put(
        "orders", xqa::workload::GenerateOrdersDocument(fresh));
  });
  for (std::thread& client : clients) client.join();
  writer.join();
  std::printf("done; store version=%llu\n\n",
              static_cast<unsigned long long>(service.documents().version()));

  // 4. An unmeetable deadline: the request resolves with XQSV0001 and an
  // empty result — never a partial one.
  Request hurried = shipmodes;
  hurried.deadline_seconds = 1e-7;
  Report("deadline exceeded", service.Execute(hurried));

  // 5. Client-side cancellation via the shared token.
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  Report("cancelled by client", service.Execute(shipmodes, token));

  // 6. Durable corpus (docs/STORAGE.md): a service with a data_dir journals
  // every ingest ahead of applying it, checkpoints into checksummed
  // segments, and recovers the exact corpus — same version, same query
  // bytes — across a restart. The first instance is dropped without any
  // clean handoff, which is all a crash leaves behind too.
  const std::string data_dir =
      (std::filesystem::temp_directory_path() / "xqa_serve_data").string();
  std::filesystem::remove_all(data_dir);
  ServiceOptions durable_options;
  durable_options.worker_threads = 2;
  durable_options.data_dir = data_dir;

  Request rollup;
  rollup.query = R"(
    for $b in collection('bib')//book
    group by $b/publisher into $p
    order by string($p)
    return <publisher>{string($p)}</publisher>
  )";
  rollup.provide_collections = true;
  rollup.indent = 2;

  std::string before_restart;
  unsigned long long version_before = 0;
  {
    QueryService durable(durable_options);
    durable.collections().Put(
        "bib", "bib.xml",
        xqa::Engine::ParseDocument(xqa::workload::PaperBibliographyXml()));
    durable.CheckpointStorage();  // segments + manifest commit
    durable.collections().Put(
        "sales", "sales.xml",
        xqa::Engine::ParseDocument(xqa::workload::PaperSalesXml()));
    // the second Put lives only in the ingest journal — no checkpoint
    before_restart = durable.Execute(rollup).result;
    version_before = durable.collections().version();
    xqa::storage::ScrubReport scrub = durable.ScrubStorage();
    std::printf(
        "=== durable corpus ===\nscrub: %zu segments, %zu blocks, clean=%s\n",
        scrub.segments_checked, scrub.blocks_checked,
        scrub.clean() ? "yes" : "NO");
  }  // "crash": no shutdown handshake with the storage layer

  QueryService recovered(durable_options);
  const xqa::storage::RecoveryResult& recovery = recovered.storage_recovery();
  Response after = recovered.Execute(rollup);
  std::printf(
      "recovered: manifest seq %llu, %zu docs restored, %zu journal "
      "records replayed\nversion %llu -> %llu, results identical: %s\n\n",
      static_cast<unsigned long long>(recovery.manifest_seq),
      recovery.documents_loaded, recovery.journal_records_applied,
      version_before,
      static_cast<unsigned long long>(recovered.collections().version()),
      after.result == before_restart ? "yes" : "NO — BUG");
  std::filesystem::remove_all(data_dir);

  // 7. The observability surface a deployment would scrape.
  std::printf("=== service metrics ===\n%s\n", service.MetricsJson(2).c_str());
  return 0;
}

// xqa_serve: a miniature query server over the service layer
// (docs/SERVICE.md). It loads the three workload documents into a
// DocumentStore, runs a short multi-client session against the QueryService
// — demonstrating plan-cache reuse, atomic document replacement under load,
// per-request deadlines, and client cancellation — and prints the service's
// metrics JSON at the end, the way a real deployment would scrape it.

#include <cstdio>
#include <thread>
#include <vector>

#include "service/query_service.h"
#include "workload/books.h"
#include "workload/orders.h"
#include "workload/sales.h"

namespace {

using xqa::CancellationToken;
using xqa::ErrorCodeName;
using xqa::service::QueryService;
using xqa::service::Request;
using xqa::service::Response;
using xqa::service::ServiceOptions;

void Report(const char* title, const Response& response) {
  if (response.status.ok()) {
    std::printf("=== %s ===\n%s\n(cache_hit=%s, exec=%.2f ms)\n\n", title,
                response.result.c_str(), response.cache_hit ? "yes" : "no",
                response.exec_seconds * 1e3);
  } else {
    std::printf("=== %s ===\n[%s] %s\n(result empty: %s)\n\n", title,
                std::string(ErrorCodeName(response.status.code())).c_str(),
                response.status.message().c_str(),
                response.result.empty() ? "yes" : "NO — BUG");
  }
}

}  // namespace

int main() {
  ServiceOptions options;
  options.worker_threads = 4;
  options.default_deadline_seconds = 10.0;  // generous service-wide ceiling
  QueryService service(options);

  // Load the corpus. Put seals each document, so every request — including
  // parallel FLWOR lanes — reads it without synchronization.
  xqa::workload::OrderConfig orders_config;
  orders_config.num_orders = 1000;
  service.documents().Put(
      "orders", xqa::workload::GenerateOrdersDocument(orders_config));
  service.documents().Put(
      "bib",
      xqa::Engine::ParseDocument(xqa::workload::PaperBibliographyXml()));
  service.documents().Put(
      "sales", xqa::Engine::ParseDocument(xqa::workload::PaperSalesXml()));

  // 1. A grouping query; the second submission hits the plan cache.
  Request shipmodes;
  shipmodes.query = R"(
    for $l in //order/lineitem
    group by $l/shipmode into $m
    nest $l/quantity into $qs
    order by string($m)
    return <mode>{$m}<lineitems>{count($qs)}</lineitems></mode>
  )";
  shipmodes.document = "orders";
  shipmodes.indent = 2;
  Report("shipmode rollup (compiled)", service.Execute(shipmodes));
  Report("shipmode rollup (cached)", service.Execute(shipmodes));

  // 2. Cross-document join through the request's registry snapshot.
  Request join;
  join.query = R"(
    for $b in doc("bib")//book
    group by $b/publisher into $p
    nest $b/price into $prices
    order by string($p)
    return <publisher>{string($p)}: {sum($prices)}</publisher>
  )";
  join.provide_registry = true;
  join.indent = 2;
  Report("publisher totals via fn:doc", service.Execute(join));

  // 3. Four concurrent clients while a writer atomically replaces "orders":
  // in-flight requests keep the version they resolved; no torn reads.
  std::printf("=== concurrent session: 4 clients + 1 writer ===\n");
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&service, &shipmodes] {
      for (int i = 0; i < 10; ++i) (void)service.Execute(shipmodes);
    });
  }
  std::thread writer([&service] {
    xqa::workload::OrderConfig fresh;
    fresh.num_orders = 800;
    fresh.seed = 1234;
    service.documents().Put(
        "orders", xqa::workload::GenerateOrdersDocument(fresh));
  });
  for (std::thread& client : clients) client.join();
  writer.join();
  std::printf("done; store version=%llu\n\n",
              static_cast<unsigned long long>(service.documents().version()));

  // 4. An unmeetable deadline: the request resolves with XQSV0001 and an
  // empty result — never a partial one.
  Request hurried = shipmodes;
  hurried.deadline_seconds = 1e-7;
  Report("deadline exceeded", service.Execute(hurried));

  // 5. Client-side cancellation via the shared token.
  auto token = std::make_shared<CancellationToken>();
  token->Cancel();
  Report("cancelled by client", service.Execute(shipmodes, token));

  // 6. The observability surface a deployment would scrape.
  std::printf("=== service metrics ===\n%s\n", service.MetricsJson(2).c_str());
  return 0;
}

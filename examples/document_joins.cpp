// Multi-document analytics: registers several documents under URIs and
// joins across them with fn:doc / fn:collection — grouping sales by
// product-catalog attributes that live in a different document.

#include <cstdio>

#include "api/engine.h"
#include "workload/sales.h"

int main() {
  xqa::Engine engine;

  // A product catalog: categories for the products the sales reference.
  xqa::DocumentPtr catalog = xqa::Engine::ParseDocument(R"(
    <catalog>
      <product name="Green Tea" kind="green" caffeinated="yes"/>
      <product name="Black Tea" kind="black" caffeinated="yes"/>
      <product name="Earl Grey" kind="black" caffeinated="yes"/>
      <product name="Darjeeling" kind="black" caffeinated="yes"/>
      <product name="Oolong" kind="oolong" caffeinated="yes"/>
      <product name="Pu-erh" kind="dark" caffeinated="yes"/>
      <product name="Matcha" kind="green" caffeinated="yes"/>
      <product name="Jasmine" kind="green" caffeinated="yes"/>
      <product name="White Tea" kind="white" caffeinated="yes"/>
      <product name="Chai" kind="black" caffeinated="yes"/>
      <product name="Mint Tea" kind="herbal" caffeinated="no"/>
      <product name="Rooibos" kind="herbal" caffeinated="no"/>
    </catalog>)");

  xqa::workload::SalesConfig config;
  config.num_sales = 300;
  xqa::DocumentPtr sales = xqa::workload::GenerateSalesDocument(config);

  xqa::DocumentRegistry registry;
  registry["catalog.xml"] = catalog;
  registry["sales.xml"] = sales;

  // Join: revenue per catalog kind — the grouping key comes from the
  // catalog document, the measures from the sales document.
  xqa::PreparedQuery by_kind = engine.Compile(R"(
    for $s in doc("sales.xml")//sale
    let $p := doc("catalog.xml")//product[@name = $s/product]
    group by string($p/@kind) into $kind
    nest $s/quantity * $s/price into $amounts
    let $revenue := round-half-to-even(sum($amounts), 2)
    order by $revenue descending
    return at $rank
      <kind rank="{$rank}" name="{$kind}">
        <sales>{count($amounts)}</sales>
        <revenue>{$revenue}</revenue>
      </kind>
  )");
  std::printf("Revenue per catalog kind (cross-document group by):\n%s\n\n",
              xqa::SerializeSequence(by_kind.Execute(nullptr, registry), 2)
                  .c_str());

  // Caffeinated vs herbal split, with the share of total revenue.
  // Note the nesting: $total must be bound OUTSIDE the grouping FLWOR —
  // a let before group by in the same FLWOR dies at the group boundary
  // (Section 3.2), while outer bindings remain visible.
  xqa::PreparedQuery split = engine.Compile(R"(
    let $total := sum(doc("sales.xml")//sale/(quantity * price))
    return
    for $s in doc("sales.xml")//sale
    let $p := doc("catalog.xml")//product[@name = $s/product]
    group by string($p/@caffeinated) into $caffeinated
    nest $s/quantity * $s/price into $amounts
    order by $caffeinated descending
    return
      <segment caffeinated="{$caffeinated}">
        <revenue>{round-half-to-even(sum($amounts), 2)}</revenue>
        <share>{round-half-to-even(sum($amounts) * 100 div $total, 1)}%</share>
      </segment>
  )");
  std::printf("Caffeinated vs herbal revenue:\n%s\n\n",
              xqa::SerializeSequence(split.Execute(nullptr, registry), 2)
                  .c_str());

  // fn:collection sweeps every registered document.
  xqa::PreparedQuery inventory = engine.Compile(
      "for $d in collection() return "
      "<doc root=\"{name($d/*)}\" elements=\"{count($d//*)}\"/>");
  std::printf("Registered documents:\n%s\n",
              xqa::SerializeSequence(inventory.Execute(nullptr, registry), 2)
                  .c_str());
  return 0;
}

// Section 3.4's ordered nests: the paper's Q8 moving-window aggregation
// (previous-ten-sales per sale, per region) and a cumulative running total,
// both built from `nest ... order by ... into` plus positional iteration.

#include <cstdio>

#include "api/engine.h"
#include "workload/sales.h"

int main() {
  xqa::Engine engine;

  xqa::workload::SalesConfig config;
  config.num_sales = 60;
  xqa::DocumentPtr doc = xqa::workload::GenerateSalesDocument(config);

  // Q8: within each region, order sales by timestamp; for each sale report
  // its amount and the total of the previous ten sales in that region.
  xqa::PreparedQuery q8 = engine.Compile(R"(
    for $s in //sale
    group by $s/region into $region
    nest $s order by $s/timestamp into $rs
    order by string($region)
    return
      <region name="{string($region)}">
        {(for $s1 at $i in $rs
          return
            <sale>
              {$s1/timestamp}
              <sale-amount>{round-half-to-even(
                  $s1/quantity * $s1/price, 2)}</sale-amount>
              <previous-ten-sales>{round-half-to-even(
                  sum(for $s2 at $j in $rs
                      where $j >= $i - 10 and $j < $i
                      return $s2/quantity * $s2/price), 2)}
              </previous-ten-sales>
            </sale>)[position() <= 3]}
      </region>
  )");
  std::printf("Q8 — moving ten-sale window (first 3 sales per region):\n%s\n\n",
              q8.ExecuteToString(doc, 2).c_str());

  // Variation: cumulative running total per region — the window grows
  // instead of sliding. Same machinery, different bound.
  xqa::PreparedQuery running = engine.Compile(R"(
    for $s in //sale
    group by $s/region into $region
    nest $s order by $s/timestamp into $rs
    order by string($region)
    return
      <region name="{string($region)}">
        <sales>{count($rs)}</sales>
        <final-cumulative-total>{round-half-to-even(
            sum($rs/(quantity * price)), 2)}</final-cumulative-total>
        <first-three-cumulative>{
          string-join(
            for $s1 at $i in $rs
            where $i <= 3
            return string(round-half-to-even(
                sum(for $s2 at $j in $rs where $j <= $i
                    return $s2/quantity * $s2/price), 2)),
            ", ")
        }</first-three-cumulative>
      </region>
  )");
  std::printf("Running totals per region:\n%s\n",
              running.ExecuteToString(doc, 2).c_str());
  return 0;
}

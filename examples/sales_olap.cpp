// OLAP over retail sales: the paper's Q3 (state vs region comparison) and
// Q10 (monthly regional ranking with output numbering) on a generated
// sales collection.

#include <cstdio>

#include "api/engine.h"
#include "workload/sales.h"

int main() {
  xqa::Engine engine;

  xqa::workload::SalesConfig config;
  config.num_sales = 400;
  xqa::DocumentPtr doc = xqa::workload::GenerateSalesDocument(config);

  // Q3: for each year and state, compare state sales to the containing
  // region's sales — two grouping levels via nested FLWORs.
  xqa::PreparedQuery q3 = engine.Compile(R"(
    for $s in //sale
    group by $s/region into $region,
             year-from-dateTime($s/timestamp) into $year
    nest $s into $region-sales
    let $region-sum := round-half-to-even(
        sum( $region-sales/(quantity * price) ), 2)
    order by $year, string($region)
    return
      for $s in $region-sales
      group by $s/state into $state
      nest $s into $state-sales
      let $state-sum := round-half-to-even(
          sum( $state-sales/(quantity * price) ), 2)
      order by string($state)
      return
        <summary>
          <year>{$year}</year>{$region, $state}
          <state-sales>{$state-sum}</state-sales>
          <region-sales>{$region-sum}</region-sales>
          <state-percentage>
            {round-half-to-even($state-sum * 100 div $region-sum, 1)}
          </state-percentage>
        </summary>
  )");
  std::printf("Q3 — yearly state vs region sales (first 6 summaries):\n%s\n\n",
              xqa::SerializeSequence(
                  [&] {
                    xqa::Sequence all = q3.Execute(doc);
                    all.resize(std::min<size_t>(all.size(), 6));
                    return all;
                  }(),
                  2)
                  .c_str());

  // Q10: monthly sales ranked by region, with `return at` ranks.
  xqa::PreparedQuery q10 = engine.Compile(R"(
    for $s in //sale
    group by year-from-dateTime($s/timestamp) into $year,
             month-from-dateTime($s/timestamp) into $month
    nest $s into $month-sales
    order by $year, $month
    return
      <monthly-report year="{$year}" month="{$month}">
        {for $ms in $month-sales
         group by $ms/region into $region
         nest $ms/quantity * $ms/price into $sales-amounts
         let $sum := round-half-to-even(sum($sales-amounts), 2)
         order by $sum descending
         return at $rank
           <regional-results>
             <rank>{$rank}</rank>
             {$region}
             <total-sales>{$sum}</total-sales>
           </regional-results>}
      </monthly-report>
  )");
  xqa::Sequence reports = q10.Execute(doc);
  std::printf("Q10 — %zu monthly reports; first two:\n", reports.size());
  reports.resize(std::min<size_t>(reports.size(), 2));
  std::printf("%s\n", xqa::SerializeSequence(reports, 2).c_str());
  return 0;
}

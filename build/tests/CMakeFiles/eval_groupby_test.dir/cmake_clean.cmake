file(REMOVE_RECURSE
  "CMakeFiles/eval_groupby_test.dir/eval_groupby_test.cc.o"
  "CMakeFiles/eval_groupby_test.dir/eval_groupby_test.cc.o.d"
  "eval_groupby_test"
  "eval_groupby_test.pdb"
  "eval_groupby_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_groupby_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/constant_fold_test.dir/constant_fold_test.cc.o"
  "CMakeFiles/constant_fold_test.dir/constant_fold_test.cc.o.d"
  "constant_fold_test"
  "constant_fold_test.pdb"
  "constant_fold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constant_fold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

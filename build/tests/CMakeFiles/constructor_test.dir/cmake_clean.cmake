file(REMOVE_RECURSE
  "CMakeFiles/constructor_test.dir/constructor_test.cc.o"
  "CMakeFiles/constructor_test.dir/constructor_test.cc.o.d"
  "constructor_test"
  "constructor_test.pdb"
  "constructor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constructor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for constructor_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for xquery3_dialect_test.
# This may be replaced when dependencies are built.

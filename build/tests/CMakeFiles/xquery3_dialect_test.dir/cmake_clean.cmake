file(REMOVE_RECURSE
  "CMakeFiles/xquery3_dialect_test.dir/xquery3_dialect_test.cc.o"
  "CMakeFiles/xquery3_dialect_test.dir/xquery3_dialect_test.cc.o.d"
  "xquery3_dialect_test"
  "xquery3_dialect_test.pdb"
  "xquery3_dialect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xquery3_dialect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/type_ops_test.dir/type_ops_test.cc.o"
  "CMakeFiles/type_ops_test.dir/type_ops_test.cc.o.d"
  "type_ops_test"
  "type_ops_test.pdb"
  "type_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for type_ops_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/doc_registry_test.dir/doc_registry_test.cc.o"
  "CMakeFiles/doc_registry_test.dir/doc_registry_test.cc.o.d"
  "doc_registry_test"
  "doc_registry_test.pdb"
  "doc_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/doc_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for doc_registry_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/deep_equal_test.dir/deep_equal_test.cc.o"
  "CMakeFiles/deep_equal_test.dir/deep_equal_test.cc.o.d"
  "deep_equal_test"
  "deep_equal_test.pdb"
  "deep_equal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deep_equal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

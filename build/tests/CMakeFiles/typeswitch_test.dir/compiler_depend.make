# Empty compiler generated dependencies file for typeswitch_test.
# This may be replaced when dependencies are built.

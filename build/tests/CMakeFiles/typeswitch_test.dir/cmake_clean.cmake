file(REMOVE_RECURSE
  "CMakeFiles/typeswitch_test.dir/typeswitch_test.cc.o"
  "CMakeFiles/typeswitch_test.dir/typeswitch_test.cc.o.d"
  "typeswitch_test"
  "typeswitch_test.pdb"
  "typeswitch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typeswitch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/error_codes_test.dir/error_codes_test.cc.o"
  "CMakeFiles/error_codes_test.dir/error_codes_test.cc.o.d"
  "error_codes_test"
  "error_codes_test.pdb"
  "error_codes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/error_codes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

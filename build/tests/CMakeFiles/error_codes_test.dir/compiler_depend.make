# Empty compiler generated dependencies file for error_codes_test.
# This may be replaced when dependencies are built.

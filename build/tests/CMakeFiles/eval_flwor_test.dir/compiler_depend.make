# Empty compiler generated dependencies file for eval_flwor_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/eval_flwor_test.dir/eval_flwor_test.cc.o"
  "CMakeFiles/eval_flwor_test.dir/eval_flwor_test.cc.o.d"
  "eval_flwor_test"
  "eval_flwor_test.pdb"
  "eval_flwor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_flwor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for computed_constructor_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/computed_constructor_test.dir/computed_constructor_test.cc.o"
  "CMakeFiles/computed_constructor_test.dir/computed_constructor_test.cc.o.d"
  "computed_constructor_test"
  "computed_constructor_test.pdb"
  "computed_constructor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/computed_constructor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

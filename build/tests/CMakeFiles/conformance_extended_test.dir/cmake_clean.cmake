file(REMOVE_RECURSE
  "CMakeFiles/conformance_extended_test.dir/conformance_extended_test.cc.o"
  "CMakeFiles/conformance_extended_test.dir/conformance_extended_test.cc.o.d"
  "conformance_extended_test"
  "conformance_extended_test.pdb"
  "conformance_extended_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conformance_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for eval_expr_test.
# This may be replaced when dependencies are built.

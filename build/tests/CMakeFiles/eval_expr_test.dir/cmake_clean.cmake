file(REMOVE_RECURSE
  "CMakeFiles/eval_expr_test.dir/eval_expr_test.cc.o"
  "CMakeFiles/eval_expr_test.dir/eval_expr_test.cc.o.d"
  "eval_expr_test"
  "eval_expr_test.pdb"
  "eval_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for eval_path_test.
# This may be replaced when dependencies are built.

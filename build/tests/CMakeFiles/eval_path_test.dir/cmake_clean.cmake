file(REMOVE_RECURSE
  "CMakeFiles/eval_path_test.dir/eval_path_test.cc.o"
  "CMakeFiles/eval_path_test.dir/eval_path_test.cc.o.d"
  "eval_path_test"
  "eval_path_test.pdb"
  "eval_path_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_path_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_dialects.
# This may be replaced when dependencies are built.

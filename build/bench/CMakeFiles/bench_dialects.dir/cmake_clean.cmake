file(REMOVE_RECURSE
  "CMakeFiles/bench_dialects.dir/bench_dialects.cc.o"
  "CMakeFiles/bench_dialects.dir/bench_dialects.cc.o.d"
  "bench_dialects"
  "bench_dialects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dialects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

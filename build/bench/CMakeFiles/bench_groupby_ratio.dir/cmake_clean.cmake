file(REMOVE_RECURSE
  "CMakeFiles/bench_groupby_ratio.dir/bench_groupby_ratio.cc.o"
  "CMakeFiles/bench_groupby_ratio.dir/bench_groupby_ratio.cc.o.d"
  "bench_groupby_ratio"
  "bench_groupby_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_groupby_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

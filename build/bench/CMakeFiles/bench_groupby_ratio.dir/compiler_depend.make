# Empty compiler generated dependencies file for bench_groupby_ratio.
# This may be replaced when dependencies are built.

# Empty dependencies file for xqa_shell.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/xqa_shell.dir/xqa_shell.cpp.o"
  "CMakeFiles/xqa_shell.dir/xqa_shell.cpp.o.d"
  "xqa_shell"
  "xqa_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xqa_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for document_joins.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/document_joins.dir/document_joins.cpp.o"
  "CMakeFiles/document_joins.dir/document_joins.cpp.o.d"
  "document_joins"
  "document_joins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_joins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/moving_window.dir/moving_window.cpp.o"
  "CMakeFiles/moving_window.dir/moving_window.cpp.o.d"
  "moving_window"
  "moving_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moving_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for moving_window.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for ragged_rollup.
# This may be replaced when dependencies are built.

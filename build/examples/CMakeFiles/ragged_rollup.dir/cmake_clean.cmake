file(REMOVE_RECURSE
  "CMakeFiles/ragged_rollup.dir/ragged_rollup.cpp.o"
  "CMakeFiles/ragged_rollup.dir/ragged_rollup.cpp.o.d"
  "ragged_rollup"
  "ragged_rollup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ragged_rollup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bibliography_analytics.dir/bibliography_analytics.cpp.o"
  "CMakeFiles/bibliography_analytics.dir/bibliography_analytics.cpp.o.d"
  "bibliography_analytics"
  "bibliography_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bibliography_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

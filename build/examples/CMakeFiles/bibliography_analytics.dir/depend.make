# Empty dependencies file for bibliography_analytics.
# This may be replaced when dependencies are built.

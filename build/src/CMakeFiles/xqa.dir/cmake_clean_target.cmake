file(REMOVE_RECURSE
  "libxqa.a"
)

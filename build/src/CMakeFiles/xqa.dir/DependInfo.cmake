
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/engine.cc" "src/CMakeFiles/xqa.dir/api/engine.cc.o" "gcc" "src/CMakeFiles/xqa.dir/api/engine.cc.o.d"
  "/root/repo/src/api/explain.cc" "src/CMakeFiles/xqa.dir/api/explain.cc.o" "gcc" "src/CMakeFiles/xqa.dir/api/explain.cc.o.d"
  "/root/repo/src/base/error.cc" "src/CMakeFiles/xqa.dir/base/error.cc.o" "gcc" "src/CMakeFiles/xqa.dir/base/error.cc.o.d"
  "/root/repo/src/base/regex_lite.cc" "src/CMakeFiles/xqa.dir/base/regex_lite.cc.o" "gcc" "src/CMakeFiles/xqa.dir/base/regex_lite.cc.o.d"
  "/root/repo/src/base/string_util.cc" "src/CMakeFiles/xqa.dir/base/string_util.cc.o" "gcc" "src/CMakeFiles/xqa.dir/base/string_util.cc.o.d"
  "/root/repo/src/binder/binder.cc" "src/CMakeFiles/xqa.dir/binder/binder.cc.o" "gcc" "src/CMakeFiles/xqa.dir/binder/binder.cc.o.d"
  "/root/repo/src/binder/static_context.cc" "src/CMakeFiles/xqa.dir/binder/static_context.cc.o" "gcc" "src/CMakeFiles/xqa.dir/binder/static_context.cc.o.d"
  "/root/repo/src/eval/construct.cc" "src/CMakeFiles/xqa.dir/eval/construct.cc.o" "gcc" "src/CMakeFiles/xqa.dir/eval/construct.cc.o.d"
  "/root/repo/src/eval/dynamic_context.cc" "src/CMakeFiles/xqa.dir/eval/dynamic_context.cc.o" "gcc" "src/CMakeFiles/xqa.dir/eval/dynamic_context.cc.o.d"
  "/root/repo/src/eval/evaluator.cc" "src/CMakeFiles/xqa.dir/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/xqa.dir/eval/evaluator.cc.o.d"
  "/root/repo/src/eval/flwor.cc" "src/CMakeFiles/xqa.dir/eval/flwor.cc.o" "gcc" "src/CMakeFiles/xqa.dir/eval/flwor.cc.o.d"
  "/root/repo/src/eval/path.cc" "src/CMakeFiles/xqa.dir/eval/path.cc.o" "gcc" "src/CMakeFiles/xqa.dir/eval/path.cc.o.d"
  "/root/repo/src/eval/type_match.cc" "src/CMakeFiles/xqa.dir/eval/type_match.cc.o" "gcc" "src/CMakeFiles/xqa.dir/eval/type_match.cc.o.d"
  "/root/repo/src/functions/fn_aggregate.cc" "src/CMakeFiles/xqa.dir/functions/fn_aggregate.cc.o" "gcc" "src/CMakeFiles/xqa.dir/functions/fn_aggregate.cc.o.d"
  "/root/repo/src/functions/fn_datetime.cc" "src/CMakeFiles/xqa.dir/functions/fn_datetime.cc.o" "gcc" "src/CMakeFiles/xqa.dir/functions/fn_datetime.cc.o.d"
  "/root/repo/src/functions/fn_doc.cc" "src/CMakeFiles/xqa.dir/functions/fn_doc.cc.o" "gcc" "src/CMakeFiles/xqa.dir/functions/fn_doc.cc.o.d"
  "/root/repo/src/functions/fn_membership.cc" "src/CMakeFiles/xqa.dir/functions/fn_membership.cc.o" "gcc" "src/CMakeFiles/xqa.dir/functions/fn_membership.cc.o.d"
  "/root/repo/src/functions/fn_node.cc" "src/CMakeFiles/xqa.dir/functions/fn_node.cc.o" "gcc" "src/CMakeFiles/xqa.dir/functions/fn_node.cc.o.d"
  "/root/repo/src/functions/fn_numeric.cc" "src/CMakeFiles/xqa.dir/functions/fn_numeric.cc.o" "gcc" "src/CMakeFiles/xqa.dir/functions/fn_numeric.cc.o.d"
  "/root/repo/src/functions/fn_regex.cc" "src/CMakeFiles/xqa.dir/functions/fn_regex.cc.o" "gcc" "src/CMakeFiles/xqa.dir/functions/fn_regex.cc.o.d"
  "/root/repo/src/functions/fn_sequence.cc" "src/CMakeFiles/xqa.dir/functions/fn_sequence.cc.o" "gcc" "src/CMakeFiles/xqa.dir/functions/fn_sequence.cc.o.d"
  "/root/repo/src/functions/fn_string.cc" "src/CMakeFiles/xqa.dir/functions/fn_string.cc.o" "gcc" "src/CMakeFiles/xqa.dir/functions/fn_string.cc.o.d"
  "/root/repo/src/functions/function_registry.cc" "src/CMakeFiles/xqa.dir/functions/function_registry.cc.o" "gcc" "src/CMakeFiles/xqa.dir/functions/function_registry.cc.o.d"
  "/root/repo/src/optimizer/constant_fold.cc" "src/CMakeFiles/xqa.dir/optimizer/constant_fold.cc.o" "gcc" "src/CMakeFiles/xqa.dir/optimizer/constant_fold.cc.o.d"
  "/root/repo/src/optimizer/groupby_detect.cc" "src/CMakeFiles/xqa.dir/optimizer/groupby_detect.cc.o" "gcc" "src/CMakeFiles/xqa.dir/optimizer/groupby_detect.cc.o.d"
  "/root/repo/src/optimizer/rewriter.cc" "src/CMakeFiles/xqa.dir/optimizer/rewriter.cc.o" "gcc" "src/CMakeFiles/xqa.dir/optimizer/rewriter.cc.o.d"
  "/root/repo/src/parser/ast.cc" "src/CMakeFiles/xqa.dir/parser/ast.cc.o" "gcc" "src/CMakeFiles/xqa.dir/parser/ast.cc.o.d"
  "/root/repo/src/parser/lexer.cc" "src/CMakeFiles/xqa.dir/parser/lexer.cc.o" "gcc" "src/CMakeFiles/xqa.dir/parser/lexer.cc.o.d"
  "/root/repo/src/parser/parser.cc" "src/CMakeFiles/xqa.dir/parser/parser.cc.o" "gcc" "src/CMakeFiles/xqa.dir/parser/parser.cc.o.d"
  "/root/repo/src/workload/books.cc" "src/CMakeFiles/xqa.dir/workload/books.cc.o" "gcc" "src/CMakeFiles/xqa.dir/workload/books.cc.o.d"
  "/root/repo/src/workload/orders.cc" "src/CMakeFiles/xqa.dir/workload/orders.cc.o" "gcc" "src/CMakeFiles/xqa.dir/workload/orders.cc.o.d"
  "/root/repo/src/workload/random.cc" "src/CMakeFiles/xqa.dir/workload/random.cc.o" "gcc" "src/CMakeFiles/xqa.dir/workload/random.cc.o.d"
  "/root/repo/src/workload/sales.cc" "src/CMakeFiles/xqa.dir/workload/sales.cc.o" "gcc" "src/CMakeFiles/xqa.dir/workload/sales.cc.o.d"
  "/root/repo/src/xdm/atomic_value.cc" "src/CMakeFiles/xqa.dir/xdm/atomic_value.cc.o" "gcc" "src/CMakeFiles/xqa.dir/xdm/atomic_value.cc.o.d"
  "/root/repo/src/xdm/compare.cc" "src/CMakeFiles/xqa.dir/xdm/compare.cc.o" "gcc" "src/CMakeFiles/xqa.dir/xdm/compare.cc.o.d"
  "/root/repo/src/xdm/datetime.cc" "src/CMakeFiles/xqa.dir/xdm/datetime.cc.o" "gcc" "src/CMakeFiles/xqa.dir/xdm/datetime.cc.o.d"
  "/root/repo/src/xdm/decimal.cc" "src/CMakeFiles/xqa.dir/xdm/decimal.cc.o" "gcc" "src/CMakeFiles/xqa.dir/xdm/decimal.cc.o.d"
  "/root/repo/src/xdm/deep_equal.cc" "src/CMakeFiles/xqa.dir/xdm/deep_equal.cc.o" "gcc" "src/CMakeFiles/xqa.dir/xdm/deep_equal.cc.o.d"
  "/root/repo/src/xdm/item.cc" "src/CMakeFiles/xqa.dir/xdm/item.cc.o" "gcc" "src/CMakeFiles/xqa.dir/xdm/item.cc.o.d"
  "/root/repo/src/xdm/sequence_ops.cc" "src/CMakeFiles/xqa.dir/xdm/sequence_ops.cc.o" "gcc" "src/CMakeFiles/xqa.dir/xdm/sequence_ops.cc.o.d"
  "/root/repo/src/xml/node.cc" "src/CMakeFiles/xqa.dir/xml/node.cc.o" "gcc" "src/CMakeFiles/xqa.dir/xml/node.cc.o.d"
  "/root/repo/src/xml/serializer.cc" "src/CMakeFiles/xqa.dir/xml/serializer.cc.o" "gcc" "src/CMakeFiles/xqa.dir/xml/serializer.cc.o.d"
  "/root/repo/src/xml/xml_parser.cc" "src/CMakeFiles/xqa.dir/xml/xml_parser.cc.o" "gcc" "src/CMakeFiles/xqa.dir/xml/xml_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for xqa.
# This may be replaced when dependencies are built.
